//! Offline shim for `criterion`: same macro/builder surface, real timing.
//!
//! The registry is unreachable in this build environment, so the real
//! criterion cannot be fetched. This vendored harness keeps the API the
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`) and performs honest measurements: each
//! benchmark is warmed up, calibrated to a target sample duration, then
//! sampled repeatedly; the median per-iteration time is reported on stdout.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion of a plain name or a [`BenchmarkId`] into a display id.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that makes one
        // sample take roughly `TARGET_SAMPLE`.
        const TARGET_SAMPLE: Duration = Duration::from_millis(5);
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters_per_sample >= 1 << 24 {
                break;
            }
            // Grow geometrically toward the target.
            iters_per_sample = if elapsed.is_zero() {
                iters_per_sample * 16
            } else {
                let scale = TARGET_SAMPLE.as_nanos() as f64 / elapsed.as_nanos() as f64;
                (iters_per_sample as f64 * scale.clamp(1.5, 16.0)) as u64
            }
            .max(iters_per_sample + 1);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    sample_count: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        sample_count,
    };
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut line = format!("{full:<48} time: [{}]", format_ns(bencher.ns_per_iter));
    match throughput {
        Some(Throughput::Elements(n)) if bencher.ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / bencher.ns_per_iter;
            line.push_str(&format!("  thrpt: {per_sec:.0} elem/s"));
        }
        Some(Throughput::Bytes(n)) if bencher.ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / bencher.ns_per_iter;
            line.push_str(&format!(
                "  thrpt: {:.1} MiB/s",
                per_sec / (1024.0 * 1024.0)
            ));
        }
        _ => {}
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // `--bench`/`--test` flags from the harness are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let id = id.into_id();
        if self.matches(&id) {
            run_one(None, &id, self.sample_size, None, &mut f);
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let id = id.into_id();
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(Some(&self.name), &id, samples, self.throughput, &mut f);
        }
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(5);
        c.filter = None;
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}

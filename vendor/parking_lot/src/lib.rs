//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! This workspace builds in an environment with no registry access, so the
//! real `parking_lot` cannot be fetched. This vendored crate reproduces the
//! subset of its API the workspace uses — `Mutex`/`RwLock` without lock
//! poisoning in the signatures, and a `Condvar` whose `wait` borrows the
//! guard mutably instead of consuming it. Poisoned locks are recovered
//! transparently (`parking_lot` has no poisoning at all, so a panic while
//! holding a lock must not cascade into every later `lock()` call).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`], which takes the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// Condition variable whose `wait` re-acquires through a `&mut` guard.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard active");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard active");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_cooperate() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        handle.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let lock = RwLock::new(7u32);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut guard = pair.0.lock();
        let result = pair.1.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }
}

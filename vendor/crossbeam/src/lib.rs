//! Offline shim for `crossbeam`, providing the `channel` module the
//! workspace uses.
//!
//! The registry is unreachable in this build environment, so the real
//! crossbeam cannot be fetched. This vendored crate implements MPMC
//! channels (both ends cloneable, unlike `std::sync::mpsc`) with the same
//! surface the workspace relies on: `unbounded`, `bounded`, blocking
//! `send`/`recv`, `recv_timeout`, and disconnect-on-last-drop semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// when every `Sender` has been dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable; `send` fails once every
    /// `Receiver` has been dropped.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` messages; `send` blocks when
    /// full. A zero capacity is promoted to one slot (true rendezvous
    /// channels are not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = shared
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(1);
            let handle = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
            handle.join().unwrap();
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }
    }
}

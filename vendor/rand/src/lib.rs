//! Offline shim for `rand`, covering the subset of the 0.8 API this
//! workspace uses: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng`
//! extension trait (`fill`, `gen_range`, `gen`), `thread_rng()` and the
//! free function `random()`.
//!
//! The generator is splitmix64 — statistically fine for simulation jitter,
//! UUIDs and test data; not cryptographic (neither use in this workspace
//! requires it).

use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Core random-number generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A type that can be produced uniformly by [`random`] / [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::*;

    /// Deterministic standard generator (splitmix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut s = state;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    /// Per-call generator with process-unique seeding.
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng {
                inner: StdRng::seed_from_u64(super::entropy_seed()),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    // Mix so that rapid successive calls still get distinct streams.
    nanos ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((&COUNTER as *const _ as u64) << 16)
}

/// Returns a freshly seeded generator. Unlike the real `rand`, this is not
/// thread-local: every call returns an independent stream, which is all the
/// workspace's call sites (one-shot UUID / nonce generation) need.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Generates a single uniform value of type `T`.
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn fill_covers_whole_buffer() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 16]);
    }

    #[test]
    fn random_values_vary() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}

//! Offline shim for `proptest`: a small, deterministic property-testing
//! framework exposing the subset of the proptest 1.x API this workspace
//! uses.
//!
//! The registry is unreachable in this build environment, so the real
//! proptest cannot be fetched. This crate keeps the call sites source
//! compatible: the `proptest!` / `prop_oneof!` / `prop_assert*!` macros,
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, `any::<T>()`, `Just`, ranges as strategies,
//! regex-like string strategies, and the `collection` / `option` / `bool` /
//! `char` / `num` helper modules.
//!
//! Differences from the real thing: no shrinking, no persistence of
//! failing cases (`.proptest-regressions` files are ignored), and a fixed
//! deterministic seed per test derived from the test's module path — each
//! run explores the same cases, which keeps CI stable. The case count
//! defaults to 64 and can be raised via `PROPTEST_CASES`.

pub mod test_runner {
    /// Deterministic generator driving all strategies (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }

        /// Seed for case `case` of the test uniquely named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(hash.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[lo, hi]` (inclusive).
        pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            lo + self.below(hi - lo + 1)
        }
    }

    /// Number of cases each `proptest!` test runs (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree or shrinking; a
    /// strategy is just a deterministic function of the test RNG.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                predicate,
            }
        }

        /// Expands `self` (the leaf strategy) through `recurse` up to
        /// `depth` times. The size-hint parameters of the real API are
        /// accepted and ignored; the branch strategy returned by `recurse`
        /// is expected to choose its own child counts (possibly zero), so
        /// depth alone bounds the tree.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strategy = self.boxed();
            for _ in 0..depth {
                strategy = recurse(strategy).boxed();
            }
            strategy
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Strategy producing a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.gen_value(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        predicate: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.gen_value(rng);
                if (self.predicate)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 candidates in a row",
                self.reason
            );
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].gen_value(rng)
        }
    }

    /// Marker used by `any::<T>()`.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::ArbValue> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.between(0, span) as i128) as $ty
                }
            }

            impl Strategy for std::ops::RangeFrom<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let span = (<$ty>::MAX as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.between(0, span) as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Regex-like string strategies: `"[a-z][a-z0-9]{0,8}"`, `"\\PC*"`, …
    ///
    /// Supported atoms: character classes (`[...]`, with ranges and
    /// backslash escapes), the printable-character class `\PC`, and literal
    /// characters. Quantifiers: `{n}`, `{a,b}`, `*` (capped at 32), `+`.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait ArbValue {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($ty:ty),*) => {$(
            impl ArbValue for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbValue for char {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::string::printable_char(rng)
        }
    }

    impl ArbValue for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::num::f64::normal_value(rng)
        }
    }

    impl<const N: usize> ArbValue for [u8; N] {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for byte in out.iter_mut() {
                *byte = rng.next_u64() as u8;
            }
            out
        }
    }

    /// `any::<T>()` — strategy for an arbitrary value of `T`.
    pub fn any<T: ArbValue>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.between(self.size.min as u64, self.size.max_inclusive as u64) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Strategy for `Option<T>`; generates `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Strategy for an arbitrary boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod char {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    /// Strategy for a character in `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn gen_value(&self, rng: &mut TestRng) -> char {
            // Resample on the surrogate gap (only possible for ranges that
            // span it).
            loop {
                let code = rng.between(self.lo as u64, self.hi as u64) as u32;
                if let Some(c) = char::from_u32(code) {
                    return c;
                }
            }
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::BitOr;

        /// Bitmask of floating-point value classes, combinable with `|`.
        #[derive(Clone, Copy, Debug)]
        pub struct F64Class(u8);

        pub const NORMAL: F64Class = F64Class(1);
        pub const ZERO: F64Class = F64Class(2);

        impl BitOr for F64Class {
            type Output = F64Class;
            fn bitor(self, rhs: F64Class) -> F64Class {
                F64Class(self.0 | rhs.0)
            }
        }

        pub(crate) fn normal_value(rng: &mut TestRng) -> f64 {
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            // Mantissa in [1, 2), exponent well inside the normal range.
            let mantissa = 1.0 + (rng.next_u64() >> 12) as f64 / (1u64 << 52) as f64;
            let exponent = rng.between(0, 600) as i32 - 300;
            sign * mantissa * 2f64.powi(exponent)
        }

        impl Strategy for F64Class {
            type Value = f64;
            fn gen_value(&self, rng: &mut TestRng) -> f64 {
                let classes: Vec<u8> = [1u8, 2]
                    .iter()
                    .copied()
                    .filter(|bit| self.0 & bit != 0)
                    .collect();
                let pick = classes[rng.below(classes.len() as u64) as usize];
                match pick {
                    1 => normal_value(rng),
                    _ => 0.0,
                }
            }
        }
    }
}

pub mod string {
    use super::test_runner::TestRng;

    const EXOTIC: &[char] = &['ß', 'é', 'Ω', 'π', '中', '☃', '🦀'];

    /// A printable (non-control) character: mostly ASCII, occasionally
    /// multi-byte to exercise UTF-8 handling.
    pub fn printable_char(rng: &mut TestRng) -> char {
        if rng.below(10) == 0 {
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        } else {
            rng.between(0x20, 0x7e) as u8 as char
        }
    }

    enum Atom {
        Printable,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    impl Atom {
        fn generate(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Printable => printable_char(rng),
                Atom::Literal(c) => *c,
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for (lo, hi) in ranges {
                        let size = *hi as u64 - *lo as u64 + 1;
                        if pick < size {
                            return char::from_u32(*lo as u32 + pick as u32)
                                .expect("class ranges avoid surrogates");
                        }
                        pick -= size;
                    }
                    unreachable!("pick < total")
                }
            }
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((c, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        (Atom::Class(ranges), i + 1) // skip ']'
    }

    fn parse_quantifier(chars: &[char], i: usize) -> (u64, u64, usize) {
        match chars.get(i) {
            Some('*') => (0, 32, i + 1),
            Some('+') => (1, 32, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("quantifier lower bound"),
                        b.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("quantifier count");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    /// Generates a string matching the (small regex subset) `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (atom, next) = match chars[i] {
                '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                    (Atom::Printable, i + 3)
                }
                '\\' => (
                    Atom::Literal(*chars.get(i + 1).expect("dangling escape")),
                    i + 2,
                ),
                '[' => parse_class(&chars, i + 1),
                c => (Atom::Literal(c), i + 1),
            };
            let (lo, hi, next) = parse_quantifier(&chars, next);
            let count = rng.between(lo, hi);
            for _ in 0..count {
                out.push(atom.generate(rng));
            }
            i = next;
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each contained test function over many generated cases.
///
/// Supports the argument forms `name: Type` (via `any::<Type>()`) and
/// `name in strategy`, in any mix and order.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut __pt_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $crate::__pt_bind!(__pt_rng, $body, $($args)*);
                }
            }
        )*
    };
}

/// Internal: binds `proptest!` arguments one at a time, then runs the body.
#[macro_export]
#[doc(hidden)]
macro_rules! __pt_bind {
    ($rng:ident, $body:block $(,)?) => { $body };
    ($rng:ident, $body:block, $var:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $var: $ty = $crate::strategy::Strategy::gen_value(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__pt_bind!($rng, $body $(, $($rest)*)?)
    }};
    ($rng:ident, $body:block, $var:ident in $strategy:expr $(, $($rest:tt)*)?) => {{
        let $var = $crate::strategy::Strategy::gen_value(&($strategy), &mut $rng);
        $crate::__pt_bind!($rng, $body $(, $($rest)*)?)
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_classes() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = crate::string::generate("[a-z][a-z0-9]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_pattern_never_emits_controls() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..200 {
            let s = crate::string::generate("\\PC{0,40}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn escaped_class_members_parse() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..100 {
            let s = crate::string::generate("[<>&;a-z'\"= /!\\[\\]-]{0,64}", &mut rng);
            assert!(s
                .chars()
                .all(|c| "<>&;'\"= /!-[]".contains(c) || c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #[test]
        fn typed_and_in_args_mix(a: u32, b in 5u64..10, c: bool) {
            prop_assert!(b >= 5 && b < 10);
            let _ = (a, c);
        }

        #[test]
        fn oneof_and_collections(v in crate::collection::vec(prop_oneof![Just(1u8), Just(2)], 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn ranges_and_options(n in 1u16.., m in crate::option::of(any::<u64>())) {
            prop_assert!(n >= 1);
            let _ = m;
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0u32..10).prop_map(|n| vec![n]);
        let nested = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(|vs| vs.concat())
        });
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..50 {
            let v = nested.gen_value(&mut rng);
            assert!(v.len() <= 27);
        }
    }
}

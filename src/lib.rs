//! Umbrella crate for the `virt` workspace.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. Re-exports of the member
//! crates are provided for convenience so examples can use one import root.

pub use hypersim;
pub use virt_core;
pub use virt_fleet;
pub use virt_rpc;
pub use virt_xml;
pub use virtd;

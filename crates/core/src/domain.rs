//! The [`Domain`] handle.
//!
//! A `Domain` is a lightweight reference (connection + name + uuid) to a
//! guest; every method re-enters the driver, so handles never go stale —
//! they merely start failing with [`crate::ErrorCode::NoDomain`] once the
//! domain is gone, mirroring libvirt handle semantics.

use std::sync::Arc;

use crate::driver::{DomainRecord, DomainState, HypervisorConnection};
use crate::error::VirtResult;
use crate::uuid::Uuid;

/// A handle to a domain (virtual machine or container).
///
/// Obtained from [`crate::Connect`] lookup/define/create methods.
#[derive(Clone)]
pub struct Domain {
    conn: Arc<dyn HypervisorConnection>,
    name: String,
    uuid: Uuid,
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("name", &self.name)
            .field("uuid", &self.uuid.to_string())
            .finish()
    }
}

impl Domain {
    pub(crate) fn from_record(conn: Arc<dyn HypervisorConnection>, record: DomainRecord) -> Domain {
        Domain {
            conn,
            name: record.name,
            uuid: record.uuid,
        }
    }

    pub(crate) fn connection(&self) -> &Arc<dyn HypervisorConnection> {
        &self.conn
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain's UUID.
    pub fn uuid(&self) -> Uuid {
        self.uuid
    }

    /// A fresh snapshot of the domain's state.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`] once the domain is gone.
    pub fn info(&self) -> VirtResult<DomainRecord> {
        self.conn.lookup_domain_by_name(&self.name)
    }

    /// Current lifecycle state.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn state(&self) -> VirtResult<DomainState> {
        Ok(self.info()?.state)
    }

    /// The hypervisor id while active.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn id(&self) -> VirtResult<u32> {
        self.info()?.id.ok_or_else(|| {
            crate::VirtError::new(crate::ErrorCode::OperationInvalid, "domain is not active")
        })
    }

    /// Whether the domain is running or paused.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn is_active(&self) -> VirtResult<bool> {
        Ok(self.info()?.state.is_active())
    }

    /// Boots the domain.
    ///
    /// # Errors
    ///
    /// Lifecycle/capacity failures.
    pub fn start(&self) -> VirtResult<()> {
        self.conn.start_domain(&self.name).map(drop)
    }

    /// Requests a graceful shutdown.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    pub fn shutdown(&self) -> VirtResult<()> {
        self.conn.shutdown_domain(&self.name).map(drop)
    }

    /// Reboots the guest.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    pub fn reboot(&self) -> VirtResult<()> {
        self.conn.reboot_domain(&self.name).map(drop)
    }

    /// Hard power-off.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    pub fn destroy(&self) -> VirtResult<()> {
        self.conn.destroy_domain(&self.name).map(drop)
    }

    /// Simulates a guest crash (testing aid for guard policies).
    ///
    /// # Errors
    ///
    /// Lifecycle failures; the domain must be active.
    pub fn crash(&self) -> VirtResult<()> {
        self.conn.crash_domain(&self.name).map(drop)
    }

    /// Attaches an availability guard policy to this domain.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn guard_set(&self, policy: &crate::guard::GuardPolicy) -> VirtResult<()> {
        self.conn.guard_set(&self.name, policy)
    }

    /// Removes this domain's guard policy.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`] if no guard is attached.
    pub fn guard_remove(&self) -> VirtResult<()> {
        self.conn.guard_remove(&self.name)
    }

    /// This domain's guard status.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`] if no guard is attached.
    pub fn guard_status(&self) -> VirtResult<crate::guard::GuardStatus> {
        self.conn.guard_status(&self.name)
    }

    /// Pauses vCPUs.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    pub fn suspend(&self) -> VirtResult<()> {
        self.conn.suspend_domain(&self.name).map(drop)
    }

    /// Resumes vCPUs.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    pub fn resume(&self) -> VirtResult<()> {
        self.conn.resume_domain(&self.name).map(drop)
    }

    /// Saves guest memory and stops the domain (managed save).
    ///
    /// # Errors
    ///
    /// Lifecycle failures; [`crate::ErrorCode::NoSupport`] on platforms
    /// without save/restore.
    pub fn managed_save(&self) -> VirtResult<()> {
        self.conn.save_domain(&self.name).map(drop)
    }

    /// Restores from the managed save image.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    pub fn restore(&self) -> VirtResult<()> {
        self.conn.restore_domain(&self.name).map(drop)
    }

    /// Removes the persisted definition. An inactive domain disappears;
    /// a running one keeps executing as transient and vanishes for good
    /// when it stops (libvirt's `virDomainUndefine` semantics).
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`] when absent.
    pub fn undefine(&self) -> VirtResult<()> {
        self.conn.undefine_domain(&self.name)
    }

    /// Balloons memory to `memory_mib`.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`] above the configured maximum.
    pub fn set_memory(&self, memory_mib: u64) -> VirtResult<()> {
        self.conn
            .set_domain_memory(&self.name, memory_mib)
            .map(drop)
    }

    /// Sets the vCPU count.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`]; capacity failures.
    pub fn set_vcpus(&self, vcpus: u32) -> VirtResult<()> {
        self.conn.set_domain_vcpus(&self.name, vcpus).map(drop)
    }

    /// Attaches a device described by XML.
    ///
    /// # Errors
    ///
    /// XML failures; duplicate targets.
    pub fn attach_device(&self, device_xml: &str) -> VirtResult<()> {
        self.conn.attach_device(&self.name, device_xml).map(drop)
    }

    /// Detaches the disk with the given target device name.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`] when absent.
    pub fn detach_device(&self, target: &str) -> VirtResult<()> {
        self.conn.detach_device(&self.name, target).map(drop)
    }

    /// Takes a named snapshot.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoSupport`]; duplicate names.
    pub fn snapshot_create(&self, name: &str) -> VirtResult<()> {
        self.conn.snapshot_domain(&self.name, name).map(drop)
    }

    /// Lists snapshot names, oldest first.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn snapshot_list(&self) -> VirtResult<Vec<String>> {
        self.conn.list_snapshots(&self.name)
    }

    /// Reverts to a named snapshot, restoring its state and memory.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`] for unknown snapshots; capacity
    /// failures when the snapshot no longer fits the host.
    pub fn snapshot_revert(&self, name: &str) -> VirtResult<()> {
        self.conn.revert_snapshot(&self.name, name).map(drop)
    }

    /// Deletes a named snapshot.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`] for unknown snapshots.
    pub fn snapshot_delete(&self, name: &str) -> VirtResult<()> {
        self.conn.delete_snapshot(&self.name, name)
    }

    /// Marks the domain for autostart at host boot.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn set_autostart(&self, autostart: bool) -> VirtResult<()> {
        self.conn.set_autostart(&self.name, autostart)
    }

    /// Whether the domain starts automatically at host boot.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn autostart(&self) -> VirtResult<bool> {
        self.conn.get_autostart(&self.name)
    }

    /// The domain's XML description.
    ///
    /// # Errors
    ///
    /// As [`Domain::info`].
    pub fn xml_desc(&self) -> VirtResult<String> {
        self.conn.dump_domain_xml(&self.name)
    }

    /// Stats of the current (or most recent) background job on this
    /// domain. Reports the idle default when no job ever ran.
    ///
    /// # Errors
    ///
    /// Driver failures.
    pub fn job_stats(&self) -> VirtResult<crate::job::JobStats> {
        self.conn.domain_job_stats(&self.name)
    }

    /// Requests cancellation of the running background job. The job
    /// observes the request at its next progress slice, so the running
    /// operation returns [`crate::ErrorCode::OperationAborted`] shortly
    /// after.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::OperationInvalid`] when no job is running.
    pub fn abort_job(&self) -> VirtResult<()> {
        self.conn.abort_domain_job(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::Connect;
    use crate::xmlfmt::DomainConfig;

    fn setup() -> (Connect, Domain) {
        let conn = Connect::builder("test:///default").open().unwrap();
        let domain = conn
            .define_domain(&DomainConfig::new("handle-vm", 256, 1))
            .unwrap();
        (conn, domain)
    }

    #[test]
    fn handle_exposes_identity() {
        let (_conn, domain) = setup();
        assert_eq!(domain.name(), "handle-vm");
        assert!(!domain.uuid().is_nil());
        assert!(format!("{domain:?}").contains("handle-vm"));
    }

    #[test]
    fn full_lifecycle_through_handle() {
        let (_conn, domain) = setup();
        assert_eq!(domain.state().unwrap(), DomainState::Shutoff);
        assert!(!domain.is_active().unwrap());
        domain.start().unwrap();
        assert!(domain.is_active().unwrap());
        assert!(domain.id().unwrap() > 0);
        domain.suspend().unwrap();
        assert_eq!(domain.state().unwrap(), DomainState::Paused);
        domain.resume().unwrap();
        domain.managed_save().unwrap();
        assert_eq!(domain.state().unwrap(), DomainState::Saved);
        assert!(domain.info().unwrap().has_managed_save);
        domain.restore().unwrap();
        domain.reboot().unwrap();
        domain.shutdown().unwrap();
        domain.undefine().unwrap();
        assert!(domain.info().is_err(), "handle goes stale after undefine");
    }

    #[test]
    fn id_of_inactive_domain_is_an_error() {
        let (_conn, domain) = setup();
        let err = domain.id().unwrap_err();
        assert_eq!(err.code(), crate::ErrorCode::OperationInvalid);
    }

    #[test]
    fn tuning_and_snapshots() {
        let (_conn, domain) = setup();
        domain.set_vcpus(2).unwrap();
        assert_eq!(domain.info().unwrap().vcpus, 2);
        domain.snapshot_create("s1").unwrap();
        domain.snapshot_create("s2").unwrap();
        assert_eq!(domain.snapshot_list().unwrap(), vec!["s1", "s2"]);
        domain.set_autostart(true).unwrap();
        assert!(domain.info().unwrap().autostart);
    }

    #[test]
    fn xml_desc_reparses() {
        let (_conn, domain) = setup();
        let xml = domain.xml_desc().unwrap();
        let config = DomainConfig::from_xml_str(&xml).unwrap();
        assert_eq!(config.name, "handle-vm");
        assert_eq!(config.uuid, Some(domain.uuid()));
    }

    #[test]
    fn device_attach_detach() {
        let (_conn, domain) = setup();
        domain
            .attach_device("<disk><source file='/x.img'/><target dev='vdz'/></disk>")
            .unwrap();
        assert!(domain.xml_desc().unwrap().contains("vdz"));
        domain.detach_device("vdz").unwrap();
        assert!(!domain.xml_desc().unwrap().contains("vdz"));
    }
}

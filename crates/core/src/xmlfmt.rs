//! Typed resource descriptions and their XML forms.
//!
//! Every managed object is described by an XML document with a stable
//! schema (the libvirt approach: XML is *the* exchange format between
//! management applications, the library and the daemon). This module
//! defines the typed configurations, their serialization to/from XML, and
//! the conversions to the simulated hypervisor's spec types.

use std::net::Ipv4Addr;
use std::str::FromStr;

use hypersim::network::ForwardMode;
use hypersim::{DomainSpec, MiB, NetworkSpec, PoolBackend, PoolSpec, SimDisk, SimNic, VolumeSpec};
use virt_xml::Element;

use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::uuid::Uuid;

fn required_child_text(el: &Element, name: &str) -> VirtResult<String> {
    el.child_text(name)
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .ok_or_else(|| {
            VirtError::new(
                ErrorCode::XmlError,
                format!("<{}> is missing required <{name}> element", el.name()),
            )
        })
}

fn parse_u64_text(el: &Element, name: &str) -> VirtResult<u64> {
    let text = required_child_text(el, name)?;
    text.parse::<u64>().map_err(|_| {
        VirtError::new(
            ErrorCode::XmlError,
            format!("<{name}> value '{text}' is not a number"),
        )
    })
}

fn expect_root(el: &Element, name: &str) -> VirtResult<()> {
    if el.name() != name {
        return Err(VirtError::new(
            ErrorCode::XmlError,
            format!("expected <{name}> document, found <{}>", el.name()),
        ));
    }
    Ok(())
}

/// A virtual disk in a domain description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskConfig {
    /// Guest device name (e.g. `vda`).
    pub target: String,
    /// Backing file or volume path.
    pub source: String,
    /// Capacity in MiB.
    pub capacity_mib: u64,
    /// Bus (`virtio`, `ide`, ...).
    pub bus: String,
}

impl DiskConfig {
    fn to_xml(&self) -> Element {
        let mut disk = Element::new("disk");
        disk.set_attr("type", "file").set_attr("device", "disk");
        let mut source = Element::new("source");
        source.set_attr("file", &self.source);
        disk.push_child(source);
        let mut target = Element::new("target");
        target
            .set_attr("dev", &self.target)
            .set_attr("bus", &self.bus);
        disk.push_child(target);
        let mut capacity = Element::with_text("capacity", self.capacity_mib.to_string());
        capacity.set_attr("unit", "MiB");
        disk.push_child(capacity);
        disk
    }

    fn from_xml(el: &Element) -> VirtResult<DiskConfig> {
        let target_el = el
            .child("target")
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "<disk> is missing <target>"))?;
        let target = target_el
            .attr("dev")
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "<target> is missing dev="))?
            .to_string();
        let bus = target_el.attr("bus").unwrap_or("virtio").to_string();
        let source = el
            .child("source")
            .and_then(|s| s.attr("file"))
            .unwrap_or_default()
            .to_string();
        let capacity_mib = match el.child("capacity") {
            Some(_) => parse_u64_text(el, "capacity")?,
            None => 0,
        };
        Ok(DiskConfig {
            target,
            source,
            capacity_mib,
            bus,
        })
    }
}

/// A virtual network interface in a domain description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceConfig {
    /// MAC address.
    pub mac: String,
    /// Virtual network name the NIC connects to.
    pub network: String,
    /// NIC model.
    pub model: String,
}

impl InterfaceConfig {
    fn to_xml(&self) -> Element {
        let mut iface = Element::new("interface");
        iface.set_attr("type", "network");
        let mut mac = Element::new("mac");
        mac.set_attr("address", &self.mac);
        iface.push_child(mac);
        let mut source = Element::new("source");
        source.set_attr("network", &self.network);
        iface.push_child(source);
        let mut model = Element::new("model");
        model.set_attr("type", &self.model);
        iface.push_child(model);
        iface
    }

    fn from_xml(el: &Element) -> VirtResult<InterfaceConfig> {
        let mac = el
            .child("mac")
            .and_then(|m| m.attr("address"))
            .ok_or_else(|| {
                VirtError::new(ErrorCode::XmlError, "<interface> is missing <mac address=>")
            })?
            .to_string();
        let network = el
            .child("source")
            .and_then(|s| s.attr("network"))
            .unwrap_or("default")
            .to_string();
        let model = el
            .child("model")
            .and_then(|m| m.attr("type"))
            .unwrap_or("virtio")
            .to_string();
        Ok(InterfaceConfig {
            mac,
            network,
            model,
        })
    }
}

/// A complete domain description.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use virt_core::xmlfmt::DomainConfig;
///
/// let config = DomainConfig::new("web", 1024, 2);
/// let xml = config.to_xml_string();
/// let parsed = DomainConfig::from_xml_str(&xml)?;
/// assert_eq!(parsed, config);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DomainConfig {
    /// Domain name, unique per host.
    pub name: String,
    /// UUID; `None` lets the hypervisor assign one at define time.
    pub uuid: Option<Uuid>,
    /// Hypervisor type attribute (e.g. `qemu`, `xen`, `lxc`, `esx`).
    pub domain_type: String,
    /// Current memory in MiB.
    pub memory_mib: u64,
    /// Maximum memory (balloon ceiling) in MiB.
    pub max_memory_mib: u64,
    /// vCPU count.
    pub vcpus: u32,
    /// Disks.
    pub disks: Vec<DiskConfig>,
    /// Network interfaces.
    pub interfaces: Vec<InterfaceConfig>,
    /// Memory dirty rate (MiB/s) used by migration modeling.
    pub dirty_rate_mib_s: u64,
}

impl DomainConfig {
    /// A minimal config with sensible defaults.
    pub fn new(name: impl Into<String>, memory_mib: u64, vcpus: u32) -> Self {
        DomainConfig {
            name: name.into(),
            uuid: None,
            domain_type: "qemu".to_string(),
            memory_mib,
            max_memory_mib: memory_mib,
            vcpus,
            disks: Vec::new(),
            interfaces: Vec::new(),
            dirty_rate_mib_s: 100,
        }
    }

    /// Builds the XML element.
    pub fn to_xml(&self) -> Element {
        let mut domain = Element::new("domain");
        domain.set_attr("type", &self.domain_type);
        domain.push_child(Element::with_text("name", &self.name));
        if let Some(uuid) = &self.uuid {
            domain.push_child(Element::with_text("uuid", uuid.to_string()));
        }
        let mut memory = Element::with_text("memory", self.max_memory_mib.to_string());
        memory.set_attr("unit", "MiB");
        domain.push_child(memory);
        let mut current = Element::with_text("currentMemory", self.memory_mib.to_string());
        current.set_attr("unit", "MiB");
        domain.push_child(current);
        domain.push_child(Element::with_text("vcpu", self.vcpus.to_string()));
        let mut dirty = Element::with_text("dirtyRate", self.dirty_rate_mib_s.to_string());
        dirty.set_attr("unit", "MiB/s");
        domain.push_child(dirty);
        let mut devices = Element::new("devices");
        for disk in &self.disks {
            devices.push_child(disk.to_xml());
        }
        for iface in &self.interfaces {
            devices.push_child(iface.to_xml());
        }
        domain.push_child(devices);
        domain
    }

    /// Serializes to compact XML text.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_string()
    }

    /// Parses a domain description element.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on schema violations.
    pub fn from_xml(el: &Element) -> VirtResult<DomainConfig> {
        expect_root(el, "domain")?;
        let domain_type = el.attr("type").unwrap_or("qemu").to_string();
        let name = required_child_text(el, "name")?;
        let uuid = match el.child_text("uuid") {
            Some(text) if !text.trim().is_empty() => Some(text.trim().parse::<Uuid>()?),
            _ => None,
        };
        let max_memory_mib = parse_u64_text(el, "memory")?;
        let memory_mib = match el.child("currentMemory") {
            Some(_) => parse_u64_text(el, "currentMemory")?,
            None => max_memory_mib,
        };
        let vcpus = parse_u64_text(el, "vcpu")? as u32;
        let dirty_rate_mib_s = match el.child("dirtyRate") {
            Some(_) => parse_u64_text(el, "dirtyRate")?,
            None => 100,
        };
        let mut disks = Vec::new();
        let mut interfaces = Vec::new();
        if let Some(devices) = el.child("devices") {
            for child in devices.children() {
                match child.name() {
                    "disk" => disks.push(DiskConfig::from_xml(child)?),
                    "interface" => interfaces.push(InterfaceConfig::from_xml(child)?),
                    _ => {} // Unknown devices are preserved-by-ignoring.
                }
            }
        }
        Ok(DomainConfig {
            name,
            uuid,
            domain_type,
            memory_mib,
            max_memory_mib,
            vcpus,
            disks,
            interfaces,
            dirty_rate_mib_s,
        })
    }

    /// Parses a domain description from XML text.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on parse or schema failures.
    pub fn from_xml_str(xml: &str) -> VirtResult<DomainConfig> {
        DomainConfig::from_xml(&Element::parse(xml)?)
    }

    /// Converts to the simulated hypervisor's spec.
    pub fn to_spec(&self) -> DomainSpec {
        let mut spec = DomainSpec::new(&self.name)
            .memory_mib(self.memory_mib)
            .max_memory_mib(self.max_memory_mib)
            .vcpus(self.vcpus)
            .dirty_rate_mib_s(self.dirty_rate_mib_s);
        for disk in &self.disks {
            spec = spec.disk(SimDisk {
                target: disk.target.clone(),
                source: disk.source.clone(),
                capacity: MiB(disk.capacity_mib),
                bus: disk.bus.clone(),
            });
        }
        for iface in &self.interfaces {
            spec = spec.nic(SimNic {
                mac: iface.mac.clone(),
                network: iface.network.clone(),
                model: iface.model.clone(),
            });
        }
        spec
    }

    /// Rebuilds a config from a hypervisor spec (for `dumpxml`).
    pub fn from_spec(spec: &DomainSpec, domain_type: &str, uuid: Uuid) -> DomainConfig {
        DomainConfig {
            name: spec.name().to_string(),
            uuid: Some(uuid),
            domain_type: domain_type.to_string(),
            memory_mib: spec.memory().0,
            max_memory_mib: spec.max_memory().0,
            vcpus: spec.vcpu_count(),
            disks: spec
                .disks()
                .iter()
                .map(|d| DiskConfig {
                    target: d.target.clone(),
                    source: d.source.clone(),
                    capacity_mib: d.capacity.0,
                    bus: d.bus.clone(),
                })
                .collect(),
            interfaces: spec
                .nics()
                .iter()
                .map(|n| InterfaceConfig {
                    mac: n.mac.clone(),
                    network: n.network.clone(),
                    model: n.model.clone(),
                })
                .collect(),
            dirty_rate_mib_s: spec.dirty_rate(),
        }
    }
}

/// A virtual network description.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Network name.
    pub name: String,
    /// UUID; assigned when omitted.
    pub uuid: Option<Uuid>,
    /// Bridge device name.
    pub bridge: String,
    /// Forward mode.
    pub forward: ForwardMode,
    /// IPv4 subnet base address (a /24).
    pub subnet: Ipv4Addr,
}

impl NetworkConfig {
    /// A NAT network on the given subnet.
    pub fn new(name: impl Into<String>, subnet: Ipv4Addr) -> Self {
        let name = name.into();
        NetworkConfig {
            bridge: format!("virbr-{name}"),
            name,
            uuid: None,
            forward: ForwardMode::Nat,
            subnet,
        }
    }

    /// Builds the XML element.
    pub fn to_xml(&self) -> Element {
        let mut net = Element::new("network");
        net.push_child(Element::with_text("name", &self.name));
        if let Some(uuid) = &self.uuid {
            net.push_child(Element::with_text("uuid", uuid.to_string()));
        }
        let mut bridge = Element::new("bridge");
        bridge.set_attr("name", &self.bridge);
        net.push_child(bridge);
        let mut forward = Element::new("forward");
        forward.set_attr("mode", self.forward.to_string());
        net.push_child(forward);
        let mut ip = Element::new("ip");
        ip.set_attr("address", self.subnet.to_string());
        ip.set_attr("netmask", "255.255.255.0");
        net.push_child(ip);
        net
    }

    /// Serializes to compact XML text.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_string()
    }

    /// Parses a network description.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on schema violations.
    pub fn from_xml_str(xml: &str) -> VirtResult<NetworkConfig> {
        let el = Element::parse(xml)?;
        expect_root(&el, "network")?;
        let name = required_child_text(&el, "name")?;
        let uuid = match el.child_text("uuid") {
            Some(text) if !text.trim().is_empty() => Some(text.trim().parse::<Uuid>()?),
            _ => None,
        };
        let bridge = el
            .child("bridge")
            .and_then(|b| b.attr("name"))
            .map(str::to_string)
            .unwrap_or_else(|| format!("virbr-{name}"));
        let forward = match el.child("forward").and_then(|f| f.attr("mode")) {
            Some(mode) => ForwardMode::from_str(mode).map_err(VirtError::from)?,
            None => ForwardMode::Isolated,
        };
        let subnet = el
            .child("ip")
            .and_then(|ip| ip.attr("address"))
            .ok_or_else(|| {
                VirtError::new(ErrorCode::XmlError, "<network> is missing <ip address=>")
            })?
            .parse::<Ipv4Addr>()
            .map_err(|e| VirtError::new(ErrorCode::XmlError, format!("bad ip address: {e}")))?;
        Ok(NetworkConfig {
            name,
            uuid,
            bridge,
            forward,
            subnet,
        })
    }

    /// Converts to the hypervisor spec.
    pub fn to_spec(&self) -> NetworkSpec {
        NetworkSpec::new(&self.name, self.subnet)
            .forward(self.forward)
            .bridge(&self.bridge)
    }
}

/// A storage pool description.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Pool name.
    pub name: String,
    /// Backend type.
    pub backend: PoolBackend,
    /// Total capacity in MiB.
    pub capacity_mib: u64,
    /// Target path.
    pub target_path: String,
}

impl PoolConfig {
    /// A dir-backed pool.
    pub fn new(name: impl Into<String>, backend: PoolBackend, capacity_mib: u64) -> Self {
        let name = name.into();
        PoolConfig {
            target_path: format!("/var/lib/virt/{name}"),
            name,
            backend,
            capacity_mib,
        }
    }

    /// Builds the XML element.
    pub fn to_xml(&self) -> Element {
        let mut pool = Element::new("pool");
        pool.set_attr("type", self.backend.to_string());
        pool.push_child(Element::with_text("name", &self.name));
        let mut capacity = Element::with_text("capacity", self.capacity_mib.to_string());
        capacity.set_attr("unit", "MiB");
        pool.push_child(capacity);
        let mut target = Element::new("target");
        target.push_child(Element::with_text("path", &self.target_path));
        pool.push_child(target);
        pool
    }

    /// Serializes to compact XML text.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_string()
    }

    /// Parses a pool description.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on schema violations.
    pub fn from_xml_str(xml: &str) -> VirtResult<PoolConfig> {
        let el = Element::parse(xml)?;
        expect_root(&el, "pool")?;
        let backend = el
            .attr("type")
            .unwrap_or("dir")
            .parse::<PoolBackend>()
            .map_err(VirtError::from)?;
        let name = required_child_text(&el, "name")?;
        let capacity_mib = parse_u64_text(&el, "capacity")?;
        let target_path = el
            .find("target/path")
            .map(|p| p.text())
            .filter(|t| !t.is_empty())
            .unwrap_or_else(|| format!("/var/lib/virt/{name}"));
        Ok(PoolConfig {
            name,
            backend,
            capacity_mib,
            target_path,
        })
    }

    /// Converts to the hypervisor spec.
    pub fn to_spec(&self) -> PoolSpec {
        PoolSpec::new(&self.name, self.backend, MiB(self.capacity_mib))
            .target_path(&self.target_path)
    }
}

/// A storage volume description.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeConfig {
    /// Volume name.
    pub name: String,
    /// Capacity in MiB.
    pub capacity_mib: u64,
    /// Image format (`raw`, `qcow2`, ...).
    pub format: String,
}

impl VolumeConfig {
    /// A raw-format volume.
    pub fn new(name: impl Into<String>, capacity_mib: u64) -> Self {
        VolumeConfig {
            name: name.into(),
            capacity_mib,
            format: "raw".to_string(),
        }
    }

    /// Builds the XML element.
    pub fn to_xml(&self) -> Element {
        let mut vol = Element::new("volume");
        vol.push_child(Element::with_text("name", &self.name));
        let mut capacity = Element::with_text("capacity", self.capacity_mib.to_string());
        capacity.set_attr("unit", "MiB");
        vol.push_child(capacity);
        let mut target = Element::new("target");
        let mut format = Element::new("format");
        format.set_attr("type", &self.format);
        target.push_child(format);
        vol.push_child(target);
        vol
    }

    /// Serializes to compact XML text.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_string()
    }

    /// Parses a volume description.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on schema violations.
    pub fn from_xml_str(xml: &str) -> VirtResult<VolumeConfig> {
        let el = Element::parse(xml)?;
        expect_root(&el, "volume")?;
        let name = required_child_text(&el, "name")?;
        let capacity_mib = parse_u64_text(&el, "capacity")?;
        let format = el
            .find("target/format")
            .and_then(|f| f.attr("type"))
            .unwrap_or("raw")
            .to_string();
        Ok(VolumeConfig {
            name,
            capacity_mib,
            format,
        })
    }

    /// Converts to the hypervisor spec.
    pub fn to_spec(&self) -> VolumeSpec {
        VolumeSpec::new(&self.name, MiB(self.capacity_mib)).format(&self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_domain() -> DomainConfig {
        let mut config = DomainConfig::new("web", 1024, 2);
        config.max_memory_mib = 2048;
        config.uuid = Some("6ba7b810-9dad-41d1-80b4-00c04fd430c8".parse().unwrap());
        config.domain_type = "xen".to_string();
        config.dirty_rate_mib_s = 250;
        config.disks.push(DiskConfig {
            target: "vda".to_string(),
            source: "/var/lib/virt/default/web.img".to_string(),
            capacity_mib: 8192,
            bus: "virtio".to_string(),
        });
        config.interfaces.push(InterfaceConfig {
            mac: "52:54:00:aa:bb:cc".to_string(),
            network: "default".to_string(),
            model: "virtio".to_string(),
        });
        config
    }

    #[test]
    fn domain_xml_round_trip() {
        let config = full_domain();
        let xml = config.to_xml_string();
        let parsed = DomainConfig::from_xml_str(&xml).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn minimal_domain_defaults() {
        let xml = "<domain><name>tiny</name><memory unit='MiB'>256</memory><vcpu>1</vcpu></domain>";
        let config = DomainConfig::from_xml_str(xml).unwrap();
        assert_eq!(config.name, "tiny");
        assert_eq!(config.memory_mib, 256);
        assert_eq!(config.max_memory_mib, 256);
        assert_eq!(config.domain_type, "qemu");
        assert_eq!(config.dirty_rate_mib_s, 100);
        assert!(config.uuid.is_none());
        assert!(config.disks.is_empty());
    }

    #[test]
    fn domain_missing_name_rejected() {
        let err = DomainConfig::from_xml_str("<domain><memory>1</memory><vcpu>1</vcpu></domain>")
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::XmlError);
        assert!(err.message().contains("<name>"));
    }

    #[test]
    fn domain_bad_number_rejected() {
        let xml = "<domain><name>x</name><memory>lots</memory><vcpu>1</vcpu></domain>";
        let err = DomainConfig::from_xml_str(xml).unwrap_err();
        assert_eq!(err.code(), ErrorCode::XmlError);
    }

    #[test]
    fn domain_bad_uuid_rejected() {
        let xml =
            "<domain><name>x</name><uuid>nope</uuid><memory>1</memory><vcpu>1</vcpu></domain>";
        assert!(DomainConfig::from_xml_str(xml).is_err());
    }

    #[test]
    fn wrong_root_element_rejected() {
        let err = DomainConfig::from_xml_str("<network><name>x</name></network>").unwrap_err();
        assert!(err.message().contains("expected <domain>"));
    }

    #[test]
    fn domain_spec_round_trip() {
        let config = full_domain();
        let spec = config.to_spec();
        assert_eq!(spec.name(), "web");
        assert_eq!(spec.memory(), MiB(1024));
        assert_eq!(spec.max_memory(), MiB(2048));
        assert_eq!(spec.vcpu_count(), 2);
        assert_eq!(spec.disks().len(), 1);
        assert_eq!(spec.nics().len(), 1);
        assert_eq!(spec.dirty_rate(), 250);

        let back = DomainConfig::from_spec(&spec, "xen", config.uuid.unwrap());
        assert_eq!(back, config);
    }

    #[test]
    fn disk_defaults() {
        let xml = "<domain><name>d</name><memory>1</memory><vcpu>1</vcpu>\
                   <devices><disk><target dev='hda'/></disk></devices></domain>";
        let config = DomainConfig::from_xml_str(xml).unwrap();
        assert_eq!(config.disks[0].bus, "virtio");
        assert_eq!(config.disks[0].capacity_mib, 0);
        assert_eq!(config.disks[0].source, "");
    }

    #[test]
    fn disk_missing_target_rejected() {
        let xml = "<domain><name>d</name><memory>1</memory><vcpu>1</vcpu>\
                   <devices><disk><source file='/x'/></disk></devices></domain>";
        assert!(DomainConfig::from_xml_str(xml).is_err());
    }

    #[test]
    fn interface_missing_mac_rejected() {
        let xml = "<domain><name>d</name><memory>1</memory><vcpu>1</vcpu>\
                   <devices><interface type='network'/></devices></domain>";
        assert!(DomainConfig::from_xml_str(xml).is_err());
    }

    #[test]
    fn unknown_devices_are_ignored() {
        let xml = "<domain><name>d</name><memory>1</memory><vcpu>1</vcpu>\
                   <devices><tpm model='tpm-tis'/><console type='pty'/></devices></domain>";
        let config = DomainConfig::from_xml_str(xml).unwrap();
        assert!(config.disks.is_empty());
        assert!(config.interfaces.is_empty());
    }

    #[test]
    fn network_xml_round_trip() {
        let mut config = NetworkConfig::new("lan", Ipv4Addr::new(10, 0, 0, 0));
        config.uuid = Some(Uuid::generate());
        config.forward = ForwardMode::Route;
        let parsed = NetworkConfig::from_xml_str(&config.to_xml_string()).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn network_without_forward_is_isolated() {
        let xml = "<network><name>n</name><ip address='10.1.0.0'/></network>";
        let config = NetworkConfig::from_xml_str(xml).unwrap();
        assert_eq!(config.forward, ForwardMode::Isolated);
        assert_eq!(config.bridge, "virbr-n");
    }

    #[test]
    fn network_missing_ip_rejected() {
        let err = NetworkConfig::from_xml_str("<network><name>n</name></network>").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XmlError);
    }

    #[test]
    fn network_bad_address_rejected() {
        let xml = "<network><name>n</name><ip address='not-an-ip'/></network>";
        assert!(NetworkConfig::from_xml_str(xml).is_err());
    }

    #[test]
    fn pool_xml_round_trip() {
        let mut config = PoolConfig::new("images", PoolBackend::Logical, 100_000);
        config.target_path = "/dev/vg0".to_string();
        let parsed = PoolConfig::from_xml_str(&config.to_xml_string()).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn pool_defaults() {
        let xml = "<pool><name>p</name><capacity>500</capacity></pool>";
        let config = PoolConfig::from_xml_str(xml).unwrap();
        assert_eq!(config.backend, PoolBackend::Dir);
        assert_eq!(config.target_path, "/var/lib/virt/p");
    }

    #[test]
    fn pool_bad_backend_rejected() {
        let xml = "<pool type='floppy'><name>p</name><capacity>1</capacity></pool>";
        assert!(PoolConfig::from_xml_str(xml).is_err());
    }

    #[test]
    fn volume_xml_round_trip() {
        let mut config = VolumeConfig::new("disk.qcow2", 4096);
        config.format = "qcow2".to_string();
        let parsed = VolumeConfig::from_xml_str(&config.to_xml_string()).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn volume_default_format_is_raw() {
        let xml = "<volume><name>v</name><capacity>10</capacity></volume>";
        assert_eq!(VolumeConfig::from_xml_str(xml).unwrap().format, "raw");
    }

    #[test]
    fn specs_convert() {
        let net = NetworkConfig::new("lan", Ipv4Addr::new(10, 0, 0, 0)).to_spec();
        assert_eq!(net.name(), "lan");
        let pool = PoolConfig::new("p", PoolBackend::Dir, 10).to_spec();
        assert_eq!(pool.capacity(), MiB(10));
        let vol = VolumeConfig::new("v", 5).to_spec();
        assert_eq!(vol.capacity(), MiB(5));
    }
}

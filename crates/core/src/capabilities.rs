//! Host and driver capabilities.
//!
//! `virsh capabilities` returns an XML document describing what the
//! connected hypervisor can do; management tools use it to pick a target
//! for a new guest. This module is the typed form plus its XML encoding
//! (capabilities travel over the RPC boundary as XML text, as in libvirt).

use virt_xml::Element;

use crate::error::{ErrorCode, VirtError, VirtResult};

/// What a connected hypervisor supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// Hypervisor kind (e.g. `qemu`).
    pub hypervisor: String,
    /// Guest execution model (`hvm`, `paravirt`, `container`).
    pub virt_kind: String,
    /// Maximum vCPUs per guest.
    pub max_vcpus: u32,
    /// Feature flags: `migration`, `save_restore`, `snapshots`,
    /// `device_hotplug`, `resource_hotplug`.
    pub features: Vec<String>,
}

impl Capabilities {
    /// Whether a named feature is supported.
    pub fn has_feature(&self, feature: &str) -> bool {
        self.features.iter().any(|f| f == feature)
    }

    /// Builds the XML document.
    pub fn to_xml(&self) -> Element {
        let mut caps = Element::new("capabilities");
        let mut guest = Element::new("guest");
        guest.push_child(Element::with_text("hypervisor", &self.hypervisor));
        guest.push_child(Element::with_text("os_type", &self.virt_kind));
        guest.push_child(Element::with_text("max_vcpus", self.max_vcpus.to_string()));
        caps.push_child(guest);
        let mut features = Element::new("features");
        for feature in &self.features {
            features.push_child(Element::new(feature.as_str()));
        }
        caps.push_child(features);
        caps
    }

    /// Serializes to XML text.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_string()
    }

    /// Parses the XML document form.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on schema violations.
    pub fn from_xml_str(xml: &str) -> VirtResult<Capabilities> {
        let el = Element::parse(xml)?;
        if el.name() != "capabilities" {
            return Err(VirtError::new(
                ErrorCode::XmlError,
                format!("expected <capabilities>, found <{}>", el.name()),
            ));
        }
        let guest = el
            .child("guest")
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "missing <guest>"))?;
        let hypervisor = guest
            .child_text("hypervisor")
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "missing <hypervisor>"))?
            .to_string();
        let virt_kind = guest
            .child_text("os_type")
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "missing <os_type>"))?
            .to_string();
        let max_vcpus = guest
            .child_text("max_vcpus")
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "missing <max_vcpus>"))?
            .parse::<u32>()
            .map_err(|_| VirtError::new(ErrorCode::XmlError, "bad <max_vcpus>"))?;
        let features = el
            .child("features")
            .map(|f| f.children().map(|c| c.name().to_string()).collect())
            .unwrap_or_default();
        Ok(Capabilities {
            hypervisor,
            virt_kind,
            max_vcpus,
            features,
        })
    }

    /// Derives capabilities from a hypersim personality.
    pub fn from_personality(p: &dyn hypersim::personality::Personality) -> Capabilities {
        let caps = p.capabilities();
        let mut features = Vec::new();
        if caps.migration {
            features.push("migration".to_string());
        }
        if caps.save_restore {
            features.push("save_restore".to_string());
        }
        if caps.snapshots {
            features.push("snapshots".to_string());
        }
        if caps.device_hotplug {
            features.push("device_hotplug".to_string());
        }
        if caps.resource_hotplug {
            features.push("resource_hotplug".to_string());
        }
        Capabilities {
            hypervisor: p.name().to_string(),
            virt_kind: p.virt_kind().to_string(),
            max_vcpus: caps.max_vcpus,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersim::personality::{EsxLike, LxcLike, QemuLike, XenLike};

    #[test]
    fn xml_round_trip() {
        let caps = Capabilities {
            hypervisor: "qemu".to_string(),
            virt_kind: "hvm".to_string(),
            max_vcpus: 255,
            features: vec!["migration".to_string(), "snapshots".to_string()],
        };
        let parsed = Capabilities::from_xml_str(&caps.to_xml_string()).unwrap();
        assert_eq!(parsed, caps);
    }

    #[test]
    fn from_personality_reflects_feature_set() {
        let qemu = Capabilities::from_personality(&QemuLike);
        assert_eq!(qemu.hypervisor, "qemu");
        assert!(qemu.has_feature("migration"));
        assert!(qemu.has_feature("snapshots"));

        let xen = Capabilities::from_personality(&XenLike);
        assert!(xen.has_feature("migration"));
        assert!(!xen.has_feature("snapshots"));

        let lxc = Capabilities::from_personality(&LxcLike);
        assert_eq!(lxc.virt_kind, "container");
        assert!(!lxc.has_feature("migration"));
        assert!(!lxc.has_feature("save_restore"));

        let esx = Capabilities::from_personality(&EsxLike);
        assert!(esx.has_feature("save_restore"));
    }

    #[test]
    fn malformed_capabilities_rejected() {
        assert!(Capabilities::from_xml_str("<caps/>").is_err());
        assert!(Capabilities::from_xml_str("<capabilities/>").is_err());
        assert!(Capabilities::from_xml_str(
            "<capabilities><guest><hypervisor>q</hypervisor></guest></capabilities>"
        )
        .is_err());
    }

    #[test]
    fn empty_features_allowed() {
        let xml = "<capabilities><guest><hypervisor>x</hypervisor>\
                   <os_type>hvm</os_type><max_vcpus>1</max_vcpus></guest></capabilities>";
        let caps = Capabilities::from_xml_str(xml).unwrap();
        assert!(caps.features.is_empty());
        assert!(!caps.has_feature("migration"));
    }
}

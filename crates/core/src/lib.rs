//! # virt-core — non-intrusive virtualization management
//!
//! A from-scratch Rust reproduction of the system described in
//! *"Non-intrusive Virtualization Management using Libvirt"* (DATE 2010):
//! a single, stable, hypervisor-agnostic API for managing virtual
//! machines, storage and networks across heterogeneous virtualization
//! platforms — without installing agents in guests or modifying the
//! hypervisor.
//!
//! ## Architecture
//!
//! ```text
//!  management app ──► Connect (URI) ──► DriverRegistry
//!                                        ├── test driver      (stateless, private mock host)
//!                                        ├── esx driver       (stateless, hypervisor's own remote API)
//!                                        └── remote driver    (fallback: XDR RPC to virtd)
//!                                                 │
//!                                               virtd ──► embedded drivers (qemu / xen / lxc)
//!                                                                │
//!                                                            hypersim hosts
//! ```
//!
//! *Stateless* drivers talk to platforms that persist their own state
//! (VMware ESX-style) directly from the client. *Stateful* platforms
//! (QEMU/KVM, Xen, containers) are managed through the `virtd` daemon,
//! which the remote driver reaches over Unix/TCP/TLS/memory transports.
//!
//! ## Quickstart
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use virt_core::xmlfmt::DomainConfig;
//! use virt_core::Connect;
//!
//! let conn = Connect::builder("test:///default").open()?;
//! let domain = conn.define_domain(&DomainConfig::new("demo", 512, 1))?;
//! domain.start()?;
//! assert!(domain.is_active()?);
//! domain.destroy()?;
//! # Ok(())
//! # }
//! ```

pub mod capabilities;
pub mod conn;
pub mod domain;
pub mod driver;
pub mod drivers;
pub mod error;
pub mod event;
pub mod guard;
pub mod job;
pub mod log;
/// Lock-free metrics registry and request-id tracing (re-export of the
/// `virt-metrics` crate, which sits below `virt-rpc` so the transport and
/// worker-pool layers can record into the same registry).
pub use virt_metrics as metrics;
pub mod migrate;
pub mod network;
pub mod protocol;
pub mod statestore;
pub mod storage;
pub mod testbed;
pub mod typedparam;
pub mod uri;
pub mod uuid;
pub mod xmlfmt;

pub use capabilities::Capabilities;
pub use conn::{Connect, ConnectBuilder};
pub use domain::Domain;
pub use driver::{
    DomainRecord, DomainState, DomainStatsRecord, DriverRegistry, HypervisorConnection,
    HypervisorDriver, MigrationOptions, MigrationReport, NetworkRecord, NodeInfo, OpenOptions,
    PoolRecord, VolumeRecord,
};
pub use error::{ErrorCode, VirtError, VirtResult};
pub use event::{CallbackId, DomainEvent, DomainEventKind, EventBus, EventFilter};
pub use guard::{GuardEngine, GuardPolicy, GuardRecord, GuardStatus};
pub use job::{JobHandle, JobKind, JobState, JobStats};
pub use network::Network;
pub use statestore::{DomainStatus, ObjectKind, StateStore, StoreFault, StoreOp, StoreOptions};
pub use storage::{StoragePool, Volume};
pub use typedparam::{ParamValue, TypedParam, TypedParams};
pub use uuid::Uuid;
// Resilience configuration types, re-exported so builder users never
// need a direct virt-rpc dependency.
pub use virt_rpc::keepalive::KeepaliveConfig;
pub use virt_rpc::retry::{BackoffSchedule, BreakerConfig, BreakerState, RetryPolicy};

/// The process-wide registry for client-side RPC metrics
/// (`rpc.reconnect.*`, `rpc.retry.*`, `rpc.late_replies`,
/// `rpc.buf_pool.*`). Every remote connection opened in this process
/// records into it, so counters aggregate across connections; the
/// daemon's admin metrics procedures merge it into their listings.
/// Shared with `virt-rpc` itself so transport-level counters (late
/// replies, buffer pool) land in the same place.
pub fn client_metrics() -> &'static std::sync::Arc<metrics::Registry> {
    virt_rpc::process_metrics()
}

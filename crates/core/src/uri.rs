//! Connection URIs.
//!
//! A connection is addressed by a URI of the libvirt form:
//!
//! ```text
//! driver[+transport]://[username@][hostname][:port]/[path][?param=value&...]
//! ```
//!
//! The scheme's `driver` part selects the hypervisor driver; the optional
//! `+transport` suffix selects how to reach the managing daemon (`unix`,
//! `tcp`, `tls`, or the test-oriented `memory`). A scheme no stateless
//! driver recognizes is routed to the remote driver — exactly libvirt's
//! resolution rule.

use std::fmt;
use std::str::FromStr;

use crate::error::{ErrorCode, VirtError, VirtResult};

/// Transport requested in a connection URI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UriTransport {
    /// Local Unix domain socket.
    Unix,
    /// Plain TCP.
    Tcp,
    /// TLS over TCP.
    Tls,
    /// In-process memory transport (testbeds and benchmarks).
    Memory,
}

impl UriTransport {
    fn parse(s: &str) -> VirtResult<UriTransport> {
        match s {
            "unix" => Ok(UriTransport::Unix),
            "tcp" => Ok(UriTransport::Tcp),
            "tls" => Ok(UriTransport::Tls),
            "memory" => Ok(UriTransport::Memory),
            other => Err(VirtError::new(
                ErrorCode::InvalidUri,
                format!("unknown transport '{other}'"),
            )),
        }
    }
}

impl fmt::Display for UriTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UriTransport::Unix => "unix",
            UriTransport::Tcp => "tcp",
            UriTransport::Tls => "tls",
            UriTransport::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// A parsed connection URI.
///
/// # Examples
///
/// ```
/// use virt_core::uri::ConnectUri;
///
/// let uri: ConnectUri = "qemu+tcp://admin@mgmt.example.com:16509/system?keepalive=off"
///     .parse()
///     .unwrap();
/// assert_eq!(uri.driver(), "qemu");
/// assert_eq!(uri.host(), Some("mgmt.example.com"));
/// assert_eq!(uri.port(), Some(16509));
/// assert_eq!(uri.username(), Some("admin"));
/// assert_eq!(uri.path(), "/system");
/// assert_eq!(uri.param("keepalive"), Some("off"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectUri {
    driver: String,
    transport: Option<UriTransport>,
    username: Option<String>,
    host: Option<String>,
    port: Option<u16>,
    path: String,
    params: Vec<(String, String)>,
}

impl ConnectUri {
    /// The driver scheme, e.g. `qemu`.
    pub fn driver(&self) -> &str {
        &self.driver
    }

    /// The explicit transport, if any.
    pub fn transport(&self) -> Option<UriTransport> {
        self.transport
    }

    /// The username component.
    pub fn username(&self) -> Option<&str> {
        self.username.as_deref()
    }

    /// The host component.
    pub fn host(&self) -> Option<&str> {
        self.host.as_deref()
    }

    /// The port component.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The path component (always begins with `/` when non-empty).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Looks up a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All query parameters in order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// `true` when the URI names no host — a local connection.
    pub fn is_local(&self) -> bool {
        self.host.is_none()
    }

    /// The URI with the transport suffix stripped, as forwarded to the
    /// daemon (the daemon re-resolves the bare driver scheme locally).
    ///
    /// ```
    /// use virt_core::uri::ConnectUri;
    /// let uri: ConnectUri = "qemu+tcp://node7/system".parse().unwrap();
    /// assert_eq!(uri.inner_uri(), "qemu:///system");
    /// ```
    pub fn inner_uri(&self) -> String {
        format!("{}://{}", self.driver, self.path)
    }
}

impl FromStr for ConnectUri {
    type Err = VirtError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |why: &str| VirtError::new(ErrorCode::InvalidUri, format!("'{s}': {why}"));

        let (scheme, rest) = s.split_once("://").ok_or_else(|| bad("missing '://'"))?;
        if scheme.is_empty() {
            return Err(bad("empty scheme"));
        }
        let (driver, transport) = match scheme.split_once('+') {
            Some((driver, transport)) => {
                if driver.is_empty() {
                    return Err(bad("empty driver"));
                }
                (driver.to_string(), Some(UriTransport::parse(transport)?))
            }
            None => (scheme.to_string(), None),
        };
        if !driver
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-')
        {
            return Err(bad("driver contains invalid characters"));
        }

        // Split query off first.
        let (rest, query) = match rest.split_once('?') {
            Some((r, q)) => (r, Some(q)),
            None => (rest, None),
        };

        // Authority ends at the first '/'.
        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], rest[idx..].to_string()),
            None => (rest, String::new()),
        };

        let (username, hostport) = match authority.split_once('@') {
            Some((user, hp)) => {
                if user.is_empty() {
                    return Err(bad("empty username"));
                }
                (Some(user.to_string()), hp)
            }
            None => (None, authority),
        };

        let (host, port) = if hostport.is_empty() {
            (None, None)
        } else {
            match hostport.rsplit_once(':') {
                Some((h, p)) => {
                    let port = p.parse::<u16>().map_err(|_| bad("invalid port"))?;
                    if h.is_empty() {
                        return Err(bad("empty host before port"));
                    }
                    (Some(h.to_string()), Some(port))
                }
                None => (Some(hostport.to_string()), None),
            }
        };

        let mut params = Vec::new();
        if let Some(query) = query {
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => params.push((k.to_string(), v.to_string())),
                    None => params.push((pair.to_string(), String::new())),
                }
            }
        }

        Ok(ConnectUri {
            driver,
            transport,
            username,
            host,
            port,
            path,
            params,
        })
    }
}

impl fmt::Display for ConnectUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.driver)?;
        if let Some(transport) = self.transport {
            write!(f, "+{transport}")?;
        }
        write!(f, "://")?;
        if let Some(user) = &self.username {
            write!(f, "{user}@")?;
        }
        if let Some(host) = &self.host {
            write!(f, "{host}")?;
        }
        if let Some(port) = self.port {
            write!(f, ":{port}")?;
        }
        write!(f, "{}", self.path)?;
        if !self.params.is_empty() {
            write!(f, "?")?;
            for (i, (k, v)) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, "&")?;
                }
                if v.is_empty() {
                    write!(f, "{k}")?;
                } else {
                    write!(f, "{k}={v}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_local_uri() {
        let uri: ConnectUri = "test:///default".parse().unwrap();
        assert_eq!(uri.driver(), "test");
        assert_eq!(uri.transport(), None);
        assert!(uri.is_local());
        assert_eq!(uri.path(), "/default");
    }

    #[test]
    fn full_uri_parses_every_component() {
        let uri: ConnectUri = "xen+tls://root@xenhost:5000/system?no_verify=1&mode=x"
            .parse()
            .unwrap();
        assert_eq!(uri.driver(), "xen");
        assert_eq!(uri.transport(), Some(UriTransport::Tls));
        assert_eq!(uri.username(), Some("root"));
        assert_eq!(uri.host(), Some("xenhost"));
        assert_eq!(uri.port(), Some(5000));
        assert_eq!(uri.path(), "/system");
        assert_eq!(uri.param("no_verify"), Some("1"));
        assert_eq!(uri.param("mode"), Some("x"));
        assert_eq!(uri.param("absent"), None);
        assert!(!uri.is_local());
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "test:///default",
            "qemu:///system",
            "qemu+unix:///system",
            "qemu+tcp://node:16509/system",
            "esx://admin@esx1/",
            "xen+tls://root@xenhost:5000/system?no_verify=1",
            "lxc+memory://nodeb/",
            "qemu://host/system?a&b=2",
        ] {
            let uri: ConnectUri = text.parse().unwrap();
            assert_eq!(uri.to_string(), text, "round trip of {text}");
            // Re-parse of the display form is identical.
            assert_eq!(uri.to_string().parse::<ConnectUri>().unwrap(), uri);
        }
    }

    #[test]
    fn inner_uri_strips_transport_and_authority() {
        let uri: ConnectUri = "qemu+tcp://node:16509/system".parse().unwrap();
        assert_eq!(uri.inner_uri(), "qemu:///system");
        let local: ConnectUri = "test:///default".parse().unwrap();
        assert_eq!(local.inner_uri(), "test:///default");
    }

    #[test]
    fn malformed_uris_rejected() {
        for bad in [
            "",
            "qemu",
            "://host/",
            "qemu+warp://h/",
            "+tcp://h/",
            "qemu+tcp://user@:55/x",
            "qemu://host:notaport/",
            "qemu://@host/",
            "q emu://host/",
        ] {
            let err = bad.parse::<ConnectUri>().unwrap_err();
            assert_eq!(err.code(), ErrorCode::InvalidUri, "{bad:?}");
        }
    }

    #[test]
    fn host_without_port_or_path() {
        let uri: ConnectUri = "esx://esx1".parse().unwrap();
        assert_eq!(uri.host(), Some("esx1"));
        assert_eq!(uri.port(), None);
        assert_eq!(uri.path(), "");
    }

    #[test]
    fn empty_param_value_allowed() {
        let uri: ConnectUri = "qemu:///system?readonly".parse().unwrap();
        assert_eq!(uri.param("readonly"), Some(""));
    }

    #[test]
    fn all_transports_parse() {
        for (text, expected) in [
            ("qemu+unix:///s", UriTransport::Unix),
            ("qemu+tcp://h/s", UriTransport::Tcp),
            ("qemu+tls://h/s", UriTransport::Tls),
            ("qemu+memory://h/s", UriTransport::Memory),
        ] {
            let uri: ConnectUri = text.parse().unwrap();
            assert_eq!(uri.transport(), Some(expected));
        }
    }
}

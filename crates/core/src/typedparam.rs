//! Typed parameters.
//!
//! Public function signatures can never change once released, so APIs that
//! may grow new knobs take a list of name-tagged, dynamically typed
//! parameters instead of fixed structs — libvirt's `virTypedParameter`
//! pattern. The same encoding travels over the RPC wire unchanged, which
//! is what keeps old daemons compatible with new clients.

use std::fmt;

use virt_rpc::xdr::{Cursor, XdrDecode, XdrEncode, XdrError};

use crate::error::{ErrorCode, VirtError, VirtResult};

/// The value of a typed parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Signed 32-bit.
    Int(i32),
    /// Unsigned 32-bit.
    UInt(u32),
    /// Signed 64-bit.
    LLong(i64),
    /// Unsigned 64-bit.
    ULLong(u64),
    /// Double-precision float.
    Double(f64),
    /// Boolean.
    Boolean(bool),
    /// UTF-8 string.
    Str(String),
}

impl ParamValue {
    fn discriminant(&self) -> u32 {
        match self {
            ParamValue::Int(_) => 1,
            ParamValue::UInt(_) => 2,
            ParamValue::LLong(_) => 3,
            ParamValue::ULLong(_) => 4,
            ParamValue::Double(_) => 5,
            ParamValue::Boolean(_) => 6,
            ParamValue::Str(_) => 7,
        }
    }

    /// The type's name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::UInt(_) => "uint",
            ParamValue::LLong(_) => "llong",
            ParamValue::ULLong(_) => "ullong",
            ParamValue::Double(_) => "double",
            ParamValue::Boolean(_) => "boolean",
            ParamValue::Str(_) => "string",
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::UInt(v) => write!(f, "{v}"),
            ParamValue::LLong(v) => write!(f, "{v}"),
            ParamValue::ULLong(v) => write!(f, "{v}"),
            ParamValue::Double(v) => write!(f, "{v}"),
            ParamValue::Boolean(v) => write!(f, "{}", if *v { "yes" } else { "no" }),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One named, typed parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedParam {
    /// The field name the receiver dispatches on.
    pub field: String,
    /// The value.
    pub value: ParamValue,
}

impl TypedParam {
    /// Creates a parameter.
    pub fn new(field: impl Into<String>, value: ParamValue) -> Self {
        TypedParam {
            field: field.into(),
            value,
        }
    }

    /// Convenience constructor for unsigned 32-bit values.
    pub fn uint(field: impl Into<String>, value: u32) -> Self {
        TypedParam::new(field, ParamValue::UInt(value))
    }

    /// Convenience constructor for unsigned 64-bit values.
    pub fn ullong(field: impl Into<String>, value: u64) -> Self {
        TypedParam::new(field, ParamValue::ULLong(value))
    }

    /// Convenience constructor for strings.
    pub fn string(field: impl Into<String>, value: impl Into<String>) -> Self {
        TypedParam::new(field, ParamValue::Str(value.into()))
    }

    /// Convenience constructor for booleans.
    pub fn boolean(field: impl Into<String>, value: bool) -> Self {
        TypedParam::new(field, ParamValue::Boolean(value))
    }
}

impl XdrEncode for TypedParam {
    fn encode(&self, out: &mut Vec<u8>) {
        self.field.encode(out);
        self.value.discriminant().encode(out);
        match &self.value {
            ParamValue::Int(v) => v.encode(out),
            ParamValue::UInt(v) => v.encode(out),
            ParamValue::LLong(v) => v.encode(out),
            ParamValue::ULLong(v) => v.encode(out),
            ParamValue::Double(v) => v.encode(out),
            ParamValue::Boolean(v) => v.encode(out),
            ParamValue::Str(v) => v.encode(out),
        }
    }
}

impl XdrDecode for TypedParam {
    fn decode(cursor: &mut Cursor<'_>) -> Result<Self, XdrError> {
        let field = String::decode(cursor)?;
        let value = match u32::decode(cursor)? {
            1 => ParamValue::Int(i32::decode(cursor)?),
            2 => ParamValue::UInt(u32::decode(cursor)?),
            3 => ParamValue::LLong(i64::decode(cursor)?),
            4 => ParamValue::ULLong(u64::decode(cursor)?),
            5 => ParamValue::Double(f64::decode(cursor)?),
            6 => ParamValue::Boolean(bool::decode(cursor)?),
            7 => ParamValue::Str(String::decode(cursor)?),
            other => return Err(XdrError::InvalidDiscriminant(other)),
        };
        Ok(TypedParam { field, value })
    }
}

/// A wire-encodable list of typed parameters (newtype over `Vec` because
/// the XDR traits live in another crate).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TypedParamList(pub Vec<TypedParam>);

impl XdrEncode for TypedParamList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for param in &self.0 {
            param.encode(out);
        }
    }
}

impl XdrDecode for TypedParamList {
    fn decode(cursor: &mut Cursor<'_>) -> Result<Self, XdrError> {
        let len = u32::decode(cursor)?;
        if len > 4096 {
            return Err(XdrError::LengthTooLarge(len));
        }
        Ok(TypedParamList(
            (0..len)
                .map(|_| TypedParam::decode(cursor))
                .collect::<Result<_, _>>()?,
        ))
    }
}

/// Helpers over parameter lists.
pub trait TypedParams {
    /// Finds a parameter by field name.
    fn find(&self, field: &str) -> Option<&TypedParam>;

    /// Extracts an unsigned 32-bit value.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] when present with a different type;
    /// `Ok(None)` when absent.
    fn get_uint(&self, field: &str) -> VirtResult<Option<u32>>;

    /// Extracts a string value (same contract as [`TypedParams::get_uint`]).
    fn get_string(&self, field: &str) -> VirtResult<Option<&str>>;

    /// Rejects duplicate fields and fields outside `allowed`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] describing the offending field.
    fn validate_fields(&self, allowed: &[&str]) -> VirtResult<()>;
}

impl TypedParams for [TypedParam] {
    fn find(&self, field: &str) -> Option<&TypedParam> {
        self.iter().find(|p| p.field == field)
    }

    fn get_uint(&self, field: &str) -> VirtResult<Option<u32>> {
        match self.find(field) {
            None => Ok(None),
            Some(TypedParam {
                value: ParamValue::UInt(v),
                ..
            }) => Ok(Some(*v)),
            Some(other) => Err(VirtError::new(
                ErrorCode::InvalidArg,
                format!(
                    "parameter '{field}' must be uint, got {}",
                    other.value.type_name()
                ),
            )),
        }
    }

    fn get_string(&self, field: &str) -> VirtResult<Option<&str>> {
        match self.find(field) {
            None => Ok(None),
            Some(TypedParam {
                value: ParamValue::Str(v),
                ..
            }) => Ok(Some(v)),
            Some(other) => Err(VirtError::new(
                ErrorCode::InvalidArg,
                format!(
                    "parameter '{field}' must be string, got {}",
                    other.value.type_name()
                ),
            )),
        }
    }

    fn validate_fields(&self, allowed: &[&str]) -> VirtResult<()> {
        for (i, param) in self.iter().enumerate() {
            if !allowed.contains(&param.field.as_str()) {
                return Err(VirtError::new(
                    ErrorCode::InvalidArg,
                    format!("unknown parameter '{}'", param.field),
                ));
            }
            if self[..i].iter().any(|p| p.field == param.field) {
                return Err(VirtError::new(
                    ErrorCode::InvalidArg,
                    format!("duplicate parameter '{}'", param.field),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> Vec<TypedParam> {
        vec![
            TypedParam::new("a", ParamValue::Int(-5)),
            TypedParam::uint("b", 7),
            TypedParam::new("c", ParamValue::LLong(-9_000_000_000)),
            TypedParam::ullong("d", 18_000_000_000),
            TypedParam::new("e", ParamValue::Double(2.5)),
            TypedParam::boolean("f", true),
            TypedParam::string("g", "hello"),
        ]
    }

    #[test]
    fn every_value_type_round_trips_xdr() {
        let params = TypedParamList(sample_params());
        let decoded = TypedParamList::from_xdr(&params.to_xdr()).unwrap();
        assert_eq!(decoded, params);
    }

    #[test]
    fn bad_discriminant_rejected() {
        let mut buf = Vec::new();
        "field".encode(&mut buf);
        99u32.encode(&mut buf);
        assert!(matches!(
            TypedParam::from_xdr(&buf).unwrap_err(),
            XdrError::InvalidDiscriminant(99)
        ));
    }

    #[test]
    fn oversized_list_rejected() {
        let mut buf = Vec::new();
        5000u32.encode(&mut buf);
        assert!(matches!(
            TypedParamList::from_xdr(&buf).unwrap_err(),
            XdrError::LengthTooLarge(5000)
        ));
    }

    #[test]
    fn get_uint_checks_type() {
        let params = sample_params();
        assert_eq!(params.get_uint("b").unwrap(), Some(7));
        assert_eq!(params.get_uint("zz").unwrap(), None);
        let err = params.get_uint("g").unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidArg);
        assert!(err.message().contains("string"));
    }

    #[test]
    fn get_string_checks_type() {
        let params = sample_params();
        assert_eq!(params.get_string("g").unwrap(), Some("hello"));
        assert_eq!(params.get_string("zz").unwrap(), None);
        assert!(params.get_string("b").is_err());
    }

    #[test]
    fn validate_fields_rejects_unknown_and_duplicates() {
        let params = [
            TypedParam::uint("minWorkers", 5),
            TypedParam::uint("maxWorkers", 20),
        ];
        params
            .validate_fields(&["minWorkers", "maxWorkers"])
            .unwrap();

        let unknown = [TypedParam::uint("weird", 1)];
        assert!(unknown.validate_fields(&["minWorkers"]).is_err());

        let dup = [
            TypedParam::uint("minWorkers", 5),
            TypedParam::uint("minWorkers", 6),
        ];
        let err = dup.validate_fields(&["minWorkers"]).unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ParamValue::Boolean(true).to_string(), "yes");
        assert_eq!(ParamValue::Int(-3).to_string(), "-3");
        assert_eq!(ParamValue::Str("x".into()).to_string(), "x");
        assert_eq!(ParamValue::Double(1.5).to_string(), "1.5");
    }

    #[test]
    fn type_names() {
        for (value, name) in [
            (ParamValue::Int(0), "int"),
            (ParamValue::UInt(0), "uint"),
            (ParamValue::LLong(0), "llong"),
            (ParamValue::ULLong(0), "ullong"),
            (ParamValue::Double(0.0), "double"),
            (ParamValue::Boolean(false), "boolean"),
            (ParamValue::Str(String::new()), "string"),
        ] {
            assert_eq!(value.type_name(), name);
        }
    }
}

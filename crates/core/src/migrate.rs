//! Live migration orchestration.
//!
//! Implements the phase protocol libvirt's migration uses (the v3-style
//! Begin/Prepare/Perform/Finish/Confirm sequence), driven from the client
//! over any pair of connections — both embedded, both remote, or mixed:
//!
//! 1. **Begin** (source): produce the domain description to ship.
//! 2. **Prepare** (destination): validate capacity and name.
//! 3. **Perform** (source): run the pre-copy loop, moving memory while the
//!    guest keeps dirtying pages.
//! 4. **Finish** (destination): start the incoming guest.
//! 5. **Confirm** (source): forget the migrated-away guest.
//!
//! Failure at any phase rolls back so that exactly one side owns the
//! domain afterwards: before Finish succeeds the source keeps running; if
//! Confirm fails the destination copy is aborted.

use crate::conn::Connect;
use crate::domain::Domain;
use crate::driver::{MigrationOptions, MigrationReport};
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::job::JobHandle;
use crate::metrics::span::{self, Stage};

impl Domain {
    /// Starts a live migration to the host behind `dest` as a background
    /// job, returning a [`JobHandle`] to poll ([`JobHandle::stats`]),
    /// cancel ([`JobHandle::abort`]) or block on ([`JobHandle::wait`]).
    ///
    /// The Begin and Prepare phases run synchronously, so unsupported
    /// platforms, stopped domains and destination-side validation errors
    /// surface before a handle is returned. The Perform/Finish/Confirm
    /// phases — including their rollback guarantees — run on the job's
    /// worker thread.
    ///
    /// # Errors
    ///
    /// - [`ErrorCode::NoSupport`] when either side lacks migration,
    /// - [`ErrorCode::OperationInvalid`] when the domain is not running
    ///   or already has an active modify job,
    /// - [`ErrorCode::DomainExists`] / capacity errors from the
    ///   destination's Prepare phase.
    pub fn migrate_start(
        &self,
        dest: &Connect,
        options: &MigrationOptions,
    ) -> VirtResult<JobHandle<MigrationReport>> {
        let source = self.connection().clone();
        let dest_conn = dest.raw().clone();
        let name = self.name().to_string();

        // One API-level span covers the whole migration, from the
        // synchronous Begin/Prepare phases through the worker-thread
        // Perform/Finish/Confirm — every RPC the phases issue becomes a
        // child of it, so the trace reads as a single connected tree.
        let api_span = span::enter(Stage::Api, 0);

        if !dest.capabilities()?.has_feature("migration") {
            return Err(VirtError::new(
                ErrorCode::NoSupport,
                "destination does not support migration",
            ));
        }

        // Phase 1: Begin.
        let xml = source.migrate_begin(&name)?;

        // Phase 2: Prepare.
        dest_conn.migrate_prepare(&xml)?;

        let options = *options;
        // The span detaches from this thread (its context slot is
        // restored now) and rides into the worker closure, where it ends
        // after Confirm — giving the trace the migration's full duration.
        let owned_span = api_span.detach();
        Ok(JobHandle::spawn(self.clone(), move || {
            let _ctx = owned_span.as_ref().map(|s| s.resume());
            // Phase 3: Perform. The guest keeps running on the source, so
            // a failure here (including an abort) needs no destination
            // rollback.
            let report = source.migrate_perform(&name, &options)?;

            // Phase 4: Finish — the destination instance starts.
            let finished = match dest_conn.migrate_finish(&xml) {
                Ok(record) => record,
                Err(err) => {
                    // Source still owns a running guest; surface the failure.
                    return Err(VirtError::new(
                        ErrorCode::MigrateFailed,
                        format!("finish phase failed, domain kept on source: {err}"),
                    ));
                }
            };

            // Phase 5: Confirm — source forgets its copy.
            if let Err(err) = source.migrate_confirm(&name) {
                // Two live copies would be a split brain; tear down the
                // destination one and report failure.
                let _ = dest_conn.migrate_abort(&finished.name);
                return Err(VirtError::new(
                    ErrorCode::MigrateFailed,
                    format!("confirm phase failed, destination rolled back: {err}"),
                ));
            }

            Ok(report)
        }))
    }

    /// Live-migrates this domain to the host behind `dest`, blocking
    /// until it completes — [`Domain::migrate_start`] plus
    /// [`JobHandle::wait`].
    ///
    /// On success the domain runs on `dest` and no longer exists on the
    /// source; the returned [`MigrationReport`] carries simulated timing
    /// (total time, downtime, iterations, bytes moved).
    ///
    /// # Errors
    ///
    /// - [`ErrorCode::NoSupport`] when either side lacks migration,
    /// - [`ErrorCode::OperationInvalid`] when the domain is not running,
    /// - [`ErrorCode::DomainExists`] / capacity errors from the
    ///   destination's Prepare phase,
    /// - [`ErrorCode::MigrateFailed`] wrapping mid-flight failures after
    ///   rollback has been applied.
    pub fn migrate_to(
        &self,
        dest: &Connect,
        options: &MigrationOptions,
    ) -> VirtResult<MigrationReport> {
        self.migrate_start(dest, options)?.wait()
    }
}

impl Connect {
    /// Confirm phase, exposed for federation-level reconciliation: make
    /// this host forget its copy of a domain that has been adopted by a
    /// migration destination.
    ///
    /// [`Domain::migrate_to`] runs Confirm itself; a fleet manager needs
    /// the phase separately when the orchestrating client (or the source
    /// daemon) died between Finish and Confirm and the destination copy
    /// is already running — the surviving copy wins and the stale source
    /// copy must be forgotten, whatever state a restart recovered it in.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when this host has no such domain; driver
    /// failures otherwise.
    pub fn confirm_outgoing_migration(&self, name: &str) -> VirtResult<()> {
        self.raw().migrate_confirm(name)
    }

    /// Abort phase, exposed for federation-level reconciliation: tear
    /// down a migration destination's half-adopted copy of `name`.
    ///
    /// Destroys the incoming instance if Finish already started it and
    /// forgets it; a destination that never saw the domain is left
    /// untouched and the call succeeds, so reconciliation can invoke it
    /// unconditionally after a failed or interrupted migration.
    ///
    /// # Errors
    ///
    /// Driver failures (an absent domain is *not* an error).
    pub fn abort_incoming_migration(&self, name: &str) -> VirtResult<()> {
        self.raw().migrate_abort(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::Connect;
    use crate::driver::{DomainState, DriverRegistry, HypervisorDriver};
    use crate::drivers::embedded::EmbeddedConnection;
    use crate::error::ErrorCode;
    use crate::uri::ConnectUri;
    use crate::xmlfmt::DomainConfig;
    use hypersim::personality::{LxcLike, QemuLike};
    use hypersim::{DomainSpec, FaultPlan, LatencyModel, OpKind, SimClock, SimHost};
    use std::sync::Arc;

    /// Builds two connected hosts sharing a clock and wraps them as
    /// Connect objects.
    fn pair() -> (Connect, Connect, SimHost, SimHost) {
        let clock = SimClock::new();
        let src_host = SimHost::builder("src")
            .clock(clock.clone())
            .latency(LatencyModel::zero())
            .build();
        let dst_host = SimHost::builder("dst")
            .clock(clock)
            .latency(LatencyModel::zero())
            .seed(7)
            .build();
        let src = Connect::from_driver(EmbeddedConnection::new(src_host.clone(), "qemu:///src"));
        let dst = Connect::from_driver(EmbeddedConnection::new(dst_host.clone(), "qemu:///dst"));
        (src, dst, src_host, dst_host)
    }

    fn running_domain(conn: &Connect, name: &str, memory: u64) -> Domain {
        let domain = conn
            .define_domain(&DomainConfig::new(name, memory, 1))
            .unwrap();
        domain.start().unwrap();
        domain
    }

    #[test]
    fn successful_migration_moves_the_domain() {
        let (src, dst, _sh, _dh) = pair();
        let domain = running_domain(&src, "vm", 1024);
        let report = domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap();
        assert!(report.converged);
        assert!(report.transferred_mib >= 1024);
        assert!(report.total_ms > 0);
        assert!(src.list_domain_names().unwrap().is_empty());
        let moved = dst.domain_lookup_by_name("vm").unwrap();
        assert_eq!(moved.state().unwrap(), DomainState::Running);
    }

    #[test]
    fn migration_requires_running_domain() {
        let (src, dst, _sh, _dh) = pair();
        let domain = src.define_domain(&DomainConfig::new("vm", 256, 1)).unwrap();
        let err = domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationInvalid);
    }

    #[test]
    fn migration_to_container_host_is_unsupported() {
        let (src, _dst, _sh, _dh) = pair();
        let lxc_host = SimHost::builder("lxc-host")
            .personality(LxcLike)
            .latency(LatencyModel::zero())
            .build();
        let dst = Connect::from_driver(EmbeddedConnection::new(lxc_host, "lxc:///"));
        let domain = running_domain(&src, "vm", 256);
        let err = domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoSupport);
        // Domain untouched on the source.
        assert_eq!(domain.state().unwrap(), DomainState::Running);
    }

    #[test]
    fn prepare_failure_keeps_source_running() {
        let (src, _dst, _sh, _dh) = pair();
        // Destination too small for the guest.
        let tiny = SimHost::builder("tiny")
            .memory_mib(128)
            .personality(QemuLike)
            .latency(LatencyModel::zero())
            .build();
        let dst = Connect::from_driver(EmbeddedConnection::new(tiny, "qemu:///tiny"));
        let domain = running_domain(&src, "vm", 1024);
        let err = domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::InsufficientResources);
        assert_eq!(domain.state().unwrap(), DomainState::Running);
        assert!(dst.list_domain_names().unwrap().is_empty());
    }

    #[test]
    fn name_collision_on_destination_fails_prepare() {
        let (src, dst, _sh, _dh) = pair();
        running_domain(&dst, "vm", 256);
        let domain = running_domain(&src, "vm", 256);
        let err = domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::DomainExists);
        assert_eq!(domain.state().unwrap(), DomainState::Running);
    }

    #[test]
    fn finish_failure_reports_and_keeps_source() {
        // Prepare succeeds (capacity check passes) but the domain table
        // gains a colliding entry before Finish, so the import fails.
        let (src, dst, _sh, dst_host) = pair();
        let domain = running_domain(&src, "vm", 256);

        // Race in a colliding domain after prepare would require a hook;
        // simplest deterministic equivalent: fill the destination *after*
        // prepare by running the phases manually.
        let xml = src.raw().migrate_begin("vm").unwrap();
        dst.raw().migrate_prepare(&xml).unwrap();
        dst_host.define_domain(DomainSpec::new("vm")).unwrap();
        let err = dst.raw().migrate_finish(&xml).unwrap_err();
        assert_eq!(err.code(), ErrorCode::DomainExists);
        assert_eq!(domain.state().unwrap(), DomainState::Running);
    }

    #[test]
    fn perform_failure_keeps_both_sides_consistent() {
        let clock = SimClock::new();
        let src_host = SimHost::builder("src")
            .clock(clock.clone())
            .latency(LatencyModel::zero())
            .faults(FaultPlan::new().fail_on(OpKind::MigratePage, 1))
            .build();
        let dst_host = SimHost::builder("dst")
            .clock(clock)
            .latency(LatencyModel::zero())
            .seed(3)
            .build();
        let src = Connect::from_driver(EmbeddedConnection::new(src_host, "qemu:///src"));
        let dst = Connect::from_driver(EmbeddedConnection::new(dst_host, "qemu:///dst"));

        let domain = running_domain(&src, "vm", 512);
        let err = domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationFailed);
        assert_eq!(domain.state().unwrap(), DomainState::Running);
        assert!(dst.list_domain_names().unwrap().is_empty());
    }

    #[test]
    fn migration_report_scales_with_memory() {
        let (src, dst, _sh, _dh) = pair();
        let small = running_domain(&src, "small", 256);
        let small_report = small
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap();
        let large = running_domain(&src, "large", 8192);
        let large_report = large
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap();
        assert!(large_report.total_ms > small_report.total_ms * 4);
        assert!(large_report.transferred_mib > small_report.transferred_mib * 4);
    }

    #[test]
    fn high_dirty_rate_fails_to_converge_but_still_migrates() {
        let (src, dst, _sh, _dh) = pair();
        let config = {
            let mut c = DomainConfig::new("busy", 4096, 2);
            c.dirty_rate_mib_s = 5_000; // dirties far faster than the link
            c
        };
        let domain = src.define_domain(&config).unwrap();
        domain.start().unwrap();
        let options = MigrationOptions {
            bandwidth_mib_s: 1000,
            ..MigrationOptions::default()
        };
        let report = domain.migrate_to(&dst, &options).unwrap();
        assert!(!report.converged);
        assert_eq!(report.iterations, options.max_iterations);
        assert!(report.downtime_ms > options.max_downtime_ms);
        // The domain still moved (forced stop-and-copy).
        assert!(dst.domain_lookup_by_name("busy").is_ok());
    }

    /// Driver used to route `qemu://` test URIs at embedded hosts.
    #[derive(Debug)]
    struct FixedDriver(Arc<EmbeddedConnection>);

    impl HypervisorDriver for FixedDriver {
        fn name(&self) -> &'static str {
            "fixed"
        }

        fn probe(&self, _uri: &ConnectUri) -> bool {
            true
        }

        fn open(
            &self,
            _uri: &ConnectUri,
        ) -> VirtResult<Arc<dyn crate::driver::HypervisorConnection>> {
            Ok(self.0.clone())
        }
    }

    #[test]
    fn migration_works_through_a_custom_registry() {
        let (src, _dst, _sh, dst_host) = pair();
        let mut registry = DriverRegistry::new();
        registry.register(Arc::new(FixedDriver(EmbeddedConnection::new(
            dst_host,
            "qemu:///fixed",
        ))));
        let dst = Connect::builder("qemu:///fixed")
            .registry(&registry)
            .open()
            .unwrap();
        let domain = running_domain(&src, "vm", 512);
        domain
            .migrate_to(&dst, &MigrationOptions::default())
            .unwrap();
        assert!(dst.domain_lookup_by_name("vm").is_ok());
    }
}

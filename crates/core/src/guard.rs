//! The guard subsystem: per-domain availability policies.
//!
//! The paper's pitch is *non-intrusive management*: guests stay available
//! while management logic watches from the side. The [`GuardEngine`] is
//! that watcher — an always-running supervisor evaluated inside the
//! daemon off the lifecycle [`EventBus`](crate::event::EventBus), with
//! three policies:
//!
//! - [`GuardPolicy::KeepRunning`] — restart the domain whenever it
//!   crashes or stops outside the guard's control, with capped
//!   exponential backoff and per-domain deterministic jitter (the
//!   [`BackoffSchedule`] shared with `virt-rpc` retries) so a crash
//!   storm re-arms spread out rather than as a thundering herd, and a
//!   restart budget after which the guard gives up;
//! - [`GuardPolicy::AutoResume`] — resume the domain when it is paused
//!   unexpectedly;
//! - [`GuardPolicy::GracefulStop`] — ask the guest to shut down, then
//!   destroy it if it has not stopped within a timeout budget.
//!
//! The engine is zero-cost when no policies are defined: event
//! observation is a single relaxed atomic load, and the timer worker
//! thread is only spawned when the first policy arrives. Event callbacks
//! never act inline — lifecycle emits are synchronous, so acting inside
//! the callback would recurse into the driver. Instead the callback only
//! *schedules* work on a monotonic timer queue; a dedicated worker
//! thread executes actions through a [`Weak`] connection handle (no
//! reference cycle with the driver) and exits when the connection dies.
//!
//! Policies persist in the [`StateStore`](crate::statestore::StateStore)
//! as [`GuardRecord`] documents so guards survive daemon restarts;
//! recovery re-arms them and immediately revives recorded-crashed
//! guarded domains. Guard persistence rides the store's group-commit
//! pipeline: arming or clearing a policy blocks on the durable barrier
//! (the record shares a flush cycle with whatever else is in the
//! batch), while the status churn a revival storm generates goes down
//! the write-behind path, where per-object coalescing absorbs it
//! instead of paying an fsync per flip.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use virt_metrics::span::{self, Stage};
use virt_metrics::{Counter, Histogram, Registry};
use virt_rpc::retry::BackoffSchedule;
use virt_xml::Element;

use crate::driver::{DomainState, HypervisorConnection};
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::event::{DomainEvent, DomainEventKind};

/// Default restart budget for `keep-running` guards.
pub const DEFAULT_MAX_RESTARTS: u32 = 5;

/// Default timeout budget for `graceful-stop` guards, in milliseconds.
pub const DEFAULT_STOP_TIMEOUT_MS: u64 = 5_000;

/// An availability policy attached to one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPolicy {
    /// Restart on crash or unwanted shutdown, giving up after
    /// `max_restarts` consecutive failed revivals.
    KeepRunning {
        /// Consecutive restarts before the guard gives up. The counter
        /// resets whenever the domain reaches running again.
        max_restarts: u32,
    },
    /// Resume the domain when it is paused unexpectedly.
    AutoResume,
    /// Graceful shutdown with a destroy escalation after `timeout_ms`.
    GracefulStop {
        /// Budget between the shutdown request and the forced destroy.
        timeout_ms: u64,
    },
}

impl GuardPolicy {
    /// Wire discriminant (`0` is reserved as "no policy").
    pub fn kind(&self) -> u32 {
        match self {
            GuardPolicy::KeepRunning { .. } => 1,
            GuardPolicy::AutoResume => 2,
            GuardPolicy::GracefulStop { .. } => 3,
        }
    }

    /// The policy's numeric parameter (restart budget or timeout).
    pub fn param(&self) -> u64 {
        match self {
            GuardPolicy::KeepRunning { max_restarts } => u64::from(*max_restarts),
            GuardPolicy::AutoResume => 0,
            GuardPolicy::GracefulStop { timeout_ms } => *timeout_ms,
        }
    }

    /// Decodes the wire pair; `None` for unknown kinds.
    pub fn from_wire(kind: u32, param: u64) -> Option<GuardPolicy> {
        Some(match kind {
            1 => GuardPolicy::KeepRunning {
                max_restarts: param.min(u64::from(u32::MAX)) as u32,
            },
            2 => GuardPolicy::AutoResume,
            3 => GuardPolicy::GracefulStop { timeout_ms: param },
            _ => return None,
        })
    }

    /// The policy's stable name, used in XML records and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            GuardPolicy::KeepRunning { .. } => "keep-running",
            GuardPolicy::AutoResume => "auto-resume",
            GuardPolicy::GracefulStop { .. } => "graceful-stop",
        }
    }

    fn from_label(label: &str, param: u64) -> Option<GuardPolicy> {
        match label {
            "keep-running" => Some(GuardPolicy::KeepRunning {
                max_restarts: param.min(u64::from(u32::MAX)) as u32,
            }),
            "auto-resume" => Some(GuardPolicy::AutoResume),
            "graceful-stop" => Some(GuardPolicy::GracefulStop { timeout_ms: param }),
            _ => None,
        }
    }
}

impl std::fmt::Display for GuardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The persisted form of one guard policy — what `etc/guards` remembers
/// between daemon lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardRecord {
    /// The guarded domain's name.
    pub domain: String,
    /// The policy to re-arm at recovery.
    pub policy: GuardPolicy,
}

impl GuardRecord {
    /// Serializes to the guard-record XML document.
    pub fn to_xml_string(&self) -> String {
        let mut el = Element::new("guard");
        el.set_attr("policy", self.policy.label());
        el.set_attr("param", self.policy.param().to_string());
        el.push_child(Element::with_text("domain", self.domain.clone()));
        el.to_pretty_string()
    }

    /// Parses a guard-record document (schema validation: unknown or
    /// missing fields are errors, so a corrupt-but-checksummed file
    /// still cannot smuggle garbage into recovery).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on any malformed document.
    pub fn from_xml_str(xml: &str) -> VirtResult<GuardRecord> {
        let bad =
            |what: &str| VirtError::new(ErrorCode::XmlError, format!("guard: invalid {what}"));
        let el = Element::parse(xml)
            .map_err(|e| VirtError::new(ErrorCode::XmlError, format!("guard: {e}")))?;
        if el.name() != "guard" {
            return Err(bad("root element"));
        }
        let domain = el
            .child_text("domain")
            .ok_or_else(|| bad("domain"))?
            .to_string();
        if domain.is_empty() {
            return Err(bad("domain"));
        }
        let param: u64 = el
            .attr("param")
            .ok_or_else(|| bad("param"))?
            .parse()
            .map_err(|_| bad("param"))?;
        let policy = el
            .attr("policy")
            .and_then(|label| GuardPolicy::from_label(label, param))
            .ok_or_else(|| bad("policy"))?;
        Ok(GuardRecord { domain, policy })
    }
}

/// A point-in-time view of one guard, as reported by `vsh guard status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardStatus {
    /// The guarded domain.
    pub domain: String,
    /// The active policy.
    pub policy: GuardPolicy,
    /// Consecutive restarts since the domain last reached running.
    pub restarts: u32,
    /// Whether the restart budget is exhausted.
    pub gave_up: bool,
    /// Time until the next scheduled action, when one is pending.
    pub next_retry: Option<Duration>,
    /// The last lifecycle observation that drove the guard.
    pub last_event: String,
}

/// What the worker does when a scheduled entry comes due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Start a crashed/stopped `keep-running` domain.
    Start,
    /// Resume a paused `auto-resume` domain.
    Resume,
    /// Ask a `graceful-stop` domain to shut down.
    Shutdown,
    /// Destroy a `graceful-stop` domain that outlived its budget.
    DestroyCheck,
}

/// One timer-queue entry. Ordered so the [`BinaryHeap`] pops the
/// earliest deadline first (sequence number breaks ties FIFO).
#[derive(Debug)]
struct Scheduled {
    due: Instant,
    seq: u64,
    epoch: u64,
    domain: String,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-domain supervisor state.
#[derive(Debug)]
struct GuardState {
    policy: GuardPolicy,
    restarts: u32,
    gave_up: bool,
    next_due: Option<Instant>,
    last_event: &'static str,
    /// Bumped on re-arm so stale queue entries are discarded.
    epoch: u64,
}

#[derive(Debug)]
struct GuardMetrics {
    revived: Arc<Counter>,
    gave_up: Arc<Counter>,
    resumed: Arc<Counter>,
    stopped: Arc<Counter>,
    backoff_ms: Arc<Histogram>,
}

impl GuardMetrics {
    fn detached() -> GuardMetrics {
        GuardMetrics {
            revived: Arc::new(Counter::new()),
            gave_up: Arc::new(Counter::new()),
            resumed: Arc::new(Counter::new()),
            stopped: Arc::new(Counter::new()),
            backoff_ms: Arc::new(Histogram::new()),
        }
    }

    fn published(registry: &Registry) -> GuardMetrics {
        GuardMetrics {
            revived: registry.counter(
                "guard.revived",
                "Guarded domains restarted or resumed back to running by the guard engine",
            ),
            gave_up: registry.counter(
                "guard.gave_up",
                "Guards that exhausted their restart budget",
            ),
            resumed: registry.counter("guard.resumed", "Paused guarded domains auto-resumed"),
            stopped: registry.counter(
                "guard.stopped",
                "Graceful-stop guards completed (shutdown or destroy escalation)",
            ),
            backoff_ms: registry.histogram(
                "guard.backoff_ms",
                "Backoff delay applied before each guarded restart",
            ),
        }
    }
}

struct EngineInner {
    conn: Mutex<Option<Weak<dyn HypervisorConnection>>>,
    states: Mutex<HashMap<String, GuardState>>,
    /// Count of defined policies; the zero-cost gate for [`GuardEngine::observe`].
    guarded: AtomicUsize,
    queue: Mutex<BinaryHeap<Scheduled>>,
    cv: Condvar,
    worker: Mutex<Option<JoinHandle<()>>>,
    running: AtomicBool,
    seq: AtomicU64,
    epoch: AtomicU64,
    backoff: Mutex<BackoffSchedule>,
    metrics: RwLock<GuardMetrics>,
}

/// The always-running per-domain availability supervisor.
///
/// Cheap to clone; all clones share one state table, timer queue, and
/// worker thread.
#[derive(Clone)]
pub struct GuardEngine {
    inner: Arc<EngineInner>,
}

impl std::fmt::Debug for GuardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardEngine")
            .field("guarded", &self.inner.guarded.load(Ordering::Relaxed))
            .field("running", &self.inner.running.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for GuardEngine {
    fn default() -> Self {
        GuardEngine::new()
    }
}

/// Default backoff ladder for guarded restarts: 50 ms doubling to a 2 s
/// cap — fast enough that a storm converges quickly, slow enough that a
/// crash loop backs off visibly.
fn default_guard_backoff() -> BackoffSchedule {
    BackoffSchedule {
        initial: Duration::from_millis(50),
        max: Duration::from_secs(2),
        multiplier: 2,
    }
}

impl GuardEngine {
    /// Creates an idle engine: no policies, no worker thread.
    pub fn new() -> GuardEngine {
        GuardEngine {
            inner: Arc::new(EngineInner {
                conn: Mutex::new(None),
                states: Mutex::new(HashMap::new()),
                guarded: AtomicUsize::new(0),
                queue: Mutex::new(BinaryHeap::new()),
                cv: Condvar::new(),
                worker: Mutex::new(None),
                running: AtomicBool::new(false),
                seq: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
                backoff: Mutex::new(default_guard_backoff()),
                metrics: RwLock::new(GuardMetrics::detached()),
            }),
        }
    }

    /// Attaches the connection the worker acts through. Held weakly so
    /// the engine never keeps the driver alive; the worker exits when
    /// the connection is dropped.
    pub fn attach(&self, conn: Weak<dyn HypervisorConnection>) {
        *self.inner.conn.lock() = Some(conn);
    }

    /// Replaces the restart backoff ladder.
    pub fn set_backoff(&self, schedule: BackoffSchedule) {
        *self.inner.backoff.lock() = schedule;
    }

    /// The restart backoff ladder currently in effect.
    pub fn backoff(&self) -> BackoffSchedule {
        *self.inner.backoff.lock()
    }

    /// Publishes the engine's metrics into `registry` (get-or-create, so
    /// several engines in one daemon aggregate into one `guard.*` set).
    pub fn publish_metrics(&self, registry: &Registry) {
        *self.inner.metrics.write() = GuardMetrics::published(registry);
    }

    /// Number of domains currently guarded.
    pub fn guarded_count(&self) -> usize {
        self.inner.guarded.load(Ordering::Relaxed)
    }

    /// Installs (or replaces) `domain`'s policy and arms the worker.
    /// A `graceful-stop` policy acts immediately: the shutdown request
    /// is scheduled now and the destroy escalation at `now + timeout`.
    pub fn set_policy(&self, domain: &str, policy: GuardPolicy) {
        self.ensure_worker();
        let epoch = self.inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let now = Instant::now();
        let mut pending = Vec::new();
        {
            let mut states = self.inner.states.lock();
            let next_due = match policy {
                GuardPolicy::GracefulStop { timeout_ms } => {
                    pending.push((now, Action::Shutdown));
                    pending.push((
                        now + Duration::from_millis(timeout_ms),
                        Action::DestroyCheck,
                    ));
                    Some(now + Duration::from_millis(timeout_ms))
                }
                _ => None,
            };
            let fresh = states
                .insert(
                    domain.to_string(),
                    GuardState {
                        policy,
                        restarts: 0,
                        gave_up: false,
                        next_due,
                        last_event: "armed",
                        epoch,
                    },
                )
                .is_none();
            if fresh {
                self.inner.guarded.fetch_add(1, Ordering::Relaxed);
            }
        }
        for (due, action) in pending {
            self.push(due, epoch, domain, action);
        }
    }

    /// Removes `domain`'s policy; `true` when one was present. Queued
    /// actions for the removed guard are discarded when they come due.
    pub fn remove_policy(&self, domain: &str) -> bool {
        let removed = self.inner.states.lock().remove(domain).is_some();
        if removed {
            self.inner.guarded.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// The policy guarding `domain`, when one is defined.
    pub fn policy(&self, domain: &str) -> Option<GuardPolicy> {
        self.inner.states.lock().get(domain).map(|s| s.policy)
    }

    /// Point-in-time status of one guard.
    pub fn status(&self, domain: &str) -> Option<GuardStatus> {
        let now = Instant::now();
        self.inner
            .states
            .lock()
            .get(domain)
            .map(|s| Self::snapshot(domain, s, now))
    }

    /// Status of every guard, sorted by domain name.
    pub fn statuses(&self) -> Vec<GuardStatus> {
        let now = Instant::now();
        let mut all: Vec<GuardStatus> = self
            .inner
            .states
            .lock()
            .iter()
            .map(|(name, s)| Self::snapshot(name, s, now))
            .collect();
        all.sort_by(|a, b| a.domain.cmp(&b.domain));
        all
    }

    /// The persisted form of every guard, for statestore writes.
    pub fn records(&self) -> Vec<GuardRecord> {
        self.inner
            .states
            .lock()
            .iter()
            .map(|(name, s)| GuardRecord {
                domain: name.clone(),
                policy: s.policy,
            })
            .collect()
    }

    fn snapshot(domain: &str, s: &GuardState, now: Instant) -> GuardStatus {
        GuardStatus {
            domain: domain.to_string(),
            policy: s.policy,
            restarts: s.restarts,
            gave_up: s.gave_up,
            next_retry: if s.gave_up {
                None
            } else {
                s.next_due.map(|due| due.saturating_duration_since(now))
            },
            last_event: s.last_event.to_string(),
        }
    }

    /// Counts one revival performed outside the worker (the recovery
    /// pass starts recorded-crashed domains synchronously).
    pub fn note_revived(&self) {
        self.inner.metrics.read().revived.inc();
    }

    /// Schedules an immediate revival of a recorded-crashed guarded
    /// domain (the recovery path: no backoff, the crash predates this
    /// daemon life).
    pub fn revive_now(&self, domain: &str) {
        self.act_now(domain, "recovered-crashed", Action::Start);
    }

    /// Schedules an immediate restart of an already-crashed
    /// `keep-running` domain (the arm-time reconcile path: the crash
    /// predates the guard, so waiting for the next Crashed event would
    /// wait forever).
    pub fn restart_now(&self, domain: &str) {
        self.act_now(domain, "armed-crashed", Action::Start);
    }

    /// Schedules an immediate resume of an already-paused `auto-resume`
    /// domain (the arm-time reconcile counterpart of [`restart_now`]).
    ///
    /// [`restart_now`]: GuardEngine::restart_now
    pub fn resume_now(&self, domain: &str) {
        self.act_now(domain, "armed-paused", Action::Resume);
    }

    fn act_now(&self, domain: &str, label: &'static str, action: Action) {
        let epoch = {
            let mut states = self.inner.states.lock();
            let Some(st) = states.get_mut(domain) else {
                return;
            };
            st.last_event = label;
            st.next_due = Some(Instant::now());
            st.epoch
        };
        self.push(Instant::now(), epoch, domain, action);
    }

    /// The lifecycle-event observer. Registered filtered to lifecycle
    /// events; MUST stay non-reentrant — emits are synchronous, so this
    /// only updates state and schedules, never calls back into the
    /// driver.
    pub fn observe(&self, event: &DomainEvent) {
        if self.inner.guarded.load(Ordering::Relaxed) == 0 {
            return;
        }
        match event.kind {
            DomainEventKind::Crashed => self.on_down(&event.domain, "crashed"),
            DomainEventKind::Stopped => self.on_down(&event.domain, "stopped"),
            DomainEventKind::Suspended => self.on_suspended(&event.domain),
            DomainEventKind::Started | DomainEventKind::Restored | DomainEventKind::MigratedIn => {
                self.on_up(&event.domain, "started")
            }
            DomainEventKind::Resumed => self.on_up(&event.domain, "resumed"),
            DomainEventKind::Undefined | DomainEventKind::MigratedOut => {
                // The domain left this host on purpose; the guard goes
                // with it (fleet-level HA re-places it elsewhere).
                self.remove_policy(&event.domain);
            }
            _ => {}
        }
    }

    /// A crash or stop: escalate per policy.
    fn on_down(&self, domain: &str, label: &'static str) {
        let mut scheduled = None;
        let mut completed_stop = false;
        {
            let mut states = self.inner.states.lock();
            let Some(st) = states.get_mut(domain) else {
                return;
            };
            st.last_event = label;
            match st.policy {
                GuardPolicy::KeepRunning { max_restarts } => {
                    if st.gave_up {
                        return;
                    }
                    st.restarts += 1;
                    if st.restarts > max_restarts {
                        st.gave_up = true;
                        st.next_due = None;
                        self.inner.metrics.read().gave_up.inc();
                    } else {
                        let delay = self
                            .inner
                            .backoff
                            .lock()
                            .delay(st.restarts, BackoffSchedule::seed_for(domain));
                        self.inner.metrics.read().backoff_ms.record(delay);
                        let due = Instant::now() + delay;
                        st.next_due = Some(due);
                        scheduled = Some((due, st.epoch));
                    }
                }
                GuardPolicy::GracefulStop { .. } => {
                    // Target state reached; the guard retires.
                    states.remove(domain);
                    self.inner.guarded.fetch_sub(1, Ordering::Relaxed);
                    completed_stop = true;
                }
                GuardPolicy::AutoResume => {
                    st.next_due = None;
                }
            }
        }
        if completed_stop {
            self.inner.metrics.read().stopped.inc();
        }
        if let Some((due, epoch)) = scheduled {
            self.push(due, epoch, domain, Action::Start);
        }
    }

    fn on_suspended(&self, domain: &str) {
        let mut scheduled = None;
        {
            let mut states = self.inner.states.lock();
            let Some(st) = states.get_mut(domain) else {
                return;
            };
            st.last_event = "suspended";
            if let GuardPolicy::AutoResume = st.policy {
                let due = Instant::now();
                st.next_due = Some(due);
                scheduled = Some((due, st.epoch));
            }
        }
        if let Some((due, epoch)) = scheduled {
            self.push(due, epoch, domain, Action::Resume);
        }
    }

    /// The domain reached running: reset the restart ladder. A manual
    /// start also re-arms a given-up guard — operator intervention is
    /// the documented way to clear `gave_up`.
    fn on_up(&self, domain: &str, label: &'static str) {
        let mut states = self.inner.states.lock();
        let Some(st) = states.get_mut(domain) else {
            return;
        };
        if matches!(st.policy, GuardPolicy::GracefulStop { .. }) {
            return;
        }
        st.last_event = label;
        st.restarts = 0;
        st.gave_up = false;
        st.next_due = None;
        st.epoch = self.inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
    }

    fn push(&self, due: Instant, epoch: u64, domain: &str, action: Action) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.inner.queue.lock();
        queue.push(Scheduled {
            due,
            seq,
            epoch,
            domain: domain.to_string(),
            action,
        });
        self.inner.cv.notify_all();
    }

    fn ensure_worker(&self) {
        let mut worker = self.inner.worker.lock();
        if worker.is_some() {
            return;
        }
        self.inner.running.store(true, Ordering::Release);
        let inner = Arc::clone(&self.inner);
        *worker = Some(
            std::thread::Builder::new()
                .name("guard-engine".into())
                .spawn(move || worker_loop(&inner))
                .expect("guard worker thread spawns"),
        );
    }

    /// Stops and joins the worker thread. Idempotent; a later
    /// [`GuardEngine::set_policy`] restarts it.
    pub fn stop(&self) {
        self.inner.running.store(false, Ordering::Release);
        {
            let _queue = self.inner.queue.lock();
            self.inner.cv.notify_all();
        }
        let handle = self.inner.worker.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Arc<EngineInner>) {
    loop {
        let task = {
            let mut queue = inner.queue.lock();
            loop {
                if !inner.running.load(Ordering::Acquire) {
                    return;
                }
                // Exit with the driver: an attached connection that has
                // been dropped leaves nothing to supervise.
                if let Some(weak) = inner.conn.lock().as_ref() {
                    if weak.strong_count() == 0 {
                        return;
                    }
                }
                let now = Instant::now();
                let wait = match queue.peek() {
                    Some(s) if s.due <= now => break queue.pop(),
                    Some(s) => (s.due - now).min(Duration::from_secs(1)),
                    None => Duration::from_secs(1),
                };
                inner.cv.wait_for(&mut queue, wait);
            }
        };
        let Some(task) = task else { continue };
        if !inner.running.load(Ordering::Acquire) {
            return;
        }
        // Discard stale entries: the guard was removed or re-armed
        // (epoch bumped) after this entry was queued.
        let valid = {
            let states = inner.states.lock();
            states
                .get(&task.domain)
                .is_some_and(|st| st.epoch == task.epoch && !st.gave_up)
        };
        if !valid {
            continue;
        }
        let weak = inner.conn.lock().clone();
        let conn = match weak {
            // Not attached yet; the entry was consumed, drop it.
            None => continue,
            Some(weak) => match weak.upgrade() {
                Some(conn) => conn,
                // The driver is gone; nothing left to supervise.
                None => return,
            },
        };
        // No engine locks may be held across driver calls: lifecycle
        // emits run the observer synchronously on this thread.
        execute(inner, &conn, &task);
    }
}

fn execute(inner: &Arc<EngineInner>, conn: &Arc<dyn HypervisorConnection>, task: &Scheduled) {
    let _work = span::stage(Stage::DriverWork);
    match task.action {
        Action::Start => match conn.start_domain(&task.domain) {
            Ok(record) if record.state != DomainState::Crashed => {
                inner.metrics.read().revived.inc();
            }
            Ok(_) => {
                // Crashed again during start; the Crashed event this
                // emitted has already scheduled the next rung.
            }
            Err(_) => {
                let running = conn
                    .lookup_domain_by_name(&task.domain)
                    .map(|r| r.state == DomainState::Running)
                    .unwrap_or(false);
                if !running {
                    // Start failed (capacity, races): climb the ladder
                    // as if the domain had crashed again.
                    escalate_failed_start(inner, &task.domain);
                }
            }
        },
        Action::Resume => {
            if conn.resume_domain(&task.domain).is_ok() {
                inner.metrics.read().resumed.inc();
            }
        }
        Action::Shutdown => {
            let active = conn
                .lookup_domain_by_name(&task.domain)
                .map(|r| matches!(r.state, DomainState::Running | DomainState::Paused))
                .unwrap_or(false);
            if active {
                let _ = conn.shutdown_domain(&task.domain);
            } else {
                complete_graceful(inner, &task.domain);
            }
        }
        Action::DestroyCheck => {
            if conn.destroy_domain(&task.domain).is_err() {
                // Already gone (or was never active); retire directly.
                complete_graceful(inner, &task.domain);
            }
        }
    }
}

/// Re-runs the keep-running escalation after a failed start attempt.
fn escalate_failed_start(inner: &Arc<EngineInner>, domain: &str) {
    let mut scheduled = None;
    {
        let mut states = inner.states.lock();
        let Some(st) = states.get_mut(domain) else {
            return;
        };
        let GuardPolicy::KeepRunning { max_restarts } = st.policy else {
            return;
        };
        if st.gave_up {
            return;
        }
        st.last_event = "start-failed";
        st.restarts += 1;
        if st.restarts > max_restarts {
            st.gave_up = true;
            st.next_due = None;
            inner.metrics.read().gave_up.inc();
        } else {
            let delay = inner
                .backoff
                .lock()
                .delay(st.restarts, BackoffSchedule::seed_for(domain));
            inner.metrics.read().backoff_ms.record(delay);
            let due = Instant::now() + delay;
            st.next_due = Some(due);
            scheduled = Some((due, st.epoch));
        }
    }
    if let Some((due, epoch)) = scheduled {
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut queue = inner.queue.lock();
        queue.push(Scheduled {
            due,
            seq,
            epoch,
            domain: domain.to_string(),
            action: Action::Start,
        });
        inner.cv.notify_all();
    }
}

/// Retires a graceful-stop guard whose domain is already down.
fn complete_graceful(inner: &Arc<EngineInner>, domain: &str) {
    let removed = {
        let mut states = inner.states.lock();
        match states.get(domain) {
            Some(st) if matches!(st.policy, GuardPolicy::GracefulStop { .. }) => {
                states.remove(domain);
                true
            }
            _ => false,
        }
    };
    if removed {
        inner.guarded.fetch_sub(1, Ordering::Relaxed);
        inner.metrics.read().stopped.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uuid::Uuid;

    fn event(domain: &str, kind: DomainEventKind) -> DomainEvent {
        DomainEvent {
            domain: domain.to_string(),
            uuid: Uuid::generate(),
            kind,
            trace_id: 0,
        }
    }

    #[test]
    fn policy_wire_round_trip() {
        for policy in [
            GuardPolicy::KeepRunning { max_restarts: 7 },
            GuardPolicy::AutoResume,
            GuardPolicy::GracefulStop { timeout_ms: 1234 },
        ] {
            let back = GuardPolicy::from_wire(policy.kind(), policy.param()).unwrap();
            assert_eq!(back, policy);
        }
        assert_eq!(GuardPolicy::from_wire(0, 0), None);
        assert_eq!(GuardPolicy::from_wire(99, 0), None);
    }

    #[test]
    fn record_xml_round_trip_and_rejection() {
        let record = GuardRecord {
            domain: "web".to_string(),
            policy: GuardPolicy::KeepRunning { max_restarts: 8 },
        };
        let xml = record.to_xml_string();
        assert_eq!(GuardRecord::from_xml_str(&xml).unwrap(), record);

        let stop = GuardRecord {
            domain: "db".to_string(),
            policy: GuardPolicy::GracefulStop { timeout_ms: 250 },
        };
        assert_eq!(
            GuardRecord::from_xml_str(&stop.to_xml_string()).unwrap(),
            stop
        );

        for bad in [
            "<guard policy=\"keep-running\"><domain>x</domain></guard>", // no param
            "<guard policy=\"bogus\" param=\"1\"><domain>x</domain></guard>", // unknown policy
            "<guard policy=\"keep-running\" param=\"1\"/>",              // no domain
            "<wrong policy=\"keep-running\" param=\"1\"><domain>x</domain></wrong>",
            "not xml at all",
        ] {
            assert!(
                GuardRecord::from_xml_str(bad).is_err(),
                "must reject: {bad}"
            );
        }
    }

    #[test]
    fn engine_is_idle_until_first_policy() {
        let engine = GuardEngine::new();
        assert_eq!(engine.guarded_count(), 0);
        assert!(engine.inner.worker.lock().is_none(), "no worker yet");
        // Events against an empty engine are a single atomic load.
        engine.observe(&event("ghost", DomainEventKind::Crashed));
        assert!(engine.inner.worker.lock().is_none());
        assert!(engine.statuses().is_empty());
    }

    #[test]
    fn keep_running_escalates_and_gives_up() {
        let engine = GuardEngine::new();
        engine.set_policy("web", GuardPolicy::KeepRunning { max_restarts: 2 });
        assert_eq!(engine.guarded_count(), 1);

        engine.observe(&event("web", DomainEventKind::Crashed));
        let st = engine.status("web").unwrap();
        assert_eq!(st.restarts, 1);
        assert!(!st.gave_up);
        assert!(st.next_retry.is_some(), "a retry must be pending");

        // Reaching running resets the ladder.
        engine.observe(&event("web", DomainEventKind::Started));
        assert_eq!(engine.status("web").unwrap().restarts, 0);

        // Three consecutive crashes with no successful start exhaust
        // max_restarts = 2.
        engine.observe(&event("web", DomainEventKind::Crashed));
        engine.observe(&event("web", DomainEventKind::Crashed));
        engine.observe(&event("web", DomainEventKind::Crashed));
        let st = engine.status("web").unwrap();
        assert!(st.gave_up, "restart budget must exhaust: {st:?}");
        assert_eq!(engine.inner.metrics.read().gave_up.get(), 1);

        // Manual start re-arms.
        engine.observe(&event("web", DomainEventKind::Started));
        assert!(!engine.status("web").unwrap().gave_up);
        engine.stop();
    }

    #[test]
    fn undefine_drops_the_guard() {
        let engine = GuardEngine::new();
        engine.set_policy("gone", GuardPolicy::KeepRunning { max_restarts: 3 });
        engine.observe(&event("gone", DomainEventKind::Undefined));
        assert_eq!(engine.guarded_count(), 0);
        assert!(engine.status("gone").is_none());
        engine.stop();
    }

    #[test]
    fn statuses_sorted_and_records_round_trip() {
        let engine = GuardEngine::new();
        engine.set_policy("zeta", GuardPolicy::AutoResume);
        engine.set_policy("alpha", GuardPolicy::KeepRunning { max_restarts: 1 });
        let all = engine.statuses();
        assert_eq!(
            all.iter().map(|s| s.domain.as_str()).collect::<Vec<_>>(),
            ["alpha", "zeta"]
        );
        let mut records = engine.records();
        records.sort_by(|a, b| a.domain.cmp(&b.domain));
        assert_eq!(records.len(), 2);
        for r in &records {
            let xml = r.to_xml_string();
            assert_eq!(&GuardRecord::from_xml_str(&xml).unwrap(), r);
        }
        engine.stop();
    }
}

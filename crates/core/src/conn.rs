//! The [`Connect`] object — the root of the public API.
//!
//! A `Connect` is opened from a URI, which selects a driver via the
//! registry ([libvirt's resolution rule](crate::driver::DriverRegistry)):
//! stateless drivers first (`test`, `esx`), remote fallback for everything
//! else.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use virt_rpc::keepalive::KeepaliveConfig;
use virt_rpc::retry::{BreakerConfig, RetryPolicy};

use crate::capabilities::Capabilities;
use crate::domain::Domain;
use crate::driver::{DriverRegistry, HypervisorConnection, NodeInfo, OpenOptions};
use crate::error::VirtResult;
use crate::event::{CallbackId, DomainEvent, EventCallback};
use crate::network::Network;
use crate::storage::StoragePool;
use crate::uri::ConnectUri;
use crate::uuid::Uuid;
use crate::xmlfmt::{DomainConfig, NetworkConfig, PoolConfig};

fn default_registry() -> &'static DriverRegistry {
    static REGISTRY: OnceLock<DriverRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = DriverRegistry::new();
        registry.register(Arc::new(crate::drivers::test::TestDriver::new()));
        registry.register(Arc::new(crate::drivers::esx::EsxDriver::new()));
        registry.set_fallback(Arc::new(crate::drivers::remote::RemoteDriver::new()));
        registry
    })
}

/// A connection to a hypervisor or management daemon.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use virt_core::Connect;
///
/// let conn = Connect::builder("test:///default").open()?;
/// let domains = conn.list_all_domains()?;
/// assert_eq!(domains[0].name(), "test");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Connect {
    inner: Arc<dyn HypervisorConnection>,
}

impl std::fmt::Debug for Connect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connect")
            .field("uri", &self.inner.uri())
            .finish()
    }
}

/// Configures and opens a [`Connect`] — the single place every
/// connection option lives.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use std::time::Duration;
/// use virt_core::{Connect, KeepaliveConfig, RetryPolicy};
///
/// let conn = Connect::builder("test:///default")
///     .call_deadline(Duration::from_secs(30))
///     .keepalive(KeepaliveConfig::default())
///     .retry(RetryPolicy::default())
///     .reconnect(true)
///     .open()?;
/// assert!(conn.is_alive());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConnectBuilder<'a> {
    uri: String,
    registry: Option<&'a DriverRegistry>,
    options: OpenOptions,
}

impl<'a> ConnectBuilder<'a> {
    /// Opens against an explicit driver registry instead of the process
    /// default (embedders and tests).
    pub fn registry<'b>(self, registry: &'b DriverRegistry) -> ConnectBuilder<'b> {
        ConnectBuilder {
            uri: self.uri,
            registry: Some(registry),
            options: self.options,
        }
    }

    /// Default deadline for every call on the connection, measured from
    /// call entry and spanning transparent retries.
    pub fn call_deadline(mut self, deadline: Duration) -> Self {
        self.options.call_deadline = Some(deadline);
        self
    }

    /// Enables keepalive probing. Overrides any `?keepalive=` URI
    /// parameter.
    pub fn keepalive(mut self, config: KeepaliveConfig) -> Self {
        self.options.keepalive = Some(config);
        self
    }

    /// Retry policy for idempotent calls after connection failures. The
    /// default never retries.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.options.retry = Some(policy);
        self
    }

    /// Whether a dead connection is transparently re-dialed on the next
    /// call (default: yes).
    pub fn reconnect(mut self, auto: bool) -> Self {
        self.options.reconnect = Some(auto);
        self
    }

    /// Circuit-breaker tuning for the reconnect path.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.options.breaker = Some(config);
        self
    }

    /// Resolves the URI through the registry and opens the connection.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidUri`] on a malformed URI;
    /// [`crate::ErrorCode::NoConnect`] when no endpoint answers.
    pub fn open(&self) -> VirtResult<Connect> {
        let parsed: ConnectUri = self.uri.parse()?;
        let registry = self.registry.unwrap_or_else(|| default_registry());
        Ok(Connect {
            inner: registry.open_with_options(&parsed, &self.options)?,
        })
    }
}

impl Connect {
    /// Starts configuring a connection to `uri`.
    pub fn builder(uri: impl Into<String>) -> ConnectBuilder<'static> {
        ConnectBuilder {
            uri: uri.into(),
            registry: None,
            options: OpenOptions::default(),
        }
    }

    /// Opens a connection using the default driver registry.
    ///
    /// Deprecated: [`Connect::builder`] is the single way in — the
    /// equivalent spelling is `Connect::builder(uri).open()`, and every
    /// connection option (deadlines, keepalive, retry, reconnect,
    /// breaker, registry) hangs off the same builder.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidUri`] on a malformed URI;
    /// [`crate::ErrorCode::NoConnect`] when no endpoint answers.
    #[deprecated(since = "0.2.0", note = "use Connect::builder(uri).open()")]
    pub fn open(uri: &str) -> VirtResult<Connect> {
        Connect::builder(uri).open()
    }

    /// Opens using an explicit registry (embedders and tests).
    ///
    /// Deprecated: use `Connect::builder(uri).registry(registry).open()`.
    ///
    /// # Errors
    ///
    /// As [`ConnectBuilder::open`].
    #[deprecated(
        since = "0.2.0",
        note = "use Connect::builder(uri).registry(registry).open()"
    )]
    pub fn open_with_registry(uri: &str, registry: &DriverRegistry) -> VirtResult<Connect> {
        Connect::builder(uri).registry(registry).open()
    }

    /// Wraps an already constructed driver connection (the daemon uses
    /// this to re-enter the API over its local drivers).
    pub fn from_driver(inner: Arc<dyn HypervisorConnection>) -> Connect {
        Connect { inner }
    }

    /// The canonical URI.
    pub fn uri(&self) -> String {
        self.inner.uri()
    }

    /// The managed host's name.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn hostname(&self) -> VirtResult<String> {
        self.inner.hostname()
    }

    /// Host facts.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn node_info(&self) -> VirtResult<NodeInfo> {
        self.inner.node_info()
    }

    /// Hypervisor capabilities.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn capabilities(&self) -> VirtResult<Capabilities> {
        self.inner.capabilities()
    }

    /// Whether the connection is usable.
    pub fn is_alive(&self) -> bool {
        self.inner.is_alive()
    }

    /// Closes the connection. Idempotent; handles become unusable.
    pub fn close(&self) {
        self.inner.close();
    }

    pub(crate) fn raw(&self) -> &Arc<dyn HypervisorConnection> {
        &self.inner
    }

    // ---- domains ------------------------------------------------------

    /// All domains, active and defined.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn list_all_domains(&self) -> VirtResult<Vec<Domain>> {
        Ok(self
            .inner
            .list_domains()?
            .into_iter()
            .map(|record| Domain::from_record(self.inner.clone(), record))
            .collect())
    }

    /// Names of all domains.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn list_domain_names(&self) -> VirtResult<Vec<String>> {
        Ok(self
            .inner
            .list_domains()?
            .into_iter()
            .map(|r| r.name)
            .collect())
    }

    /// Stats for every domain — state, CPU time, memory and a summary of
    /// any background job — as one typed-parameter record per domain.
    /// Over a remote connection this is a single round-trip regardless of
    /// the domain count (the bulk analogue of polling each domain).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn get_all_domain_stats(&self) -> VirtResult<Vec<crate::driver::DomainStatsRecord>> {
        self.inner.get_all_domain_stats()
    }

    /// Looks up a domain by name.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`].
    pub fn domain_lookup_by_name(&self, name: &str) -> VirtResult<Domain> {
        let record = self.inner.lookup_domain_by_name(name)?;
        Ok(Domain::from_record(self.inner.clone(), record))
    }

    /// Looks up a domain by its active id.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`].
    pub fn domain_lookup_by_id(&self, id: u32) -> VirtResult<Domain> {
        let record = self.inner.lookup_domain_by_id(id)?;
        Ok(Domain::from_record(self.inner.clone(), record))
    }

    /// Looks up a domain by UUID.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoDomain`].
    pub fn domain_lookup_by_uuid(&self, uuid: Uuid) -> VirtResult<Domain> {
        let record = self.inner.lookup_domain_by_uuid(uuid)?;
        Ok(Domain::from_record(self.inner.clone(), record))
    }

    /// Persists a domain from its XML description.
    ///
    /// # Errors
    ///
    /// XML and duplicate failures.
    pub fn define_domain_xml(&self, xml: &str) -> VirtResult<Domain> {
        let record = self.inner.define_domain_xml(xml)?;
        Ok(Domain::from_record(self.inner.clone(), record))
    }

    /// Persists a domain from a typed config (convenience).
    ///
    /// # Errors
    ///
    /// As [`Connect::define_domain_xml`].
    pub fn define_domain(&self, config: &DomainConfig) -> VirtResult<Domain> {
        self.define_domain_xml(&config.to_xml_string())
    }

    /// Creates and starts a transient domain from XML.
    ///
    /// # Errors
    ///
    /// XML, duplicate and capacity failures.
    pub fn create_domain_xml(&self, xml: &str) -> VirtResult<Domain> {
        let record = self.inner.create_domain_xml(xml)?;
        Ok(Domain::from_record(self.inner.clone(), record))
    }

    // ---- guards ---------------------------------------------------------

    /// Statuses of every guarded domain on this connection.
    ///
    /// # Errors
    ///
    /// Connection failures; [`crate::ErrorCode::NoSupport`] on drivers
    /// without a guard engine.
    pub fn guard_list(&self) -> VirtResult<Vec<crate::guard::GuardStatus>> {
        self.inner.guard_list()
    }

    // ---- storage --------------------------------------------------------

    /// Names of all storage pools.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn list_storage_pools(&self) -> VirtResult<Vec<String>> {
        self.inner.list_pools()
    }

    /// Looks up a pool by name.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStoragePool`].
    pub fn storage_pool_lookup_by_name(&self, name: &str) -> VirtResult<StoragePool> {
        let record = self.inner.pool_info(name)?;
        Ok(StoragePool::new(self.inner.clone(), record.name))
    }

    /// Defines a pool from XML.
    ///
    /// # Errors
    ///
    /// XML and duplicate failures.
    pub fn define_storage_pool_xml(&self, xml: &str) -> VirtResult<StoragePool> {
        let record = self.inner.define_pool_xml(xml)?;
        Ok(StoragePool::new(self.inner.clone(), record.name))
    }

    /// Defines a pool from a typed config (convenience).
    ///
    /// # Errors
    ///
    /// As [`Connect::define_storage_pool_xml`].
    pub fn define_storage_pool(&self, config: &PoolConfig) -> VirtResult<StoragePool> {
        self.define_storage_pool_xml(&config.to_xml_string())
    }

    // ---- networks ----------------------------------------------------------

    /// Names of all virtual networks.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn list_networks(&self) -> VirtResult<Vec<String>> {
        self.inner.list_networks()
    }

    /// Looks up a network by name.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoNetwork`].
    pub fn network_lookup_by_name(&self, name: &str) -> VirtResult<Network> {
        let record = self.inner.network_info(name)?;
        Ok(Network::new(self.inner.clone(), record.name))
    }

    /// Defines a network from XML.
    ///
    /// # Errors
    ///
    /// XML and duplicate failures.
    pub fn define_network_xml(&self, xml: &str) -> VirtResult<Network> {
        let record = self.inner.define_network_xml(xml)?;
        Ok(Network::new(self.inner.clone(), record.name))
    }

    /// Defines a network from a typed config (convenience).
    ///
    /// # Errors
    ///
    /// As [`Connect::define_network_xml`].
    pub fn define_network(&self, config: &NetworkConfig) -> VirtResult<Network> {
        self.define_network_xml(&config.to_xml_string())
    }

    // ---- events ----------------------------------------------------------------

    /// Registers a lifecycle-event callback.
    ///
    /// # Errors
    ///
    /// Driver failures.
    pub fn register_event_callback(
        &self,
        callback: impl Fn(&DomainEvent) + Send + Sync + 'static,
    ) -> VirtResult<CallbackId> {
        let callback: EventCallback = Arc::new(callback);
        self.inner.register_event_callback(callback)
    }

    /// Removes a callback by id.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`] for unknown ids.
    pub fn unregister_event_callback(&self, id: CallbackId) -> VirtResult<()> {
        self.inner.unregister_event_callback(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DomainState;

    #[test]
    fn open_test_default() {
        let conn = Connect::builder("test:///default").open().unwrap();
        assert!(conn.is_alive());
        assert_eq!(conn.uri(), "test:///default");
        assert_eq!(conn.hostname().unwrap(), "test-host");
        assert_eq!(conn.list_domain_names().unwrap(), vec!["test"]);
    }

    #[test]
    fn builder_opens_with_options_against_local_drivers() {
        // Local drivers ignore transport options, but the builder path
        // must still resolve and open them.
        let conn = Connect::builder("test:///default")
            .call_deadline(Duration::from_secs(10))
            .keepalive(KeepaliveConfig::default())
            .retry(RetryPolicy::default())
            .reconnect(false)
            .breaker(BreakerConfig::default())
            .open()
            .unwrap();
        assert_eq!(conn.hostname().unwrap(), "test-host");
    }

    #[test]
    fn builder_accepts_an_explicit_registry() {
        let mut registry = DriverRegistry::new();
        registry.register(Arc::new(crate::drivers::test::TestDriver::new()));
        let conn = Connect::builder("test:///default")
            .registry(&registry)
            .open()
            .unwrap();
        assert!(conn.is_alive());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_entry_points_still_work() {
        // The old names are one-line wrappers over the builder; they
        // must keep working for external callers until removed.
        let conn = Connect::open("test:///default").unwrap();
        assert!(conn.is_alive());
        let mut registry = DriverRegistry::new();
        registry.register(Arc::new(crate::drivers::test::TestDriver::new()));
        let conn = Connect::open_with_registry("test:///default", &registry).unwrap();
        assert!(conn.is_alive());
    }

    #[test]
    fn builder_rejects_bad_uris_at_open_time() {
        assert!(Connect::builder("not a uri").open().is_err());
    }

    #[test]
    fn open_rejects_bad_uris() {
        assert!(Connect::builder("not a uri").open().is_err());
        assert!(Connect::builder("warp+warp://x/").open().is_err());
    }

    #[test]
    fn unknown_scheme_falls_through_to_remote_and_fails_to_connect() {
        // No daemon is listening on the default socket in the test env.
        let err = Connect::builder("qemu:///system").open().unwrap_err();
        assert_eq!(err.code(), crate::ErrorCode::NoConnect);
    }

    #[test]
    fn define_and_lifecycle_through_public_api() {
        let conn = Connect::builder("test:///default").open().unwrap();
        let config = DomainConfig::new("api-vm", 512, 1);
        let domain = conn.define_domain(&config).unwrap();
        assert_eq!(domain.name(), "api-vm");
        domain.start().unwrap();
        assert_eq!(domain.state().unwrap(), DomainState::Running);
        domain.destroy().unwrap();
        domain.undefine().unwrap();
        assert_eq!(conn.list_domain_names().unwrap(), vec!["test"]);
    }

    #[test]
    fn lookups_by_every_key() {
        let conn = Connect::builder("test:///default").open().unwrap();
        let by_name = conn.domain_lookup_by_name("test").unwrap();
        let id = by_name.id().unwrap();
        let by_id = conn.domain_lookup_by_id(id).unwrap();
        assert_eq!(by_id.name(), "test");
        let by_uuid = conn.domain_lookup_by_uuid(by_name.uuid()).unwrap();
        assert_eq!(by_uuid.name(), "test");
    }

    #[test]
    fn node_info_and_capabilities() {
        let conn = Connect::builder("test:///default").open().unwrap();
        let info = conn.node_info().unwrap();
        assert_eq!(info.hypervisor, "qemu");
        assert_eq!(info.active_domains, 1);
        assert!(conn.capabilities().unwrap().has_feature("migration"));
    }

    #[test]
    fn close_invalidates_connection() {
        let conn = Connect::builder("test:///default").open().unwrap();
        conn.close();
        assert!(!conn.is_alive());
        assert!(conn.list_domain_names().is_err());
    }
}

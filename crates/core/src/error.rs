//! The public error model.
//!
//! Mirrors libvirt's `virError`: every failure carries a stable numeric
//! [`ErrorCode`] (preserved across the RPC boundary, so a remote error is
//! indistinguishable from a local one) plus a human-readable message.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use hypersim::{SimError, SimErrorKind};
use virt_rpc::client::CallError;
use virt_rpc::message::RpcError;
use virt_xml::ParseXmlError;

/// Stable error codes, after libvirt's `VIR_ERR_*` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Internal inconsistency.
    Internal = 1,
    /// Invalid argument to an API call.
    InvalidArg = 2,
    /// The connection could not be established.
    NoConnect = 3,
    /// Invalid connection object / connection closed.
    ConnectInvalid = 4,
    /// Operation is not supported by this driver.
    NoSupport = 5,
    /// RPC failure talking to the daemon.
    RpcFailure = 6,
    /// Authentication failed.
    AuthFailed = 7,
    /// Operation valid but failed on the hypervisor.
    OperationFailed = 8,
    /// Operation invalid in the object's current state.
    OperationInvalid = 9,
    /// XML description malformed or mismatched.
    XmlError = 10,
    /// No domain with matching name/id/uuid.
    NoDomain = 11,
    /// Domain with this name already exists.
    DomainExists = 12,
    /// No storage pool with matching name.
    NoStoragePool = 13,
    /// No storage volume with matching name.
    NoStorageVol = 14,
    /// Storage pool/volume already exists.
    StorageExists = 15,
    /// No network with matching name.
    NoNetwork = 16,
    /// Network already exists.
    NetworkExists = 17,
    /// Host resources exhausted.
    InsufficientResources = 18,
    /// The operation timed out.
    OperationTimeout = 19,
    /// Migration-specific failure.
    MigrateFailed = 20,
    /// The URI is malformed or uses an unknown scheme.
    InvalidUri = 21,
    /// Access denied by daemon policy (client limits etc.).
    AccessDenied = 22,
    /// The operation was aborted before completing (job cancellation).
    OperationAborted = 23,
}

impl ErrorCode {
    /// Wire representation.
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// Decodes a wire code, falling back to [`ErrorCode::Internal`] for
    /// unknown values (forward compatibility).
    pub fn from_u32(code: u32) -> ErrorCode {
        use ErrorCode::*;
        match code {
            1 => Internal,
            2 => InvalidArg,
            3 => NoConnect,
            4 => ConnectInvalid,
            5 => NoSupport,
            6 => RpcFailure,
            7 => AuthFailed,
            8 => OperationFailed,
            9 => OperationInvalid,
            10 => XmlError,
            11 => NoDomain,
            12 => DomainExists,
            13 => NoStoragePool,
            14 => NoStorageVol,
            15 => StorageExists,
            16 => NoNetwork,
            17 => NetworkExists,
            18 => InsufficientResources,
            19 => OperationTimeout,
            20 => MigrateFailed,
            21 => InvalidUri,
            22 => AccessDenied,
            23 => OperationAborted,
            _ => Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Internal => "internal error",
            ErrorCode::InvalidArg => "invalid argument",
            ErrorCode::NoConnect => "failed to connect",
            ErrorCode::ConnectInvalid => "connection invalid",
            ErrorCode::NoSupport => "operation not supported",
            ErrorCode::RpcFailure => "rpc failure",
            ErrorCode::AuthFailed => "authentication failed",
            ErrorCode::OperationFailed => "operation failed",
            ErrorCode::OperationInvalid => "operation invalid in current state",
            ErrorCode::XmlError => "xml error",
            ErrorCode::NoDomain => "domain not found",
            ErrorCode::DomainExists => "domain already exists",
            ErrorCode::NoStoragePool => "storage pool not found",
            ErrorCode::NoStorageVol => "storage volume not found",
            ErrorCode::StorageExists => "storage object already exists",
            ErrorCode::NoNetwork => "network not found",
            ErrorCode::NetworkExists => "network already exists",
            ErrorCode::InsufficientResources => "insufficient resources",
            ErrorCode::OperationTimeout => "operation timed out",
            ErrorCode::MigrateFailed => "migration failed",
            ErrorCode::InvalidUri => "invalid connection uri",
            ErrorCode::AccessDenied => "access denied",
            ErrorCode::OperationAborted => "operation aborted",
        };
        f.write_str(s)
    }
}

/// The error type returned by every fallible public API in this crate.
///
/// Equality considers only the code and message; the optional underlying
/// cause (exposed through [`Error::source`]) is diagnostic detail.
#[derive(Debug, Clone)]
pub struct VirtError {
    code: ErrorCode,
    message: String,
    source: Option<Arc<dyn Error + Send + Sync + 'static>>,
}

impl PartialEq for VirtError {
    fn eq(&self, other: &Self) -> bool {
        self.code == other.code && self.message == other.message
    }
}

impl Eq for VirtError {}

impl VirtError {
    /// Creates an error with a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        VirtError {
            code,
            message: message.into(),
            source: None,
        }
    }

    /// Creates an error that keeps its underlying cause on the standard
    /// [`Error::source`] chain.
    pub fn with_source(
        code: ErrorCode,
        message: impl Into<String>,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        VirtError {
            code,
            message: message.into(),
            source: Some(Arc::new(source)),
        }
    }

    /// The stable error code.
    pub fn code(&self) -> ErrorCode {
        self.code
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Converts to the wire error record.
    pub fn to_rpc(&self) -> RpcError {
        RpcError::new(self.code.as_u32(), self.message.clone())
    }

    /// Reconstructs from the wire error record.
    pub fn from_rpc(err: &RpcError) -> VirtError {
        VirtError::new(ErrorCode::from_u32(err.code), err.message.clone())
    }
}

impl fmt::Display for VirtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.message.is_empty() {
            write!(f, "{}", self.code)
        } else {
            write!(f, "{}: {}", self.code, self.message)
        }
    }
}

impl Error for VirtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

impl From<SimError> for VirtError {
    /// Maps hypervisor failures onto public codes.
    fn from(err: SimError) -> Self {
        let code = match err.kind() {
            SimErrorKind::NoSuchDomain => ErrorCode::NoDomain,
            SimErrorKind::DuplicateDomain => ErrorCode::DomainExists,
            SimErrorKind::InvalidState => ErrorCode::OperationInvalid,
            SimErrorKind::InsufficientResources => ErrorCode::InsufficientResources,
            SimErrorKind::Unsupported => ErrorCode::NoSupport,
            SimErrorKind::NoSuchPool => ErrorCode::NoStoragePool,
            SimErrorKind::DuplicatePool => ErrorCode::StorageExists,
            SimErrorKind::NoSuchVolume => ErrorCode::NoStorageVol,
            SimErrorKind::DuplicateVolume => ErrorCode::StorageExists,
            SimErrorKind::PoolFull => ErrorCode::InsufficientResources,
            SimErrorKind::NoSuchNetwork => ErrorCode::NoNetwork,
            SimErrorKind::DuplicateNetwork => ErrorCode::NetworkExists,
            SimErrorKind::NoFreeAddress => ErrorCode::InsufficientResources,
            SimErrorKind::InjectedFault => ErrorCode::OperationFailed,
            SimErrorKind::Timeout => ErrorCode::OperationTimeout,
            SimErrorKind::InvalidArgument => ErrorCode::InvalidArg,
            SimErrorKind::HostDown => ErrorCode::NoConnect,
            _ => ErrorCode::Internal,
        };
        VirtError::new(code, err.to_string())
    }
}

impl From<ParseXmlError> for VirtError {
    fn from(err: ParseXmlError) -> Self {
        VirtError::new(ErrorCode::XmlError, err.to_string())
    }
}

impl From<CallError> for VirtError {
    /// Remote errors keep their original code; transport failures become
    /// [`ErrorCode::RpcFailure`] (or timeout).
    fn from(err: CallError) -> Self {
        match err {
            CallError::Remote(rpc) => VirtError::from_rpc(&rpc),
            CallError::TimedOut => {
                VirtError::new(ErrorCode::OperationTimeout, "rpc call timed out")
            }
            other => VirtError::with_source(ErrorCode::RpcFailure, other.to_string(), other),
        }
    }
}

/// Crate-wide result alias.
pub type VirtResult<T> = Result<T, VirtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_message() {
        let err = VirtError::new(ErrorCode::NoDomain, "'web'");
        assert_eq!(err.to_string(), "domain not found: 'web'");
        let bare = VirtError::new(ErrorCode::Internal, "");
        assert_eq!(bare.to_string(), "internal error");
    }

    #[test]
    fn all_codes_round_trip_the_wire() {
        use ErrorCode::*;
        for code in [
            Internal,
            InvalidArg,
            NoConnect,
            ConnectInvalid,
            NoSupport,
            RpcFailure,
            AuthFailed,
            OperationFailed,
            OperationInvalid,
            XmlError,
            NoDomain,
            DomainExists,
            NoStoragePool,
            NoStorageVol,
            StorageExists,
            NoNetwork,
            NetworkExists,
            InsufficientResources,
            OperationTimeout,
            MigrateFailed,
            InvalidUri,
            AccessDenied,
            OperationAborted,
        ] {
            assert_eq!(ErrorCode::from_u32(code.as_u32()), code);
        }
    }

    #[test]
    fn unknown_wire_code_becomes_internal() {
        assert_eq!(ErrorCode::from_u32(9999), ErrorCode::Internal);
    }

    #[test]
    fn rpc_round_trip_preserves_code_and_message() {
        let original = VirtError::new(ErrorCode::OperationInvalid, "cannot suspend");
        let back = VirtError::from_rpc(&original.to_rpc());
        assert_eq!(back, original);
    }

    #[test]
    fn sim_error_mapping() {
        let cases = [
            (SimErrorKind::NoSuchDomain, ErrorCode::NoDomain),
            (SimErrorKind::DuplicateDomain, ErrorCode::DomainExists),
            (SimErrorKind::InvalidState, ErrorCode::OperationInvalid),
            (
                SimErrorKind::InsufficientResources,
                ErrorCode::InsufficientResources,
            ),
            (SimErrorKind::Unsupported, ErrorCode::NoSupport),
            (SimErrorKind::NoSuchPool, ErrorCode::NoStoragePool),
            (SimErrorKind::HostDown, ErrorCode::NoConnect),
            (SimErrorKind::InjectedFault, ErrorCode::OperationFailed),
        ];
        for (sim, expected) in cases {
            let err: VirtError = SimError::new(sim, "x").into();
            assert_eq!(err.code(), expected, "{sim:?}");
        }
    }

    #[test]
    fn call_error_mapping_preserves_remote_codes() {
        let remote = CallError::Remote(RpcError::new(ErrorCode::NoDomain.as_u32(), "gone"));
        let err: VirtError = remote.into();
        assert_eq!(err.code(), ErrorCode::NoDomain);
        assert_eq!(err.message(), "gone");

        let timeout: VirtError = CallError::TimedOut.into();
        assert_eq!(timeout.code(), ErrorCode::OperationTimeout);

        let io: VirtError = CallError::Disconnected.into();
        assert_eq!(io.code(), ErrorCode::RpcFailure);
    }

    #[test]
    fn xml_error_mapping() {
        let parse_err = virt_xml::Element::parse("<a").unwrap_err();
        let err: VirtError = parse_err.into();
        assert_eq!(err.code(), ErrorCode::XmlError);
    }

    #[test]
    fn source_chain_reaches_the_underlying_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer reset");
        let call = CallError::Io(io);
        let err: VirtError = call.into();
        assert_eq!(err.code(), ErrorCode::RpcFailure);
        let source = err.source().expect("io-backed rpc failure has a source");
        let call = source
            .downcast_ref::<CallError>()
            .expect("source is the CallError");
        let io = call.source().expect("CallError::Io chains to io::Error");
        assert!(io.to_string().contains("peer reset"));
    }

    #[test]
    fn equality_ignores_the_source() {
        let plain = VirtError::new(ErrorCode::RpcFailure, "boom");
        let sourced = VirtError::with_source(
            ErrorCode::RpcFailure,
            "boom",
            std::io::Error::other("cause"),
        );
        assert_eq!(plain, sourced);
        assert!(plain.source().is_none());
        assert!(sourced.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<VirtError>();
    }
}

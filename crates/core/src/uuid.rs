//! UUIDs in RFC 4122 canonical form.
//!
//! Every managed object (domain, pool, network) carries a 128-bit UUID
//! that is stable across renames and daemon restarts.

use std::fmt;
use std::str::FromStr;

use rand::Rng;

use crate::error::{ErrorCode, VirtError};

/// A 128-bit universally unique identifier.
///
/// # Examples
///
/// ```
/// use virt_core::Uuid;
///
/// let uuid: Uuid = "6ba7b810-9dad-41d1-80b4-00c04fd430c8".parse().unwrap();
/// assert_eq!(uuid.to_string(), "6ba7b810-9dad-41d1-80b4-00c04fd430c8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uuid([u8; 16]);

impl Uuid {
    /// The all-zero UUID (never assigned to real objects).
    pub const NIL: Uuid = Uuid([0; 16]);

    /// Generates a random version-4 UUID.
    pub fn generate() -> Uuid {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill(&mut bytes);
        bytes[6] = (bytes[6] & 0x0f) | 0x40;
        bytes[8] = (bytes[8] & 0x3f) | 0x80;
        Uuid(bytes)
    }

    /// Wraps raw bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Uuid {
        Uuid(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Consumes into raw bytes.
    pub fn into_bytes(self) -> [u8; 16] {
        self.0
    }

    /// `true` for the all-zero UUID.
    pub fn is_nil(&self) -> bool {
        self.0 == [0; 16]
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]
        )
    }
}

impl FromStr for Uuid {
    type Err = VirtError;

    /// Parses the canonical hyphenated form (case-insensitive).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] on wrong length, misplaced hyphens, or
    /// non-hex characters.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || VirtError::new(ErrorCode::InvalidArg, format!("malformed uuid '{s}'"));
        if s.len() != 36 {
            return Err(bad());
        }
        let chars: Vec<char> = s.chars().collect();
        for (i, ch) in chars.iter().enumerate() {
            let is_hyphen_pos = matches!(i, 8 | 13 | 18 | 23);
            if is_hyphen_pos != (*ch == '-') {
                return Err(bad());
            }
        }
        let hex: String = chars.iter().filter(|c| **c != '-').collect();
        let mut bytes = [0u8; 16];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let pair = std::str::from_utf8(chunk).map_err(|_| bad())?;
            bytes[i] = u8::from_str_radix(pair, 16).map_err(|_| bad())?;
        }
        Ok(Uuid(bytes))
    }
}

impl From<[u8; 16]> for Uuid {
    fn from(bytes: [u8; 16]) -> Self {
        Uuid(bytes)
    }
}

impl From<Uuid> for [u8; 16] {
    fn from(uuid: Uuid) -> Self {
        uuid.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let uuid = Uuid::from_bytes([
            0x6b, 0xa7, 0xb8, 0x10, 0x9d, 0xad, 0x41, 0xd1, 0x80, 0xb4, 0x00, 0xc0, 0x4f, 0xd4,
            0x30, 0xc8,
        ]);
        let text = uuid.to_string();
        assert_eq!(text, "6ba7b810-9dad-41d1-80b4-00c04fd430c8");
        assert_eq!(text.parse::<Uuid>().unwrap(), uuid);
    }

    #[test]
    fn parse_is_case_insensitive() {
        let lower: Uuid = "6ba7b810-9dad-41d1-80b4-00c04fd430c8".parse().unwrap();
        let upper: Uuid = "6BA7B810-9DAD-41D1-80B4-00C04FD430C8".parse().unwrap();
        assert_eq!(lower, upper);
    }

    #[test]
    fn malformed_uuids_rejected() {
        for bad in [
            "",
            "6ba7b810",
            "6ba7b810-9dad-41d1-80b4-00c04fd430c", // too short
            "6ba7b810-9dad-41d1-80b4-00c04fd430c8a", // too long
            "6ba7b8109dad-41d1-80b4-00c04fd430c8aa", // hyphen misplaced
            "6ba7b810-9dad-41d1-80b4-00c04fd430zz", // non-hex
            "6ba7b810_9dad_41d1_80b4_00c04fd430c8", // wrong separators
        ] {
            let err = bad.parse::<Uuid>().unwrap_err();
            assert_eq!(err.code(), ErrorCode::InvalidArg, "{bad:?}");
        }
    }

    #[test]
    fn generate_produces_v4_and_distinct() {
        let a = Uuid::generate();
        let b = Uuid::generate();
        assert_ne!(a, b);
        assert_eq!(a.as_bytes()[6] >> 4, 4);
        assert_eq!(a.as_bytes()[8] >> 6, 0b10);
        assert!(!a.is_nil());
    }

    #[test]
    fn nil_uuid() {
        assert!(Uuid::NIL.is_nil());
        assert_eq!(
            Uuid::NIL.to_string(),
            "00000000-0000-0000-0000-000000000000"
        );
        assert_eq!(Uuid::default(), Uuid::NIL);
    }

    #[test]
    fn byte_conversions() {
        let bytes = [7u8; 16];
        let uuid: Uuid = bytes.into();
        let back: [u8; 16] = uuid.into();
        assert_eq!(back, bytes);
        assert_eq!(uuid.into_bytes(), bytes);
    }
}

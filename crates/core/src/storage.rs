//! Storage pool and volume handles.

use std::sync::Arc;

use crate::driver::{HypervisorConnection, PoolRecord, VolumeRecord};
use crate::error::VirtResult;
use crate::xmlfmt::VolumeConfig;

/// A handle to a storage pool.
///
/// Obtained from [`crate::Connect::storage_pool_lookup_by_name`] or
/// [`crate::Connect::define_storage_pool_xml`].
#[derive(Clone)]
pub struct StoragePool {
    conn: Arc<dyn HypervisorConnection>,
    name: String,
}

impl std::fmt::Debug for StoragePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoragePool")
            .field("name", &self.name)
            .finish()
    }
}

impl StoragePool {
    pub(crate) fn new(conn: Arc<dyn HypervisorConnection>, name: String) -> Self {
        StoragePool { conn, name }
    }

    /// The pool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A fresh snapshot of the pool's state.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStoragePool`] once gone.
    pub fn info(&self) -> VirtResult<PoolRecord> {
        self.conn.pool_info(&self.name)
    }

    /// Activates the pool.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStoragePool`].
    pub fn start(&self) -> VirtResult<()> {
        self.conn.start_pool(&self.name)
    }

    /// Deactivates the pool.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStoragePool`].
    pub fn stop(&self) -> VirtResult<()> {
        self.conn.stop_pool(&self.name)
    }

    /// Removes the inactive pool's definition.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::OperationInvalid`] while active.
    pub fn undefine(&self) -> VirtResult<()> {
        self.conn.undefine_pool(&self.name)
    }

    /// Volume names.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStoragePool`].
    pub fn list_volumes(&self) -> VirtResult<Vec<String>> {
        self.conn.list_volumes(&self.name)
    }

    /// Looks a volume up by name.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStorageVol`].
    pub fn volume_lookup_by_name(&self, name: &str) -> VirtResult<Volume> {
        let record = self.conn.volume_info(&self.name, name)?;
        Ok(Volume {
            conn: self.conn.clone(),
            pool: self.name.clone(),
            name: record.name,
        })
    }

    /// Creates a volume from XML.
    ///
    /// # Errors
    ///
    /// Capacity and duplicate failures.
    pub fn create_volume_xml(&self, xml: &str) -> VirtResult<Volume> {
        let record = self.conn.create_volume_xml(&self.name, xml)?;
        Ok(Volume {
            conn: self.conn.clone(),
            pool: self.name.clone(),
            name: record.name,
        })
    }

    /// Creates a volume from a typed config (convenience).
    ///
    /// # Errors
    ///
    /// As [`StoragePool::create_volume_xml`].
    pub fn create_volume(&self, config: &VolumeConfig) -> VirtResult<Volume> {
        self.create_volume_xml(&config.to_xml_string())
    }

    /// Clones an existing volume.
    ///
    /// # Errors
    ///
    /// Duplicate and capacity failures.
    pub fn clone_volume(&self, source: &str, new_name: &str) -> VirtResult<Volume> {
        let record = self.conn.clone_volume(&self.name, source, new_name)?;
        Ok(Volume {
            conn: self.conn.clone(),
            pool: self.name.clone(),
            name: record.name,
        })
    }
}

/// A handle to a storage volume.
#[derive(Clone)]
pub struct Volume {
    conn: Arc<dyn HypervisorConnection>,
    pool: String,
    name: String,
}

impl std::fmt::Debug for Volume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Volume")
            .field("pool", &self.pool)
            .field("name", &self.name)
            .finish()
    }
}

impl Volume {
    /// The volume's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning pool's name.
    pub fn pool_name(&self) -> &str {
        &self.pool
    }

    /// A fresh snapshot of the volume's state.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStorageVol`] once gone.
    pub fn info(&self) -> VirtResult<VolumeRecord> {
        self.conn.volume_info(&self.pool, &self.name)
    }

    /// The volume's backing path.
    ///
    /// # Errors
    ///
    /// As [`Volume::info`].
    pub fn path(&self) -> VirtResult<String> {
        Ok(self.info()?.path)
    }

    /// Deletes the volume.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoStorageVol`].
    pub fn delete(&self) -> VirtResult<()> {
        self.conn.delete_volume(&self.pool, &self.name)
    }

    /// Grows the volume.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::InvalidArg`] on shrink; capacity failures.
    pub fn resize(&self, capacity_mib: u64) -> VirtResult<()> {
        self.conn
            .resize_volume(&self.pool, &self.name, capacity_mib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::Connect;
    use crate::xmlfmt::PoolConfig;
    use hypersim::PoolBackend;

    fn pool() -> (Connect, StoragePool) {
        let conn = Connect::builder("test:///default").open().unwrap();
        let pool = conn
            .define_storage_pool(&PoolConfig::new("images", PoolBackend::Dir, 1000))
            .unwrap();
        pool.start().unwrap();
        (conn, pool)
    }

    #[test]
    fn pool_info_and_lifecycle() {
        let (_conn, pool) = pool();
        let info = pool.info().unwrap();
        assert_eq!(info.name, "images");
        assert_eq!(info.backend, "dir");
        assert!(info.active);
        pool.stop().unwrap();
        assert!(!pool.info().unwrap().active);
        pool.undefine().unwrap();
        assert!(pool.info().is_err());
    }

    #[test]
    fn volume_crud() {
        let (_conn, pool) = pool();
        let vol = pool
            .create_volume(&VolumeConfig::new("root.img", 100))
            .unwrap();
        assert_eq!(vol.name(), "root.img");
        assert_eq!(vol.pool_name(), "images");
        assert!(vol.path().unwrap().ends_with("root.img"));
        assert_eq!(vol.info().unwrap().capacity_mib, 100);

        vol.resize(250).unwrap();
        assert_eq!(vol.info().unwrap().capacity_mib, 250);

        let copy = pool.clone_volume("root.img", "copy.img").unwrap();
        assert_eq!(copy.info().unwrap().capacity_mib, 250);
        assert_eq!(pool.list_volumes().unwrap().len(), 2);

        vol.delete().unwrap();
        assert!(vol.info().is_err());
        assert_eq!(pool.list_volumes().unwrap(), vec!["copy.img"]);
    }

    #[test]
    fn lookup_by_name() {
        let (_conn, pool) = pool();
        pool.create_volume(&VolumeConfig::new("a", 10)).unwrap();
        let found = pool.volume_lookup_by_name("a").unwrap();
        assert_eq!(found.name(), "a");
        assert!(pool.volume_lookup_by_name("missing").is_err());
    }

    #[test]
    fn default_pool_exists_on_test_driver() {
        let conn = Connect::builder("test:///default").open().unwrap();
        let names = conn.list_storage_pools().unwrap();
        assert!(names.contains(&"default".to_string()));
        let default = conn.storage_pool_lookup_by_name("default").unwrap();
        assert!(default.info().unwrap().active);
    }
}

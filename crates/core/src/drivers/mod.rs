//! Driver implementations.
//!
//! | Driver | Kind | URI shapes |
//! |---|---|---|
//! | [`embedded`] | stateful (daemon-side) | `qemu:///system`, `xen:///system`, `lxc:///` — instantiated by `virtd` around a host, or embedded for tests |
//! | [`mod@test`] | stateless, client-side | `test:///default` (private host per connection) |
//! | [`esx`] | stateless, client-side | `esx://host/` (drives the hypervisor's own remote API) |
//! | [`remote`] | stateless, client-side | any scheme with `+transport`, or unclaimed schemes (tunnels to `virtd`) |

pub mod embedded;
pub mod esx;
pub mod remote;
pub mod test;

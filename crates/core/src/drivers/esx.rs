//! The ESX driver: a *stateless, client-side* driver.
//!
//! The DATE 2010 paper's authors contributed libvirt's VMware ESX driver,
//! the canonical example of the stateless driver class: the hypervisor
//! exposes its own remote management API and persists all domain state
//! itself, so no managing daemon is needed — the client library talks to
//! the hypervisor endpoint directly, and every call pays that API's
//! round-trip cost.
//!
//! Here the "remote ESX endpoint" is a [`hypersim::SimHost`] with the
//! [`EsxLike`](hypersim::personality::EsxLike) personality registered in
//! the [`crate::testbed`] registry under its host name; its latency model
//! charges the SOAP-style RTT on every operation.

use std::sync::Arc;

use crate::driver::{HypervisorConnection, HypervisorDriver};
use crate::drivers::embedded::EmbeddedConnection;
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::testbed;
use crate::uri::ConnectUri;

/// The `esx` scheme driver.
#[derive(Debug, Default)]
pub struct EsxDriver;

impl EsxDriver {
    /// Creates the driver.
    pub fn new() -> Self {
        EsxDriver
    }
}

impl HypervisorDriver for EsxDriver {
    fn name(&self) -> &'static str {
        "esx"
    }

    fn probe(&self, uri: &ConnectUri) -> bool {
        // The ESX driver owns the scheme regardless of host (the host IS
        // the hypervisor endpoint), but a +transport means the caller
        // wants to tunnel through a daemon instead.
        uri.driver() == "esx" && uri.transport().is_none()
    }

    fn open(&self, uri: &ConnectUri) -> VirtResult<Arc<dyn HypervisorConnection>> {
        let host_name = uri.host().ok_or_else(|| {
            VirtError::new(
                ErrorCode::InvalidUri,
                "esx:// URIs must name the hypervisor host",
            )
        })?;
        let host = testbed::lookup_host(host_name)?;
        if host.personality().name() != "esx" {
            return Err(VirtError::new(
                ErrorCode::NoConnect,
                format!(
                    "host '{host_name}' speaks {}, not the esx API",
                    host.personality().name()
                ),
            ));
        }
        Ok(EmbeddedConnection::new(host, format!("esx://{host_name}/")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DomainState;
    use crate::xmlfmt::DomainConfig;
    use hypersim::personality::{EsxLike, QemuLike};
    use hypersim::{LatencyModel, SimHost};

    fn register_esx(name: &str) -> SimHost {
        let host = SimHost::builder(name)
            .personality(EsxLike)
            .latency(LatencyModel::zero())
            .build();
        testbed::register_host(name, host.clone());
        host
    }

    #[test]
    fn probe_claims_esx_without_transport() {
        let driver = EsxDriver::new();
        let yes: ConnectUri = "esx://esx1/".parse().unwrap();
        assert!(driver.probe(&yes));
        let tunneled: ConnectUri = "esx+tcp://daemon/system".parse().unwrap();
        assert!(!driver.probe(&tunneled));
        let other: ConnectUri = "qemu:///system".parse().unwrap();
        assert!(!driver.probe(&other));
    }

    #[test]
    fn open_resolves_the_registered_endpoint() {
        register_esx("esx-open-test");
        let uri: ConnectUri = "esx://esx-open-test/".parse().unwrap();
        let conn = EsxDriver::new().open(&uri).unwrap();
        assert_eq!(conn.hostname().unwrap(), "esx-open-test");
        assert_eq!(conn.capabilities().unwrap().hypervisor, "esx");
        testbed::unregister_host("esx-open-test");
    }

    #[test]
    fn open_requires_host_component() {
        let uri: ConnectUri = "esx:///".parse().unwrap();
        let err = EsxDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidUri);
    }

    #[test]
    fn open_rejects_unknown_and_wrong_personality_hosts() {
        let uri: ConnectUri = "esx://no-such-esx/".parse().unwrap();
        assert_eq!(
            EsxDriver::new().open(&uri).unwrap_err().code(),
            ErrorCode::NoConnect
        );

        let qemu_host = SimHost::builder("not-esx")
            .personality(QemuLike)
            .latency(LatencyModel::zero())
            .build();
        testbed::register_host("not-esx", qemu_host);
        let uri: ConnectUri = "esx://not-esx/".parse().unwrap();
        let err = EsxDriver::new().open(&uri).unwrap_err();
        assert!(err.message().contains("speaks qemu"));
        testbed::unregister_host("not-esx");
    }

    #[test]
    fn domains_survive_connection_loss_hypervisor_side() {
        // The defining property of the stateless driver class: state lives
        // in the hypervisor, not in any daemon or connection.
        register_esx("esx-persist-test");
        let uri: ConnectUri = "esx://esx-persist-test/".parse().unwrap();

        let conn1 = EsxDriver::new().open(&uri).unwrap();
        conn1
            .define_domain_xml(&DomainConfig::new("vm", 512, 1).to_xml_string())
            .unwrap();
        conn1.start_domain("vm").unwrap();
        conn1.close();

        let conn2 = EsxDriver::new().open(&uri).unwrap();
        let domain = conn2.lookup_domain_by_name("vm").unwrap();
        assert_eq!(domain.state, DomainState::Running);
        testbed::unregister_host("esx-persist-test");
    }
}

//! The test driver: `test:///default`.
//!
//! Like libvirt's test driver, it gives every connection a private mock
//! hypervisor with one predefined domain, so applications and test suites
//! can exercise the full API with zero setup and zero latency.

use std::sync::Arc;

use hypersim::personality::QemuLike;
use hypersim::{DomainSpec, LatencyModel, SimHost};

use crate::driver::{HypervisorConnection, HypervisorDriver};
use crate::drivers::embedded::EmbeddedConnection;
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::uri::ConnectUri;

/// The `test` scheme driver.
#[derive(Debug, Default)]
pub struct TestDriver;

impl TestDriver {
    /// Creates the driver.
    pub fn new() -> Self {
        TestDriver
    }
}

impl HypervisorDriver for TestDriver {
    fn name(&self) -> &'static str {
        "test"
    }

    fn probe(&self, uri: &ConnectUri) -> bool {
        uri.driver() == "test" && uri.transport().is_none() && uri.is_local()
    }

    fn open(&self, uri: &ConnectUri) -> VirtResult<Arc<dyn HypervisorConnection>> {
        if uri.path() != "/default" {
            return Err(VirtError::new(
                ErrorCode::NoConnect,
                format!(
                    "test driver only supports test:///default, got '{}'",
                    uri.path()
                ),
            ));
        }
        let host = SimHost::builder("test-host")
            .cpus(8)
            .memory_mib(8192)
            .personality(QemuLike)
            .latency(LatencyModel::zero())
            .build();
        // The canonical predefined guest, as in libvirt's test driver.
        host.define_domain(DomainSpec::new("test").memory_mib(512).vcpus(2))
            .map_err(VirtError::from)?;
        host.start_domain("test").map_err(VirtError::from)?;
        Ok(EmbeddedConnection::new(host, "test:///default"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DomainState;

    fn open() -> Arc<dyn HypervisorConnection> {
        let uri: ConnectUri = "test:///default".parse().unwrap();
        TestDriver::new().open(&uri).unwrap()
    }

    #[test]
    fn probe_matches_only_local_plain_test_uris() {
        let driver = TestDriver::new();
        let yes: ConnectUri = "test:///default".parse().unwrap();
        assert!(driver.probe(&yes));
        for no in [
            "test+tcp://h/default",
            "qemu:///system",
            "test://remote/default",
        ] {
            let uri: ConnectUri = no.parse().unwrap();
            assert!(!driver.probe(&uri), "{no}");
        }
    }

    #[test]
    fn default_connection_has_the_canonical_guest() {
        let conn = open();
        let domains = conn.list_domains().unwrap();
        assert_eq!(domains.len(), 1);
        assert_eq!(domains[0].name, "test");
        assert_eq!(domains[0].state, DomainState::Running);
        assert_eq!(conn.uri(), "test:///default");
    }

    #[test]
    fn connections_are_isolated() {
        let a = open();
        let b = open();
        a.define_domain_xml(&crate::xmlfmt::DomainConfig::new("extra", 128, 1).to_xml_string())
            .unwrap();
        assert_eq!(a.list_domains().unwrap().len(), 2);
        assert_eq!(b.list_domains().unwrap().len(), 1);
    }

    #[test]
    fn non_default_paths_rejected() {
        let uri: ConnectUri = "test:///other".parse().unwrap();
        let err = TestDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }
}

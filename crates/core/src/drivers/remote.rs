//! The remote driver: tunnels every API call to a `virtd` daemon.
//!
//! This is how libvirt manages hypervisors that have no remote management
//! of their own: the client library speaks the XDR protocol to the daemon,
//! which re-enters the very same driver API on its side using a stateful
//! platform driver. The remote driver is the registry fallback — any URI
//! scheme no stateless driver claims ends up here, as does any URI with an
//! explicit `+transport` suffix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use virt_rpc::keepalive;
use virt_rpc::message::{MessageType, Packet, REMOTE_PROGRAM};
use virt_rpc::reconnect::{
    ReconnectConfig, ReconnectMetrics, ReconnectingClient, SessionSetup, TransportFactory,
};
use virt_rpc::retry::RetryPolicy;
use virt_rpc::transport::{TcpTransport, TlsSimTransport, Transport, UnixTransport};
use virt_rpc::xdr::XdrEncode;

use crate::capabilities::Capabilities;
use crate::client_metrics;
use crate::driver::{
    DomainRecord, HypervisorConnection, HypervisorDriver, MigrationOptions, MigrationReport,
    NetworkRecord, NodeInfo, OpenOptions, PoolRecord, VolumeRecord,
};
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::event::{CallbackId, EventBus, EventCallback};
use crate::guard::{GuardPolicy, GuardStatus};
use crate::protocol::{self, proc};
use crate::testbed;
use crate::uri::{ConnectUri, UriTransport};
use crate::uuid::Uuid;

/// Default Unix socket path of a system daemon.
pub const DEFAULT_SOCKET_PATH: &str = "/var/run/virt/virtd.sock";
/// Default TCP port (libvirt's registered port).
pub const DEFAULT_TCP_PORT: u16 = 16509;
/// Default TLS port.
pub const DEFAULT_TLS_PORT: u16 = 16514;

/// The remote driver (registry fallback).
#[derive(Debug, Default)]
pub struct RemoteDriver;

impl RemoteDriver {
    /// Creates the driver.
    pub fn new() -> Self {
        RemoteDriver
    }
}

impl HypervisorDriver for RemoteDriver {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn probe(&self, _uri: &ConnectUri) -> bool {
        // Installed as the fallback; explicit probing always defers to
        // stateless drivers first.
        false
    }

    fn open(&self, uri: &ConnectUri) -> VirtResult<Arc<dyn HypervisorConnection>> {
        self.open_with_options(uri, &OpenOptions::default())
    }

    fn open_with_options(
        &self,
        uri: &ConnectUri,
        options: &OpenOptions,
    ) -> VirtResult<Arc<dyn HypervisorConnection>> {
        // Builder options win over the `?keepalive=` URI parameter, which
        // stays supported for bare-URI callers.
        let keepalive_config = match options.keepalive {
            Some(config) => Some(config),
            None => parse_keepalive_param(uri)?,
        };

        // Dial the first transport directly so URI problems keep their
        // precise error codes; the factory only re-dials the same URI.
        let transport = connect_transport(uri)?;
        let dial_uri = uri.clone();
        let factory: TransportFactory = Box::new(move || {
            connect_transport(&dial_uri)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::ConnectionRefused, e))
        });

        // The session handshake, replayed verbatim after every re-dial:
        // authenticate (the `password` parameter stands in for a SASL
        // exchange), open the inner URI on the daemon, and re-register
        // the event subscription if one is active.
        let auth_args = uri.username().map(|username| protocol::AuthArgs {
            username: username.to_string(),
            password: uri.param("password").unwrap_or_default().to_string(),
        });
        let open_args = protocol::OpenArgs {
            uri: uri.inner_uri(),
            readonly: uri.param("readonly").is_some(),
        };
        let events_subscribed = Arc::new(AtomicBool::new(false));
        let setup_subscribed = Arc::clone(&events_subscribed);
        let first_setup = AtomicBool::new(true);
        let callbacks_replayed = client_metrics().counter(
            "rpc.reconnect.callbacks_replayed",
            "Event subscriptions re-registered after a reconnect",
        );
        let setup: SessionSetup = Box::new(move |client| {
            if let Some(auth) = &auth_args {
                client.call::<()>(REMOTE_PROGRAM, proc::AUTH, auth)?;
            }
            client.call::<()>(REMOTE_PROGRAM, proc::OPEN, &open_args)?;
            let first = first_setup.swap(false, Ordering::AcqRel);
            if setup_subscribed.load(Ordering::Acquire) {
                client.call::<()>(REMOTE_PROGRAM, proc::EVENT_REGISTER, &())?;
                if !first {
                    callbacks_replayed.inc();
                }
            }
            Ok(())
        });

        let config = ReconnectConfig {
            auto_reconnect: options.reconnect.unwrap_or(true),
            retry: options.retry.unwrap_or_else(RetryPolicy::none),
            breaker: options.breaker.unwrap_or_default(),
            keepalive: keepalive_config,
            call_deadline: options.call_deadline,
        };
        let metrics = ReconnectMetrics::from_registry(client_metrics());
        let client = ReconnectingClient::with_transport(transport, factory, setup, config, metrics)
            .map_err(VirtError::from)?;

        // Route lifecycle events from the daemon; keepalive and farewell
        // traffic never reaches this handler.
        let events = EventBus::new();
        let emit_events = events.clone();
        client.set_event_handler(move |packet: Packet| {
            if packet.header.mtype == MessageType::Event
                && (packet.header.procedure == proc::EVENT_LIFECYCLE
                    || packet.header.procedure == proc::EVENT_DOMAIN_JOB)
            {
                if let Ok(wire) = packet.decode_payload::<protocol::WireEvent>() {
                    if let Some(event) = wire.into_event() {
                        emit_events.emit(&event);
                    }
                }
            }
        });

        Ok(Arc::new(RemoteConnection {
            client,
            uri: uri.to_string(),
            events,
            events_subscribed,
            open: AtomicBool::new(true),
        }))
    }
}

/// Parses the `keepalive` URI parameter: absent or `off` disables
/// probing; `interval_ms:count` enables it (e.g. `keepalive=5000:5`).
///
/// # Errors
///
/// [`ErrorCode::InvalidUri`] on a malformed value.
fn parse_keepalive_param(uri: &ConnectUri) -> VirtResult<Option<keepalive::KeepaliveConfig>> {
    let Some(value) = uri.param("keepalive") else {
        return Ok(None);
    };
    if value == "off" {
        return Ok(None);
    }
    let bad = || {
        VirtError::new(
            ErrorCode::InvalidUri,
            format!("keepalive must be 'off' or 'interval_ms:count', got '{value}'"),
        )
    };
    let (interval_ms, count) = value.split_once(':').ok_or_else(bad)?;
    let interval_ms: u64 = interval_ms.parse().map_err(|_| bad())?;
    let count: u32 = count.parse().map_err(|_| bad())?;
    if interval_ms == 0 {
        return Err(bad());
    }
    Ok(Some(keepalive::KeepaliveConfig {
        interval: std::time::Duration::from_millis(interval_ms),
        count,
    }))
}

/// Establishes the transport a URI asks for.
fn connect_transport(uri: &ConnectUri) -> VirtResult<Arc<dyn Transport>> {
    let failed = |e: std::io::Error| VirtError::new(ErrorCode::NoConnect, e.to_string());
    match uri.transport() {
        Some(UriTransport::Memory) => {
            let host = uri.host().ok_or_else(|| {
                VirtError::new(
                    ErrorCode::InvalidUri,
                    "+memory transport requires a host name",
                )
            })?;
            let connector = testbed::lookup_daemon(host)?;
            Ok(Arc::new(connector.connect().map_err(failed)?))
        }
        Some(UriTransport::Unix) | None if uri.is_local() => {
            let path = uri.param("socket").unwrap_or(DEFAULT_SOCKET_PATH);
            Ok(Arc::new(UnixTransport::connect(path).map_err(failed)?))
        }
        Some(UriTransport::Unix) => Err(VirtError::new(
            ErrorCode::InvalidUri,
            "+unix transport is local-only",
        )),
        Some(UriTransport::Tcp) => {
            let host = uri
                .host()
                .ok_or_else(|| VirtError::new(ErrorCode::InvalidUri, "+tcp requires a host"))?;
            let port = uri.port().unwrap_or(DEFAULT_TCP_PORT);
            Ok(Arc::new(
                TcpTransport::connect(&format!("{host}:{port}")).map_err(failed)?,
            ))
        }
        Some(UriTransport::Tls) | None => {
            // libvirt's rule: a remote URI without explicit transport uses TLS.
            let host = uri.host().ok_or_else(|| {
                VirtError::new(ErrorCode::InvalidUri, "remote uri requires a host")
            })?;
            let port = uri.port().unwrap_or(DEFAULT_TLS_PORT);
            let tcp = TcpTransport::connect(&format!("{host}:{port}")).map_err(failed)?;
            let nonce = rand::random::<u64>();
            Ok(Arc::new(
                TlsSimTransport::client(tcp, nonce).map_err(failed)?,
            ))
        }
    }
}

/// A connection whose every method is one RPC to the daemon, routed
/// through a [`ReconnectingClient`] that survives daemon restarts.
pub struct RemoteConnection {
    client: ReconnectingClient,
    uri: String,
    events: EventBus,
    events_subscribed: Arc<AtomicBool>,
    open: AtomicBool,
}

impl std::fmt::Debug for RemoteConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteConnection")
            .field("uri", &self.uri)
            .finish()
    }
}

impl RemoteConnection {
    fn call<R: virt_rpc::xdr::XdrDecode>(
        &self,
        procedure: u32,
        args: &impl XdrEncode,
    ) -> VirtResult<R> {
        if !self.open.load(Ordering::Acquire) {
            return Err(VirtError::new(
                ErrorCode::ConnectInvalid,
                "connection is closed",
            ));
        }
        self.client
            .call::<R>(
                REMOTE_PROGRAM,
                procedure,
                protocol::is_idempotent(procedure),
                args,
                None,
            )
            .map_err(VirtError::from)
    }

    fn domain_call(&self, procedure: u32, name: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            procedure,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn unit_name_call(&self, procedure: u32, name: &str) -> VirtResult<()> {
        self.call::<()>(
            procedure,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )
    }
}

impl HypervisorConnection for RemoteConnection {
    fn uri(&self) -> String {
        self.uri.clone()
    }

    fn hostname(&self) -> VirtResult<String> {
        self.call(proc::GET_HOSTNAME, &())
    }

    fn node_info(&self) -> VirtResult<NodeInfo> {
        let wire: protocol::WireNodeInfo = self.call(proc::NODE_INFO, &())?;
        Ok(wire.into())
    }

    fn capabilities(&self) -> VirtResult<Capabilities> {
        let xml: String = self.call(proc::GET_CAPABILITIES, &())?;
        Capabilities::from_xml_str(&xml)
    }

    fn is_alive(&self) -> bool {
        self.open.load(Ordering::Acquire) && self.client.is_alive()
    }

    fn close(&self) {
        if self.open.swap(false, Ordering::AcqRel) {
            // Best-effort goodbye on the current generation only — a dead
            // connection must not be re-dialed just to say goodbye.
            self.client.with_current(|client| {
                let _ = client.call::<()>(REMOTE_PROGRAM, proc::CLOSE, &());
                let _ = client.send_oneway(&keepalive::bye_packet());
            });
            self.client.close();
        }
    }

    fn list_domains(&self) -> VirtResult<Vec<DomainRecord>> {
        let wire: protocol::WireDomainList = self.call(proc::LIST_DOMAINS, &())?;
        Ok(wire.0.into_iter().map(DomainRecord::from).collect())
    }

    fn lookup_domain_by_name(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_LOOKUP_NAME, name)
    }

    fn lookup_domain_by_id(&self, id: u32) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_LOOKUP_ID,
            &protocol::NameU32Args {
                name: String::new(),
                value: id,
            },
        )?;
        Ok(wire.into())
    }

    fn lookup_domain_by_uuid(&self, uuid: Uuid) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(proc::DOMAIN_LOOKUP_UUID, &uuid.into_bytes())?;
        Ok(wire.into())
    }

    fn define_domain_xml(&self, xml: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_DEFINE_XML,
            &protocol::XmlArgs {
                xml: xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn create_domain_xml(&self, xml: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_CREATE_XML,
            &protocol::XmlArgs {
                xml: xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn undefine_domain(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::DOMAIN_UNDEFINE, name)
    }

    fn start_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_START, name)
    }

    fn shutdown_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_SHUTDOWN, name)
    }

    fn reboot_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_REBOOT, name)
    }

    fn destroy_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_DESTROY, name)
    }

    fn suspend_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_SUSPEND, name)
    }

    fn resume_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_RESUME, name)
    }

    fn save_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_SAVE, name)
    }

    fn restore_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_RESTORE, name)
    }

    fn set_domain_memory(&self, name: &str, memory_mib: u64) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_SET_MEMORY,
            &protocol::NameU64Args {
                name: name.to_string(),
                value: memory_mib,
            },
        )?;
        Ok(wire.into())
    }

    fn set_domain_vcpus(&self, name: &str, vcpus: u32) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_SET_VCPUS,
            &protocol::NameU32Args {
                name: name.to_string(),
                value: vcpus,
            },
        )?;
        Ok(wire.into())
    }

    fn attach_device(&self, name: &str, device_xml: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_ATTACH_DEVICE,
            &protocol::NameStringArgs {
                name: name.to_string(),
                value: device_xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn detach_device(&self, name: &str, target: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_DETACH_DEVICE,
            &protocol::NameStringArgs {
                name: name.to_string(),
                value: target.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn snapshot_domain(&self, name: &str, snapshot: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_SNAPSHOT,
            &protocol::NameStringArgs {
                name: name.to_string(),
                value: snapshot.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn revert_snapshot(&self, name: &str, snapshot: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::DOMAIN_SNAPSHOT_REVERT,
            &protocol::NameStringArgs {
                name: name.to_string(),
                value: snapshot.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn delete_snapshot(&self, name: &str, snapshot: &str) -> VirtResult<()> {
        self.call::<()>(
            proc::DOMAIN_SNAPSHOT_DELETE,
            &protocol::NameStringArgs {
                name: name.to_string(),
                value: snapshot.to_string(),
            },
        )
    }

    fn list_snapshots(&self, name: &str) -> VirtResult<Vec<String>> {
        self.call(
            proc::DOMAIN_LIST_SNAPSHOTS,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )
    }

    fn set_autostart(&self, name: &str, autostart: bool) -> VirtResult<()> {
        self.call::<()>(
            proc::DOMAIN_SET_AUTOSTART,
            &protocol::NameBoolArgs {
                name: name.to_string(),
                value: autostart,
            },
        )
    }

    fn get_autostart(&self, name: &str) -> VirtResult<bool> {
        self.call(
            proc::DOMAIN_GET_AUTOSTART,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )
    }

    fn dump_domain_xml(&self, name: &str) -> VirtResult<String> {
        self.call(
            proc::DOMAIN_DUMP_XML,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )
    }

    fn crash_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        self.domain_call(proc::DOMAIN_CRASH, name)
    }

    fn guard_set(&self, name: &str, policy: &GuardPolicy) -> VirtResult<()> {
        self.call::<()>(
            proc::GUARD_SET,
            &protocol::GuardSetArgs::from_policy(name, policy),
        )
    }

    fn guard_remove(&self, name: &str) -> VirtResult<()> {
        self.call::<()>(
            proc::GUARD_REMOVE,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )
    }

    fn guard_list(&self) -> VirtResult<Vec<GuardStatus>> {
        let list: protocol::WireGuardStatusList = self.call(proc::GUARD_LIST, &())?;
        Ok(list.0.into_iter().filter_map(|w| w.into_status()).collect())
    }

    fn guard_status(&self, name: &str) -> VirtResult<GuardStatus> {
        let wire: protocol::WireGuardStatus = self.call(
            proc::GUARD_STATUS,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )?;
        wire.into_status().ok_or_else(|| {
            VirtError::new(
                ErrorCode::RpcFailure,
                "daemon sent unknown guard policy kind",
            )
        })
    }

    fn migrate_begin(&self, name: &str) -> VirtResult<String> {
        self.call(
            proc::MIGRATE_BEGIN,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )
    }

    fn migrate_prepare(&self, xml: &str) -> VirtResult<()> {
        self.call::<()>(
            proc::MIGRATE_PREPARE,
            &protocol::XmlArgs {
                xml: xml.to_string(),
            },
        )
    }

    fn migrate_perform(
        &self,
        name: &str,
        options: &MigrationOptions,
    ) -> VirtResult<MigrationReport> {
        let wire: protocol::WireMigrationReport = self.call(
            proc::MIGRATE_PERFORM,
            &protocol::MigratePerformArgs::from_options(name, options),
        )?;
        Ok(wire.into())
    }

    fn migrate_finish(&self, xml: &str) -> VirtResult<DomainRecord> {
        let wire: protocol::WireDomain = self.call(
            proc::MIGRATE_FINISH,
            &protocol::XmlArgs {
                xml: xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn migrate_confirm(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::MIGRATE_CONFIRM, name)
    }

    fn migrate_abort(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::MIGRATE_ABORT, name)
    }

    fn domain_job_stats(&self, name: &str) -> VirtResult<crate::job::JobStats> {
        let wire: protocol::WireJobStats = self.call(
            proc::DOMAIN_GET_JOB_STATS,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn abort_domain_job(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::DOMAIN_ABORT_JOB, name)
    }

    fn get_all_domain_stats(&self) -> VirtResult<Vec<crate::driver::DomainStatsRecord>> {
        // The whole point of the bulk procedure: one round-trip for the
        // entire host, never one call per domain.
        let wire: protocol::WireDomainStatsList =
            self.call(proc::CONNECT_GET_ALL_DOMAIN_STATS, &())?;
        Ok(wire
            .0
            .into_iter()
            .map(|record| crate::driver::DomainStatsRecord {
                name: record.name,
                params: record.params.0,
            })
            .collect())
    }

    fn list_pools(&self) -> VirtResult<Vec<String>> {
        self.call(proc::LIST_POOLS, &())
    }

    fn pool_info(&self, name: &str) -> VirtResult<PoolRecord> {
        let wire: protocol::WirePool = self.call(
            proc::POOL_INFO,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn define_pool_xml(&self, xml: &str) -> VirtResult<PoolRecord> {
        let wire: protocol::WirePool = self.call(
            proc::POOL_DEFINE_XML,
            &protocol::XmlArgs {
                xml: xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn start_pool(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::POOL_START, name)
    }

    fn stop_pool(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::POOL_STOP, name)
    }

    fn undefine_pool(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::POOL_UNDEFINE, name)
    }

    fn list_volumes(&self, pool: &str) -> VirtResult<Vec<String>> {
        self.call(
            proc::LIST_VOLUMES,
            &protocol::NameArgs {
                name: pool.to_string(),
            },
        )
    }

    fn volume_info(&self, pool: &str, name: &str) -> VirtResult<VolumeRecord> {
        let wire: protocol::WireVolume = self.call(
            proc::VOLUME_INFO,
            &protocol::PoolVolArgs {
                pool: pool.to_string(),
                name: name.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn create_volume_xml(&self, pool: &str, xml: &str) -> VirtResult<VolumeRecord> {
        let wire: protocol::WireVolume = self.call(
            proc::VOLUME_CREATE_XML,
            &protocol::PoolXmlArgs {
                pool: pool.to_string(),
                xml: xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn delete_volume(&self, pool: &str, name: &str) -> VirtResult<()> {
        self.call::<()>(
            proc::VOLUME_DELETE,
            &protocol::PoolVolArgs {
                pool: pool.to_string(),
                name: name.to_string(),
            },
        )
    }

    fn resize_volume(&self, pool: &str, name: &str, capacity_mib: u64) -> VirtResult<()> {
        self.call::<()>(
            proc::VOLUME_RESIZE,
            &protocol::VolResizeArgs {
                pool: pool.to_string(),
                name: name.to_string(),
                capacity_mib,
            },
        )
    }

    fn clone_volume(&self, pool: &str, source: &str, new_name: &str) -> VirtResult<VolumeRecord> {
        let wire: protocol::WireVolume = self.call(
            proc::VOLUME_CLONE,
            &protocol::VolCloneArgs {
                pool: pool.to_string(),
                source: source.to_string(),
                new_name: new_name.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn list_networks(&self) -> VirtResult<Vec<String>> {
        self.call(proc::LIST_NETWORKS, &())
    }

    fn network_info(&self, name: &str) -> VirtResult<NetworkRecord> {
        let wire: protocol::WireNetwork = self.call(
            proc::NETWORK_INFO,
            &protocol::NameArgs {
                name: name.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn define_network_xml(&self, xml: &str) -> VirtResult<NetworkRecord> {
        let wire: protocol::WireNetwork = self.call(
            proc::NETWORK_DEFINE_XML,
            &protocol::XmlArgs {
                xml: xml.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    fn start_network(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::NETWORK_START, name)
    }

    fn stop_network(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::NETWORK_STOP, name)
    }

    fn undefine_network(&self, name: &str) -> VirtResult<()> {
        self.unit_name_call(proc::NETWORK_UNDEFINE, name)
    }

    fn register_event_callback(&self, callback: EventCallback) -> VirtResult<CallbackId> {
        if !self.events_subscribed.swap(true, Ordering::AcqRel) {
            self.call::<()>(proc::EVENT_REGISTER, &())?;
        }
        Ok(self.events.register(callback))
    }

    fn unregister_event_callback(&self, id: CallbackId) -> VirtResult<()> {
        if !self.events.unregister(id) {
            return Err(VirtError::new(
                ErrorCode::InvalidArg,
                format!("no callback {id}"),
            ));
        }
        if self.events.is_empty() && self.events_subscribed.swap(false, Ordering::AcqRel) {
            self.call::<()>(proc::EVENT_DEREGISTER, &())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_never_claims_uris_directly() {
        let driver = RemoteDriver::new();
        for text in ["qemu:///system", "qemu+tcp://h/system", "esx://h/"] {
            let uri: ConnectUri = text.parse().unwrap();
            assert!(!driver.probe(&uri));
        }
    }

    #[test]
    fn memory_transport_requires_registered_daemon() {
        let uri: ConnectUri = "qemu+memory://no-such-daemon/system".parse().unwrap();
        let err = RemoteDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }

    #[test]
    fn memory_transport_requires_host() {
        let uri: ConnectUri = "qemu+memory:///system".parse().unwrap();
        let err = RemoteDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidUri);
    }

    #[test]
    fn tcp_transport_requires_reachable_daemon() {
        // Port 1 on localhost is essentially never listening.
        let uri: ConnectUri = "qemu+tcp://127.0.0.1:1/system".parse().unwrap();
        let err = RemoteDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }

    #[test]
    fn unix_transport_is_local_only() {
        let uri: ConnectUri = "qemu+unix://somehost/system".parse().unwrap();
        let err = RemoteDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidUri);
    }

    #[test]
    fn missing_socket_fails_with_no_connect() {
        let uri: ConnectUri = "qemu+unix:///system?socket=/no/such/socket"
            .parse()
            .unwrap();
        let err = RemoteDriver::new().open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }
}

//! The embedded (host-backed) connection shared by the stateful drivers.
//!
//! `virtd` constructs one [`EmbeddedConnection`] per platform driver it
//! hosts (qemu, xen, lxc); the test and ESX drivers reuse the same
//! implementation over their own hosts. For QEMU-personality hosts,
//! lifecycle operations that a real libvirt would issue through the
//! domain's monitor socket are routed through [`hypersim::monitor`] — the
//! same command formatting/parsing path the real driver exercises.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use hypersim::monitor::Monitor;
use hypersim::{MigrationParams, SimHost};

use crate::capabilities::Capabilities;
use crate::driver::{
    DomainRecord, DomainState, HypervisorConnection, MigrationOptions, MigrationReport,
    NetworkRecord, NodeInfo, PoolRecord, VolumeRecord,
};
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::event::{
    CallbackId, DomainEvent, DomainEventKind, EventBus, EventCallback, EventFilter,
};
use crate::guard::{GuardEngine, GuardPolicy, GuardRecord, GuardStatus};
use crate::job::{JobKind, JobManager, JobProgress, JobStats, JobTicket};
use crate::metrics::span::{self, Stage};
use crate::metrics::{Histogram, Registry};
use crate::statestore::{DomainStatus, ObjectKind, StateStore, StoreOp};
use crate::uuid::Uuid;
use crate::xmlfmt::{DomainConfig, NetworkConfig, PoolConfig, VolumeConfig};

/// Largest slice of migration traffic charged to the virtual clock in one
/// go. Smaller slices mean finer progress granularity and faster abort
/// response, at the cost of more clock charges.
const MIGRATION_SLICE_MIB: u64 = 256;

/// Wall-clock latency histograms for the domain lifecycle operations, one
/// per operation. Created with the connection (recording is a few relaxed
/// atomics) and optionally published into a daemon-wide [`Registry`] with
/// [`EmbeddedConnection::publish_metrics`].
#[derive(Debug)]
struct LifecycleMetrics {
    define: Arc<Histogram>,
    create: Arc<Histogram>,
    undefine: Arc<Histogram>,
    start: Arc<Histogram>,
    shutdown: Arc<Histogram>,
    reboot: Arc<Histogram>,
    destroy: Arc<Histogram>,
    suspend: Arc<Histogram>,
    resume: Arc<Histogram>,
    save: Arc<Histogram>,
    restore: Arc<Histogram>,
    migrate: Arc<Histogram>,
}

impl LifecycleMetrics {
    fn new() -> Self {
        LifecycleMetrics {
            define: Arc::new(Histogram::new()),
            create: Arc::new(Histogram::new()),
            undefine: Arc::new(Histogram::new()),
            start: Arc::new(Histogram::new()),
            shutdown: Arc::new(Histogram::new()),
            reboot: Arc::new(Histogram::new()),
            destroy: Arc::new(Histogram::new()),
            suspend: Arc::new(Histogram::new()),
            resume: Arc::new(Histogram::new()),
            save: Arc::new(Histogram::new()),
            restore: Arc::new(Histogram::new()),
            migrate: Arc::new(Histogram::new()),
        }
    }

    fn all(&self) -> [(&'static str, &Arc<Histogram>); 12] {
        [
            ("define", &self.define),
            ("create", &self.create),
            ("undefine", &self.undefine),
            ("start", &self.start),
            ("shutdown", &self.shutdown),
            ("reboot", &self.reboot),
            ("destroy", &self.destroy),
            ("suspend", &self.suspend),
            ("resume", &self.resume),
            ("save", &self.save),
            ("restore", &self.restore),
            ("migrate", &self.migrate),
        ]
    }
}

/// Binds a connection to one driver's partition of a [`StateStore`].
/// The daemon creates one binding per embedded driver so qemu, xen and
/// lxc definitions land in separate subdirectories of the shared
/// statedir (mirroring `/etc/libvirt/qemu` vs `/etc/libvirt/lxc`).
#[derive(Debug, Clone)]
pub struct StoreBinding {
    store: Arc<StateStore>,
    driver: String,
}

impl StoreBinding {
    /// Scopes `store` to the partition named `driver`.
    pub fn new(store: Arc<StateStore>, driver: impl Into<String>) -> Self {
        StoreBinding {
            store,
            driver: driver.into(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<StateStore> {
        &self.store
    }

    /// The partition name.
    pub fn driver(&self) -> &str {
        &self.driver
    }
}

/// What a startup recovery pass brought back.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Persistent domain definitions re-adopted into the host.
    pub domains: u64,
    /// Domains the live-status records said were active when the previous
    /// daemon died; their backing guests died with it, so they come back
    /// shut off with reason `crashed`.
    pub crashed: u64,
    /// Autostart domains actually (re)started.
    pub autostarted: u64,
    /// Network definitions re-defined.
    pub networks: u64,
    /// Pool definitions re-defined.
    pub pools: u64,
    /// Corrupt files moved to quarantine during this pass.
    pub quarantined: u64,
    /// Guard policies re-armed from their persisted records.
    pub guards: u64,
    /// Recorded-crashed guarded domains immediately revived.
    pub revived: u64,
}

impl RecoveryReport {
    /// Total persistent objects brought back.
    pub fn recovered(&self) -> u64 {
        self.domains + self.networks + self.pools
    }
}

/// A connection executing directly against a [`SimHost`].
pub struct EmbeddedConnection {
    host: SimHost,
    uri: String,
    events: EventBus,
    alive: AtomicBool,
    ops: LifecycleMetrics,
    /// Job bookkeeping, keyed by host name so a rebuilt connection over
    /// the same host (daemon restart) sees — and can recover — jobs
    /// started by its predecessor.
    jobs: Arc<JobManager>,
    /// On-disk persistence, when the daemon was given a statedir.
    /// `None` keeps everything in memory (tests, ephemeral daemons).
    store: Option<StoreBinding>,
    /// The availability supervisor, fed off this connection's event bus.
    /// Zero-cost until the first policy is defined.
    guard: GuardEngine,
}

impl std::fmt::Debug for EmbeddedConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddedConnection")
            .field("uri", &self.uri)
            .field("host", &self.host.name())
            .finish()
    }
}

impl EmbeddedConnection {
    /// Wraps a host, reporting `uri` as the connection's canonical URI.
    pub fn new(host: SimHost, uri: impl Into<String>) -> Arc<Self> {
        Self::build(host, uri, None)
    }

    /// Like [`EmbeddedConnection::new`], but every definition and
    /// live-status change is mirrored to `binding`'s store partition,
    /// and [`EmbeddedConnection::recover_from_store`] can reload it.
    pub fn with_store(host: SimHost, uri: impl Into<String>, binding: StoreBinding) -> Arc<Self> {
        Self::build(host, uri, Some(binding))
    }

    fn build(host: SimHost, uri: impl Into<String>, store: Option<StoreBinding>) -> Arc<Self> {
        // Key on the instance id, not the name: hosts with recycled names
        // (test fixtures) must not share job state, while a connection
        // rebuilt over the same host (daemon restart) must.
        let jobs = JobManager::for_host(&format!("{}#{}", host.name(), host.instance_id()));
        let conn = Arc::new(EmbeddedConnection {
            host,
            uri: uri.into(),
            events: EventBus::new(),
            alive: AtomicBool::new(true),
            ops: LifecycleMetrics::new(),
            jobs,
            store,
            guard: GuardEngine::new(),
        });
        // The engine acts through a weak handle (no reference cycle) and
        // observes lifecycle events; emits are synchronous, so the
        // observer only schedules — the engine's worker thread acts.
        conn.guard
            .attach(Arc::downgrade(&conn) as Weak<dyn HypervisorConnection>);
        let engine = conn.guard.clone();
        conn.events.register_filtered(
            EventFilter::LifecycleOnly,
            Arc::new(move |event| engine.observe(event)),
        );
        conn
    }

    /// The availability supervisor attached to this connection.
    pub fn guard_engine(&self) -> &GuardEngine {
        &self.guard
    }

    /// The state-store binding, if this connection persists to disk.
    pub fn store_binding(&self) -> Option<&StoreBinding> {
        self.store.as_ref()
    }

    /// The job manager tracking background jobs on this host.
    pub fn jobs(&self) -> &Arc<JobManager> {
        &self.jobs
    }

    /// The underlying host (used by the daemon's dispatch and by tests).
    pub fn host(&self) -> &SimHost {
        &self.host
    }

    /// Publishes the per-operation lifecycle latency histograms into
    /// `registry` as `driver.{name}.{op}_us`. The registry shares the
    /// connection's own histogram instances, so operations recorded before
    /// or after publication all appear in snapshots.
    pub fn publish_metrics(&self, registry: &Registry, name: &str) {
        for (op, hist) in self.ops.all() {
            let _ = registry.register_histogram(
                &format!("driver.{name}.{op}_us"),
                "Wall-clock latency of this domain lifecycle operation",
                Arc::clone(hist),
            );
        }
        self.guard.publish_metrics(registry);
    }

    /// The event bus (the daemon forwards these to remote clients).
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    fn ensure_alive(&self) -> VirtResult<()> {
        if self.alive.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(VirtError::new(
                ErrorCode::ConnectInvalid,
                "connection is closed",
            ))
        }
    }

    fn domain_type(&self) -> &str {
        self.host.personality().name()
    }

    fn uses_monitor(&self) -> bool {
        self.domain_type() == "qemu"
    }

    fn emit(&self, record: &DomainRecord, kind: DomainEventKind) {
        self.events.emit(&DomainEvent {
            domain: record.name.clone(),
            uuid: record.uuid,
            kind,
            trace_id: span::current_trace_id(),
        });
    }

    fn record(&self, name: &str) -> VirtResult<DomainRecord> {
        Ok(self.host.domain(name)?.into())
    }

    /// Re-persists (or removes) the on-disk records for `name` after a
    /// state-changing operation, blocking on the store's group-commit
    /// barrier: when this returns `Ok`, the records are on disk. Used by
    /// configuration-changing ops (define/undefine, autostart, device
    /// and resource changes, save/restore, migration finish) whose
    /// effects must survive any crash that happens after they return.
    fn sync_domain_state(&self, name: &str) -> VirtResult<()> {
        self.sync_domain_records(name, true)
    }

    /// Write-behind variant for volatile lifecycle transitions (start,
    /// stop, suspend, crash): the dirty record is queued for the
    /// persister's next coalesced flush cycle and this returns
    /// immediately. Losing the tail of these writes in a crash is
    /// exactly the case boot-time reconciliation already handles — a
    /// stale status record is reinterpreted against reality, never
    /// trusted blindly — so the guest-visible operation does not wait
    /// for an fsync. Errors surface via `statestore.write_error` and the
    /// next durable barrier instead of here.
    fn sync_domain_state_behind(&self, name: &str) {
        let _ = self.sync_domain_records(name, false);
    }

    fn sync_domain_records(&self, name: &str, durable: bool) -> VirtResult<()> {
        let Some(binding) = &self.store else {
            return Ok(());
        };
        let _span = span::stage(Stage::StateStore);
        let store = &binding.store;
        let driver = binding.driver.as_str();
        // One lock acquisition for a consistent (info, spec) pair: the
        // domain must not change state between the two reads.
        match self.host.domain_snapshot(name) {
            Ok((info, spec)) if info.persistent => {
                let config =
                    DomainConfig::from_spec(&spec, self.domain_type(), Uuid::from_bytes(info.uuid));
                let status = DomainStatus {
                    name: name.to_string(),
                    uuid: Uuid::from_bytes(info.uuid),
                    state: info.state,
                    autostart: info.autostart,
                    has_managed_save: info.has_managed_save,
                };
                if durable {
                    // One barrier for both records: the definition and
                    // its status frame ride the same flush cycle.
                    store.commit(vec![
                        StoreOp::Put {
                            kind: ObjectKind::Domain,
                            driver: driver.to_string(),
                            name: name.to_string(),
                            payload: config.to_xml_string(),
                        },
                        StoreOp::Put {
                            kind: ObjectKind::DomainStatus,
                            driver: driver.to_string(),
                            name: name.to_string(),
                            payload: status.to_xml_string(),
                        },
                    ])?;
                } else {
                    // The definition rarely changes on lifecycle ops;
                    // the store's content dedup skips the rewrite when
                    // the committed frame is already identical.
                    store.put_behind(ObjectKind::Domain, driver, name, &config.to_xml_string());
                    store.put_behind(
                        ObjectKind::DomainStatus,
                        driver,
                        name,
                        &status.to_xml_string(),
                    );
                }
            }
            _ => {
                // A vanished domain takes its guard record with it (a
                // live transient domain keeps its guard).
                let sweep_guard = self.host.domain(name).is_err();
                if durable {
                    let mut ops = vec![
                        StoreOp::Remove {
                            kind: ObjectKind::DomainStatus,
                            driver: driver.to_string(),
                            name: name.to_string(),
                        },
                        StoreOp::Remove {
                            kind: ObjectKind::Domain,
                            driver: driver.to_string(),
                            name: name.to_string(),
                        },
                    ];
                    if sweep_guard {
                        ops.push(StoreOp::Remove {
                            kind: ObjectKind::Guard,
                            driver: driver.to_string(),
                            name: name.to_string(),
                        });
                    }
                    store.commit(ops)?;
                } else {
                    store.remove_behind(ObjectKind::DomainStatus, driver, name);
                    store.remove_behind(ObjectKind::Domain, driver, name);
                    if sweep_guard {
                        store.remove_behind(ObjectKind::Guard, driver, name);
                    }
                }
            }
        }
        Ok(())
    }

    /// Reloads this driver's partition of the state store into the host:
    /// the boot-time reconciliation pass a stateful libvirt daemon runs
    /// (`qemuProcessReconnect` and friends).
    ///
    /// Rules, in order:
    /// - Corrupt definition or status files are quarantined, never fatal.
    /// - Every persistent definition missing from the host is re-adopted
    ///   with its recorded UUID, autostart and managed-save flags.
    /// - A domain whose status said it was active comes back shut off
    ///   with reason `crashed` — its backing guest died with the previous
    ///   daemon. A saved domain stays saved; everything else is shut off.
    /// - Status records with no backing definition (transient domains
    ///   that died with the daemon) are swept from `run/`.
    /// - Autostart domains that are not running are started, best-effort.
    /// - Network and pool definitions missing from the host are
    ///   re-defined (inactive, as after `virsh net-define`).
    pub fn recover_from_store(&self) -> VirtResult<RecoveryReport> {
        let Some(binding) = &self.store else {
            return Ok(RecoveryReport::default());
        };
        let store = &binding.store;
        let driver = binding.driver.as_str();
        // Reads below must see committed frames only: drain any records
        // still queued in the pipeline. At a real daemon boot this is a
        // no-op; when a test reuses one store across simulated daemon
        // lives it makes the recovery input deterministic.
        store.flush()?;
        let quarantined_before = store.quarantined_total();
        let mut report = RecoveryReport::default();

        let mut statuses = std::collections::HashMap::new();
        for (name, payload) in store.load_all(ObjectKind::DomainStatus, driver) {
            match DomainStatus::from_xml_str(&payload) {
                Ok(status) => {
                    statuses.insert(name, status);
                }
                Err(_) => store.quarantine(ObjectKind::DomainStatus, driver, &name),
            }
        }

        for (name, payload) in store.load_all(ObjectKind::Domain, driver) {
            let config = match DomainConfig::from_xml_str(&payload) {
                Ok(config) => config,
                Err(_) => {
                    store.quarantine(ObjectKind::Domain, driver, &name);
                    continue;
                }
            };
            if self.host.domain(&name).is_ok() {
                continue;
            }
            let status = statuses.get(&name);
            let state = match status.map(|s| s.state) {
                Some(s) if s.is_active() => {
                    report.crashed += 1;
                    hypersim::DomainState::Crashed
                }
                Some(hypersim::DomainState::Saved) => hypersim::DomainState::Saved,
                _ => hypersim::DomainState::Shutoff,
            };
            let uuid = status
                .map(|s| s.uuid)
                .or(config.uuid)
                .unwrap_or_else(Uuid::generate);
            let autostart = status.map(|s| s.autostart).unwrap_or(false);
            let has_managed_save = status.map(|s| s.has_managed_save).unwrap_or(false);
            self.host.adopt_domain(
                config.to_spec(),
                uuid.into_bytes(),
                autostart,
                state,
                has_managed_save,
            )?;
            report.domains += 1;
            // Rewrite both files so run/ reflects the reconciled state.
            // Write-behind: N adopted domains coalesce into a handful of
            // batched fsync cycles (F7 measured the old per-domain
            // barrier at ~2 ms/domain); the flush fence below makes the
            // whole reconciliation durable before recovery returns.
            self.sync_domain_state_behind(&name);
        }

        for name in statuses.keys() {
            if self.host.domain(name).is_err() {
                store.remove_behind(ObjectKind::DomainStatus, driver, name);
            }
        }

        // Autostart pass. Failures (e.g. insufficient memory) must not
        // abort daemon boot; the domain simply stays shut off.
        let autostart_pending: Vec<String> = self
            .host
            .list_domains()?
            .into_iter()
            .filter(|d| d.autostart && !d.state.is_active())
            .map(|d| d.name)
            .collect();
        for name in autostart_pending {
            if self.start_domain(&name).is_ok() {
                report.autostarted += 1;
            }
        }

        for (name, payload) in store.load_all(ObjectKind::Network, driver) {
            let config = match NetworkConfig::from_xml_str(&payload) {
                Ok(config) => config,
                Err(_) => {
                    store.quarantine(ObjectKind::Network, driver, &name);
                    continue;
                }
            };
            if self.host.network(&name).is_err() {
                self.host.define_network(config.to_spec())?;
                report.networks += 1;
            }
        }

        for (name, payload) in store.load_all(ObjectKind::Pool, driver) {
            let config = match PoolConfig::from_xml_str(&payload) {
                Ok(config) => config,
                Err(_) => {
                    store.quarantine(ObjectKind::Pool, driver, &name);
                    continue;
                }
            };
            if self.host.pool(&name).is_err() {
                self.host.define_pool(config.to_spec())?;
                report.pools += 1;
            }
        }

        // Guard pass: re-arm persisted policies, then immediately revive
        // any keep-running domain the status records brought back as
        // crashed — its guest died with the previous daemon, and the
        // guard's whole point is that nobody has to notice.
        for (name, payload) in store.load_all(ObjectKind::Guard, driver) {
            let record = match GuardRecord::from_xml_str(&payload) {
                Ok(record) if record.domain == name => record,
                Ok(_) => {
                    // Filename/content mismatch: treat as corruption.
                    store.quarantine(ObjectKind::Guard, driver, &name);
                    continue;
                }
                Err(_) => {
                    store.quarantine(ObjectKind::Guard, driver, &name);
                    continue;
                }
            };
            if self.host.domain(&record.domain).is_err() {
                // The guarded domain no longer exists; sweep the record.
                store.remove_behind(ObjectKind::Guard, driver, &name);
                continue;
            }
            self.guard.set_policy(&record.domain, record.policy);
            report.guards += 1;
            let crashed = self
                .host
                .domain(&record.domain)
                .map(|d| d.state == hypersim::DomainState::Crashed)
                .unwrap_or(false);
            if crashed && matches!(record.policy, GuardPolicy::KeepRunning { .. }) {
                // No backoff: the crash predates this daemon life.
                if self.start_domain(&record.domain).is_ok() {
                    self.guard.note_revived();
                    report.revived += 1;
                } else {
                    // Let the worker climb the backoff ladder.
                    self.guard.revive_now(&record.domain);
                }
            }
        }

        // Fence: every reconciled rewrite and sweep queued above is on
        // disk before recovery reports success.
        store.flush()?;
        report.quarantined = store.quarantined_total() - quarantined_before;
        Ok(report)
    }

    /// Runs a short host operation as a coarse (single-slice) job:
    /// begin → op → complete/fail, emitting job lifecycle events. Used
    /// for save/restore, whose simulated work is one indivisible charge.
    fn run_coarse_job<T>(
        &self,
        record: &DomainRecord,
        kind: JobKind,
        op: impl FnOnce() -> VirtResult<T>,
    ) -> VirtResult<T> {
        let ticket = self.jobs.begin(&record.name, kind)?;
        self.emit(record, DomainEventKind::JobStarted);
        match op() {
            Ok(value) => {
                ticket.complete();
                self.emit(record, DomainEventKind::JobCompleted);
                Ok(value)
            }
            Err(err) => {
                ticket.fail(&err.to_string());
                self.emit(record, DomainEventKind::JobFailed);
                Err(err)
            }
        }
    }

    /// Charges one slice of migration traffic, checking for an abort
    /// request first. Returns the slice's simulated duration in ms.
    fn charge_migration_slice(
        &self,
        record: &DomainRecord,
        ticket: &JobTicket,
        chunk_mib: u64,
    ) -> VirtResult<()> {
        if ticket.aborted() {
            return Err(VirtError::new(
                ErrorCode::OperationAborted,
                format!("migration of '{}' aborted by request", record.name),
            ));
        }
        self.host
            .charge_migration_transfer(hypersim::MiB(chunk_mib))
            .map_err(VirtError::from)
    }
}

impl HypervisorConnection for EmbeddedConnection {
    fn uri(&self) -> String {
        self.uri.clone()
    }

    fn hostname(&self) -> VirtResult<String> {
        self.ensure_alive()?;
        Ok(self.host.name().to_string())
    }

    fn node_info(&self) -> VirtResult<NodeInfo> {
        self.ensure_alive()?;
        let info = self.host.info();
        if !info.up {
            return Err(VirtError::new(ErrorCode::NoConnect, "host is down"));
        }
        Ok(NodeInfo {
            hostname: info.name,
            hypervisor: info.hypervisor,
            cpus: info.cpus,
            memory_mib: info.memory.0,
            free_memory_mib: info.free_memory.0,
            active_domains: info.active_domains as u32,
            inactive_domains: info.inactive_domains as u32,
        })
    }

    fn capabilities(&self) -> VirtResult<Capabilities> {
        self.ensure_alive()?;
        Ok(Capabilities::from_personality(self.host.personality()))
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire) && self.host.is_up()
    }

    fn close(&self) {
        self.alive.store(false, Ordering::Release);
        self.guard.stop();
    }

    // ---- domains -------------------------------------------------------

    fn list_domains(&self) -> VirtResult<Vec<DomainRecord>> {
        self.ensure_alive()?;
        Ok(self
            .host
            .list_domains()?
            .into_iter()
            .map(DomainRecord::from)
            .collect())
    }

    fn lookup_domain_by_name(&self, name: &str) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        self.record(name)
    }

    fn lookup_domain_by_id(&self, id: u32) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        Ok(self.host.domain_by_id(id)?.into())
    }

    fn lookup_domain_by_uuid(&self, uuid: Uuid) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        Ok(self.host.domain_by_uuid(uuid.into_bytes())?.into())
    }

    fn define_domain_xml(&self, xml: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.define.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let config = DomainConfig::from_xml_str(xml)?;
        let record: DomainRecord = self.host.define_domain(config.to_spec())?.into();
        if let Err(err) = self.sync_domain_state(&record.name) {
            // A definition that cannot be persisted must not exist only
            // in memory — it would silently vanish on restart.
            let _ = self.host.undefine_domain(&record.name);
            return Err(err);
        }
        self.emit(&record, DomainEventKind::Defined);
        Ok(record)
    }

    fn create_domain_xml(&self, xml: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.create.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let config = DomainConfig::from_xml_str(xml)?;
        let record: DomainRecord = self.host.create_domain(config.to_spec())?.into();
        // Transient: sync leaves no files, and sweeps any stale ones.
        self.sync_domain_state(&record.name)?;
        self.emit(&record, DomainEventKind::Started);
        Ok(record)
    }

    fn undefine_domain(&self, name: &str) -> VirtResult<()> {
        let _timer = self.ops.undefine.start_timer();
        self.ensure_alive()?;
        let record = self.record(name)?;
        if record.state.is_active() {
            // libvirt semantics: the configuration disappears but the
            // guest keeps running as transient, vanishing when it stops.
            self.host.demote_domain_to_transient(name)?;
        } else {
            self.host.undefine_domain(name)?;
        }
        self.sync_domain_state(name)?;
        self.emit(&record, DomainEventKind::Undefined);
        Ok(())
    }

    fn start_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.start.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let record: DomainRecord = self.host.start_domain(name)?.into();
        let kind = if record.state == crate::driver::DomainState::Crashed {
            DomainEventKind::Crashed
        } else {
            DomainEventKind::Started
        };
        self.sync_domain_state_behind(name);
        self.emit(&record, kind);
        Ok(record)
    }

    fn shutdown_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.shutdown.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let record: DomainRecord = if self.uses_monitor() {
            // Capture identity first: a transient domain vanishes from the
            // host table the moment it stops.
            let mut before = self.record(name)?;
            Monitor::attach(&self.host, name)
                .execute_line("system_powerdown")
                .map_err(VirtError::from)?;
            match self.host.domain(name) {
                Ok(info) => info.into(),
                Err(_) => {
                    before.state = crate::driver::DomainState::Shutoff;
                    before.id = None;
                    before
                }
            }
        } else {
            self.host.shutdown_domain(name)?.into()
        };
        self.sync_domain_state_behind(name);
        self.emit(&record, DomainEventKind::Stopped);
        Ok(record)
    }

    fn reboot_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.reboot.start_timer();
        self.ensure_alive()?;
        if self.uses_monitor() {
            Monitor::attach(&self.host, name)
                .execute_line("system_reset")
                .map_err(VirtError::from)?;
            self.record(name)
        } else {
            Ok(self.host.reboot_domain(name)?.into())
        }
    }

    fn destroy_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.destroy.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let record: DomainRecord = self.host.destroy_domain(name)?.into();
        self.sync_domain_state_behind(name);
        self.emit(&record, DomainEventKind::Stopped);
        Ok(record)
    }

    fn suspend_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.suspend.start_timer();
        self.ensure_alive()?;
        let record: DomainRecord = if self.uses_monitor() {
            Monitor::attach(&self.host, name)
                .execute_line("stop")
                .map_err(VirtError::from)?;
            self.record(name)?
        } else {
            self.host.suspend_domain(name)?.into()
        };
        self.sync_domain_state_behind(name);
        self.emit(&record, DomainEventKind::Suspended);
        Ok(record)
    }

    fn resume_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.resume.start_timer();
        self.ensure_alive()?;
        let record: DomainRecord = if self.uses_monitor() {
            Monitor::attach(&self.host, name)
                .execute_line("cont")
                .map_err(VirtError::from)?;
            self.record(name)?
        } else {
            self.host.resume_domain(name)?.into()
        };
        self.sync_domain_state_behind(name);
        self.emit(&record, DomainEventKind::Resumed);
        Ok(record)
    }

    fn save_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.save.start_timer();
        self.ensure_alive()?;
        let before = self.record(name)?;
        let record = self.run_coarse_job(&before, JobKind::Save, || {
            Ok(DomainRecord::from(self.host.save_domain(name)?))
        })?;
        self.sync_domain_state(name)?;
        self.emit(&record, DomainEventKind::Saved);
        Ok(record)
    }

    fn restore_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.restore.start_timer();
        self.ensure_alive()?;
        let before = self.record(name)?;
        let record = self.run_coarse_job(&before, JobKind::Restore, || {
            Ok(DomainRecord::from(self.host.restore_domain(name)?))
        })?;
        self.sync_domain_state(name)?;
        self.emit(&record, DomainEventKind::Restored);
        Ok(record)
    }

    fn set_domain_memory(&self, name: &str, memory_mib: u64) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        if self.uses_monitor() {
            Monitor::attach(&self.host, name)
                .execute_line(&format!("balloon {memory_mib}"))
                .map_err(VirtError::from)?;
        } else {
            self.host
                .set_domain_memory(name, hypersim::MiB(memory_mib))?;
        }
        self.sync_domain_state(name)?;
        self.record(name)
    }

    fn set_domain_vcpus(&self, name: &str, vcpus: u32) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        let record: DomainRecord = self.host.set_domain_vcpus(name, vcpus)?.into();
        self.sync_domain_state(name)?;
        Ok(record)
    }

    fn attach_device(&self, name: &str, device_xml: &str) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        let el = virt_xml::Element::parse(device_xml)?;
        if el.name() != "disk" {
            return Err(VirtError::new(
                ErrorCode::XmlError,
                format!("only <disk> devices can be attached, got <{}>", el.name()),
            ));
        }
        // Reuse the domain schema's disk parser via a wrapper document.
        let wrapper = format!(
            "<domain><name>x</name><memory>1</memory><vcpu>1</vcpu><devices>{device_xml}</devices></domain>"
        );
        let config = DomainConfig::from_xml_str(&wrapper)?;
        let disk = config
            .disks
            .first()
            .ok_or_else(|| VirtError::new(ErrorCode::XmlError, "no <disk> parsed"))?;
        let record = self.host.attach_disk(
            name,
            hypersim::SimDisk {
                target: disk.target.clone(),
                source: disk.source.clone(),
                capacity: hypersim::MiB(disk.capacity_mib),
                bus: disk.bus.clone(),
            },
        )?;
        self.sync_domain_state(name)?;
        Ok(record.into())
    }

    fn detach_device(&self, name: &str, target: &str) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        let record: DomainRecord = self.host.detach_disk(name, target)?.into();
        self.sync_domain_state(name)?;
        Ok(record)
    }

    fn snapshot_domain(&self, name: &str, snapshot: &str) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        Ok(self.host.snapshot_domain(name, snapshot)?.into())
    }

    fn list_snapshots(&self, name: &str) -> VirtResult<Vec<String>> {
        self.ensure_alive()?;
        Ok(self.host.domain(name)?.snapshots)
    }

    fn revert_snapshot(&self, name: &str, snapshot: &str) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        Ok(self.host.revert_snapshot(name, snapshot)?.into())
    }

    fn delete_snapshot(&self, name: &str, snapshot: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self.host.delete_snapshot(name, snapshot)?)
    }

    fn set_autostart(&self, name: &str, autostart: bool) -> VirtResult<()> {
        self.ensure_alive()?;
        self.host.set_autostart(name, autostart)?;
        self.sync_domain_state(name)
    }

    fn dump_domain_xml(&self, name: &str) -> VirtResult<String> {
        self.ensure_alive()?;
        let (info, spec) = self.host.domain_snapshot(name)?;
        let config =
            DomainConfig::from_spec(&spec, self.domain_type(), Uuid::from_bytes(info.uuid));
        Ok(config.to_xml_string())
    }

    // ---- guards ---------------------------------------------------------

    fn crash_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _timer = self.ops.destroy.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let record: DomainRecord = self.host.crash_domain(name)?.into();
        self.sync_domain_state_behind(name);
        self.emit(&record, DomainEventKind::Crashed);
        Ok(record)
    }

    fn guard_set(&self, name: &str, policy: &GuardPolicy) -> VirtResult<()> {
        self.ensure_alive()?;
        // The domain must exist; guards on phantoms would loop forever.
        let record = self.record(name)?;
        // Persist standing policies so they survive daemon restarts.
        // `graceful-stop` is a one-shot command, not a standing policy;
        // re-arming it after a restart would re-kill the domain.
        if !matches!(policy, GuardPolicy::GracefulStop { .. }) {
            if let Some(binding) = &self.store {
                let _span = span::stage(Stage::StateStore);
                let record = GuardRecord {
                    domain: name.to_string(),
                    policy: *policy,
                };
                binding.store.put(
                    ObjectKind::Guard,
                    &binding.driver,
                    name,
                    &record.to_xml_string(),
                )?;
            }
        }
        self.guard.set_policy(name, *policy);
        // Arm-time reconciliation: a guard set against a domain already
        // in the exact state it polices acts now — nobody has to
        // re-crash or re-pause a guest to wake its new guard. A shutoff
        // domain is deliberately left alone: "define, guard, then start
        // when ready" must stay a legal workflow.
        match (policy, record.state) {
            (GuardPolicy::KeepRunning { .. }, DomainState::Crashed) => self.guard.restart_now(name),
            (GuardPolicy::AutoResume, DomainState::Paused) => self.guard.resume_now(name),
            _ => {}
        }
        Ok(())
    }

    fn guard_remove(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        let removed = self.guard.remove_policy(name);
        if let Some(binding) = &self.store {
            binding
                .store
                .remove(ObjectKind::Guard, &binding.driver, name)?;
        }
        if removed {
            Ok(())
        } else {
            Err(VirtError::new(
                ErrorCode::NoDomain,
                format!("domain '{name}' has no guard"),
            ))
        }
    }

    fn guard_list(&self) -> VirtResult<Vec<GuardStatus>> {
        self.ensure_alive()?;
        Ok(self.guard.statuses())
    }

    fn guard_status(&self, name: &str) -> VirtResult<GuardStatus> {
        self.ensure_alive()?;
        self.guard.status(name).ok_or_else(|| {
            VirtError::new(ErrorCode::NoDomain, format!("domain '{name}' has no guard"))
        })
    }

    // ---- migration -------------------------------------------------------

    fn migrate_begin(&self, name: &str) -> VirtResult<String> {
        self.ensure_alive()?;
        if !self.host.personality().capabilities().migration {
            return Err(VirtError::new(
                ErrorCode::NoSupport,
                format!("{} does not support migration", self.domain_type()),
            ));
        }
        let record = self.record(name)?;
        if record.state != crate::driver::DomainState::Running {
            return Err(VirtError::new(
                ErrorCode::OperationInvalid,
                format!("domain '{name}' is not running"),
            ));
        }
        self.dump_domain_xml(name)
    }

    fn migrate_prepare(&self, xml: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        let config = DomainConfig::from_xml_str(xml)?;
        let node = self.node_info()?;
        if self
            .host
            .list_domains()?
            .iter()
            .any(|d| d.name == config.name)
        {
            return Err(VirtError::new(ErrorCode::DomainExists, config.name));
        }
        if config.memory_mib > node.free_memory_mib {
            return Err(VirtError::new(
                ErrorCode::InsufficientResources,
                format!(
                    "incoming domain needs {} MiB, {} MiB free",
                    config.memory_mib, node.free_memory_mib
                ),
            ));
        }
        Ok(())
    }

    fn migrate_perform(
        &self,
        name: &str,
        options: &MigrationOptions,
    ) -> VirtResult<MigrationReport> {
        let _timer = self.ops.migrate.start_timer();
        let _work = span::stage(Stage::DriverWork);
        self.ensure_alive()?;
        let lock_started = std::time::Instant::now();
        let (info, spec) = self.host.domain_snapshot(name)?;
        span::record_span(Stage::LockAcquire, lock_started.elapsed(), 0);
        let record = DomainRecord::from(info);
        let params =
            MigrationParams::new(spec.memory(), spec.dirty_rate(), options.bandwidth_mib_s)
                .downtime_limit(std::time::Duration::from_millis(options.max_downtime_ms))
                .max_iterations(options.max_iterations);
        let outcome = hypersim::migration::simulate_precopy(&params).map_err(VirtError::from)?;

        // Run the transfer as a cancellable job: the pre-copy rounds are
        // charged to the virtual clock in bounded slices so job stats
        // advance and an abort request is observed mid-flight. The slices
        // sum to exactly `outcome.transferred`, the amount the previous
        // single-shot implementation charged.
        let ticket = self.jobs.begin(name, JobKind::Migration)?;
        // One long job span for the whole cancellable transfer; each
        // pre-copy slice below becomes a child event under it.
        let _job_span = span::stage(Stage::Job);
        self.emit(&record, DomainEventKind::JobStarted);
        let total_mib = outcome.transferred.0;
        let precopy_mib: u64 = outcome.rounds.iter().map(|r| r.copied.0).sum();
        let mut processed_mib = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        let mut iterations = 0u32;
        let mut slices: Vec<(u64, std::time::Duration, u32)> = Vec::new();
        for round in &outcome.rounds {
            iterations += 1;
            let copied = round.copied.0;
            let mut left = copied;
            while left > 0 {
                let chunk = left.min(MIGRATION_SLICE_MIB);
                left -= chunk;
                let slice_time = round.duration.mul_f64(chunk as f64 / copied as f64);
                slices.push((chunk, slice_time, iterations));
            }
        }
        // The final stop-and-copy: whatever `transferred` covers beyond
        // the pre-copy rounds, charged as one slice (the guest is paused,
        // so it cannot be subdivided).
        let final_mib = total_mib.saturating_sub(precopy_mib);
        if final_mib > 0 {
            slices.push((final_mib, outcome.downtime, iterations));
        }
        for (chunk, slice_time, iteration) in slices {
            if let Err(err) = self.charge_migration_slice(&record, &ticket, chunk) {
                if err.code() == ErrorCode::OperationAborted {
                    ticket.abort_finish();
                    self.emit(&record, DomainEventKind::JobAborted);
                } else {
                    ticket.fail(&err.to_string());
                    self.emit(&record, DomainEventKind::JobFailed);
                }
                return Err(err);
            }
            processed_mib += chunk;
            elapsed += slice_time;
            // Slice duration on the simulated migration clock — the
            // number the pre-copy math produced, not host wall time.
            span::record_span(Stage::MigrationSlice, slice_time, u64::from(iteration));
            ticket.update(JobProgress {
                elapsed_ms: elapsed.as_millis() as u64,
                total_mib,
                processed_mib,
                remaining_mib: total_mib - processed_mib,
                iterations: iteration,
            });
        }
        ticket.complete();
        self.emit(&record, DomainEventKind::JobCompleted);
        Ok(MigrationReport {
            total_ms: outcome.total_time.as_millis() as u64,
            downtime_ms: outcome.downtime.as_millis() as u64,
            iterations: outcome.iterations(),
            transferred_mib: outcome.transferred.0,
            converged: outcome.converged,
        })
    }

    fn migrate_finish(&self, xml: &str) -> VirtResult<DomainRecord> {
        self.ensure_alive()?;
        let config = DomainConfig::from_xml_str(xml)?;
        // Identity travels with the description: the destination instance
        // keeps the source's UUID, exactly as live migration requires.
        let uuid = config.uuid.map(Uuid::into_bytes);
        let record: DomainRecord = self
            .host
            .import_running_domain(config.to_spec(), uuid)?
            .into();
        self.sync_domain_state(&record.name)?;
        self.emit(&record, DomainEventKind::MigratedIn);
        Ok(record)
    }

    fn migrate_confirm(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        let record = self.record(name)?;
        self.host.forget_migrated_domain(name)?;
        self.sync_domain_state(name)?;
        self.emit(&record, DomainEventKind::MigratedOut);
        Ok(())
    }

    fn migrate_abort(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        // Tear down a domain imported by a finish whose confirm never came.
        if let Ok(record) = self.record(name) {
            if record.state.is_active() {
                self.host.destroy_domain(name)?;
            }
            let _ = self.host.forget_migrated_domain(name);
            self.sync_domain_state(name)?;
        }
        Ok(())
    }

    // ---- jobs & bulk stats -------------------------------------------------

    fn domain_job_stats(&self, name: &str) -> VirtResult<JobStats> {
        self.ensure_alive()?;
        let stats = self.jobs.stats(name);
        if stats.kind == JobKind::None {
            // No job ever ran: validate the domain so typos surface as
            // NoDomain rather than an eternally idle job.
            self.record(name)?;
        }
        Ok(stats)
    }

    fn abort_domain_job(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        self.jobs.abort(name)
    }

    // ---- storage -----------------------------------------------------------

    fn list_pools(&self) -> VirtResult<Vec<String>> {
        self.ensure_alive()?;
        Ok(self.host.list_pools()?)
    }

    fn pool_info(&self, name: &str) -> VirtResult<PoolRecord> {
        self.ensure_alive()?;
        let pool = self.host.pool(name)?;
        Ok(PoolRecord {
            name: pool.name.clone(),
            uuid: Uuid::from_bytes(pool.uuid),
            backend: pool.backend.to_string(),
            capacity_mib: pool.capacity.0,
            allocation_mib: pool.allocation().0,
            active: pool.active,
            volume_count: pool.volume_count() as u32,
        })
    }

    fn define_pool_xml(&self, xml: &str) -> VirtResult<PoolRecord> {
        self.ensure_alive()?;
        let config = PoolConfig::from_xml_str(xml)?;
        self.host.define_pool(config.to_spec())?;
        if let Some(binding) = &self.store {
            binding.store.put(
                ObjectKind::Pool,
                &binding.driver,
                &config.name,
                &config.to_xml_string(),
            )?;
        }
        self.pool_info(&config.name)
    }

    fn start_pool(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self.host.start_pool(name)?)
    }

    fn stop_pool(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self.host.stop_pool(name)?)
    }

    fn undefine_pool(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        self.host.undefine_pool(name)?;
        if let Some(binding) = &self.store {
            binding
                .store
                .remove(ObjectKind::Pool, &binding.driver, name)?;
        }
        Ok(())
    }

    fn list_volumes(&self, pool: &str) -> VirtResult<Vec<String>> {
        self.ensure_alive()?;
        Ok(self.host.pool(pool)?.volume_names())
    }

    fn volume_info(&self, pool: &str, name: &str) -> VirtResult<VolumeRecord> {
        self.ensure_alive()?;
        let pool_obj = self.host.pool(pool)?;
        let vol = pool_obj.volume(name)?;
        Ok(VolumeRecord {
            name: vol.name.clone(),
            pool: pool.to_string(),
            capacity_mib: vol.capacity.0,
            allocation_mib: vol.allocation.0,
            format: vol.format.clone(),
            path: vol.path.clone(),
        })
    }

    fn create_volume_xml(&self, pool: &str, xml: &str) -> VirtResult<VolumeRecord> {
        self.ensure_alive()?;
        let config = VolumeConfig::from_xml_str(xml)?;
        self.host.create_volume(pool, config.to_spec())?;
        self.volume_info(pool, &config.name)
    }

    fn delete_volume(&self, pool: &str, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self.host.delete_volume(pool, name)?)
    }

    fn resize_volume(&self, pool: &str, name: &str, capacity_mib: u64) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self
            .host
            .resize_volume(pool, name, hypersim::MiB(capacity_mib))?)
    }

    fn clone_volume(&self, pool: &str, source: &str, new_name: &str) -> VirtResult<VolumeRecord> {
        self.ensure_alive()?;
        self.host.clone_volume(pool, source, new_name)?;
        self.volume_info(pool, new_name)
    }

    // ---- networks ------------------------------------------------------------

    fn list_networks(&self) -> VirtResult<Vec<String>> {
        self.ensure_alive()?;
        Ok(self.host.list_networks()?)
    }

    fn network_info(&self, name: &str) -> VirtResult<NetworkRecord> {
        self.ensure_alive()?;
        let net = self.host.network(name)?;
        Ok(NetworkRecord {
            name: net.name.clone(),
            uuid: Uuid::from_bytes(net.uuid),
            bridge: net.bridge.clone(),
            forward: net.forward.to_string(),
            active: net.active,
            leases: net
                .leases()
                .iter()
                .map(|l| (l.mac.clone(), l.ip.to_string(), l.domain.clone()))
                .collect(),
        })
    }

    fn define_network_xml(&self, xml: &str) -> VirtResult<NetworkRecord> {
        self.ensure_alive()?;
        let config = NetworkConfig::from_xml_str(xml)?;
        self.host.define_network(config.to_spec())?;
        if let Some(binding) = &self.store {
            binding.store.put(
                ObjectKind::Network,
                &binding.driver,
                &config.name,
                &config.to_xml_string(),
            )?;
        }
        self.network_info(&config.name)
    }

    fn start_network(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self.host.start_network(name)?)
    }

    fn stop_network(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        Ok(self.host.stop_network(name)?)
    }

    fn undefine_network(&self, name: &str) -> VirtResult<()> {
        self.ensure_alive()?;
        self.host.undefine_network(name)?;
        if let Some(binding) = &self.store {
            binding
                .store
                .remove(ObjectKind::Network, &binding.driver, name)?;
        }
        Ok(())
    }

    // ---- events -----------------------------------------------------------------

    fn register_event_callback(&self, callback: EventCallback) -> VirtResult<CallbackId> {
        self.ensure_alive()?;
        Ok(self.events.register(callback))
    }

    fn unregister_event_callback(&self, id: CallbackId) -> VirtResult<()> {
        if self.events.unregister(id) {
            Ok(())
        } else {
            Err(VirtError::new(
                ErrorCode::InvalidArg,
                format!("no callback {id}"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DomainState;
    use hypersim::personality::{LxcLike, QemuLike, XenLike};
    use hypersim::LatencyModel;

    fn connection(
        personality: impl hypersim::personality::Personality + 'static,
    ) -> Arc<EmbeddedConnection> {
        let host = SimHost::builder("embedded-test")
            .personality(personality)
            .latency(LatencyModel::zero())
            .build();
        EmbeddedConnection::new(host, "test:///embedded")
    }

    fn domain_xml(name: &str, memory: u64) -> String {
        DomainConfig::new(name, memory, 1).to_xml_string()
    }

    #[test]
    fn lifecycle_through_the_trait() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 512)).unwrap();
        let started = conn.start_domain("vm").unwrap();
        assert_eq!(started.state, DomainState::Running);
        let paused = conn.suspend_domain("vm").unwrap();
        assert_eq!(paused.state, DomainState::Paused);
        let resumed = conn.resume_domain("vm").unwrap();
        assert_eq!(resumed.state, DomainState::Running);
        let stopped = conn.shutdown_domain("vm").unwrap();
        assert_eq!(stopped.state, DomainState::Shutoff);
        conn.undefine_domain("vm").unwrap();
        assert!(conn.list_domains().unwrap().is_empty());
    }

    #[test]
    fn qemu_lifecycle_goes_through_the_monitor() {
        // The observable contract: identical behavior; the monitor path is
        // exercised by the qemu personality (this is asserted indirectly by
        // balloon which only exists as a monitor command there).
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 512)).unwrap();
        conn.start_domain("vm").unwrap();
        let ballooned = conn.set_domain_memory("vm", 256).unwrap();
        assert_eq!(ballooned.memory_mib, 256);
    }

    #[test]
    fn xen_and_lxc_paths_work_without_monitor() {
        for conn in [connection(XenLike), connection(LxcLike)] {
            conn.define_domain_xml(&domain_xml("vm", 256)).unwrap();
            conn.start_domain("vm").unwrap();
            conn.suspend_domain("vm").unwrap();
            conn.resume_domain("vm").unwrap();
            conn.destroy_domain("vm").unwrap();
        }
    }

    #[test]
    fn dump_xml_round_trips_through_define() {
        let conn = connection(QemuLike);
        let mut config = DomainConfig::new("vm", 1024, 2);
        config.disks.push(crate::xmlfmt::DiskConfig {
            target: "vda".into(),
            source: "/img/a".into(),
            capacity_mib: 100,
            bus: "virtio".into(),
        });
        conn.define_domain_xml(&config.to_xml_string()).unwrap();
        let dumped = conn.dump_domain_xml("vm").unwrap();
        let parsed = DomainConfig::from_xml_str(&dumped).unwrap();
        assert_eq!(parsed.name, "vm");
        assert_eq!(parsed.memory_mib, 1024);
        assert_eq!(parsed.vcpus, 2);
        assert_eq!(parsed.disks.len(), 1);
        assert_eq!(parsed.domain_type, "qemu");
        assert!(parsed.uuid.is_some());
    }

    #[test]
    fn events_fire_for_lifecycle_changes() {
        let conn = connection(QemuLike);
        let (tx, rx) = std::sync::mpsc::channel();
        conn.register_event_callback(Arc::new(move |e: &DomainEvent| {
            tx.send(e.kind).unwrap();
        }))
        .unwrap();
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        conn.start_domain("vm").unwrap();
        conn.destroy_domain("vm").unwrap();
        conn.undefine_domain("vm").unwrap();
        let kinds: Vec<_> = rx.try_iter().collect();
        assert_eq!(
            kinds,
            vec![
                DomainEventKind::Defined,
                DomainEventKind::Started,
                DomainEventKind::Stopped,
                DomainEventKind::Undefined
            ]
        );
    }

    #[test]
    fn unregistering_event_callback() {
        let conn = connection(QemuLike);
        let id = conn.register_event_callback(Arc::new(|_| {})).unwrap();
        conn.unregister_event_callback(id).unwrap();
        let err = conn.unregister_event_callback(id).unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidArg);
    }

    #[test]
    fn closed_connection_rejects_calls() {
        let conn = connection(QemuLike);
        conn.close();
        assert!(!conn.is_alive());
        let err = conn.list_domains().unwrap_err();
        assert_eq!(err.code(), ErrorCode::ConnectInvalid);
    }

    #[test]
    fn attach_and_detach_disk_via_xml() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        let disk_xml =
            "<disk type='file'><source file='/img/extra'/><target dev='vdb' bus='virtio'/></disk>";
        conn.attach_device("vm", disk_xml).unwrap();
        let dumped = conn.dump_domain_xml("vm").unwrap();
        assert!(dumped.contains("vdb"));
        conn.detach_device("vm", "vdb").unwrap();
        let dumped = conn.dump_domain_xml("vm").unwrap();
        assert!(!dumped.contains("vdb"));
    }

    #[test]
    fn attach_rejects_non_disk_devices() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        let err = conn.attach_device("vm", "<tpm model='x'/>").unwrap_err();
        assert_eq!(err.code(), ErrorCode::XmlError);
    }

    #[test]
    fn node_info_tracks_domains() {
        let conn = connection(XenLike);
        conn.define_domain_xml(&domain_xml("a", 512)).unwrap();
        conn.define_domain_xml(&domain_xml("b", 512)).unwrap();
        conn.start_domain("a").unwrap();
        let info = conn.node_info().unwrap();
        assert_eq!(info.active_domains, 1);
        assert_eq!(info.inactive_domains, 1);
        assert_eq!(info.free_memory_mib, info.memory_mib - 512);
        assert_eq!(info.hypervisor, "xen");
    }

    #[test]
    fn capabilities_reflect_personality() {
        assert!(connection(QemuLike)
            .capabilities()
            .unwrap()
            .has_feature("snapshots"));
        assert!(!connection(LxcLike)
            .capabilities()
            .unwrap()
            .has_feature("migration"));
    }

    #[test]
    fn migration_phases_between_two_embedded_connections() {
        let clock = hypersim::SimClock::new();
        let src_host = SimHost::builder("src")
            .clock(clock.clone())
            .latency(LatencyModel::zero())
            .build();
        let dst_host = SimHost::builder("dst")
            .clock(clock)
            .latency(LatencyModel::zero())
            .seed(2)
            .build();
        let src = EmbeddedConnection::new(src_host, "qemu:///src");
        let dst = EmbeddedConnection::new(dst_host, "qemu:///dst");

        src.define_domain_xml(&domain_xml("vm", 1024)).unwrap();
        src.start_domain("vm").unwrap();

        let xml = src.migrate_begin("vm").unwrap();
        dst.migrate_prepare(&xml).unwrap();
        let report = src
            .migrate_perform("vm", &MigrationOptions::default())
            .unwrap();
        assert!(report.converged);
        assert!(report.transferred_mib >= 1024);
        let record = dst.migrate_finish(&xml).unwrap();
        assert_eq!(record.state, DomainState::Running);
        src.migrate_confirm("vm").unwrap();

        assert!(src.list_domains().unwrap().is_empty());
        assert_eq!(dst.list_domains().unwrap().len(), 1);
    }

    #[test]
    fn migrate_begin_requires_running_domain() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        let err = conn.migrate_begin("vm").unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationInvalid);
    }

    #[test]
    fn migrate_begin_rejected_on_lxc() {
        let conn = connection(LxcLike);
        conn.define_domain_xml(&domain_xml("c", 128)).unwrap();
        conn.start_domain("c").unwrap();
        let err = conn.migrate_begin("c").unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoSupport);
    }

    #[test]
    fn migrate_prepare_rejects_duplicates_and_overcommit() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        let err = conn.migrate_prepare(&domain_xml("vm", 128)).unwrap_err();
        assert_eq!(err.code(), ErrorCode::DomainExists);
        let err = conn
            .migrate_prepare(&domain_xml("huge", 999_999))
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::InsufficientResources);
    }

    #[test]
    fn migrate_abort_tears_down_unconfirmed_import() {
        let conn = connection(QemuLike);
        let xml = domain_xml("incoming", 256);
        conn.migrate_finish(&xml).unwrap();
        assert_eq!(conn.list_domains().unwrap().len(), 1);
        conn.migrate_abort("incoming").unwrap();
        assert!(conn.list_domains().unwrap().is_empty());
        // Aborting a non-existent domain is a no-op.
        conn.migrate_abort("ghost").unwrap();
    }

    #[test]
    fn storage_operations_through_the_trait() {
        let conn = connection(QemuLike);
        let pool_xml = PoolConfig::new("images", hypersim::PoolBackend::Dir, 1000).to_xml_string();
        let pool = conn.define_pool_xml(&pool_xml).unwrap();
        assert!(!pool.active);
        conn.start_pool("images").unwrap();
        let vol_xml = VolumeConfig::new("root.img", 100).to_xml_string();
        let vol = conn.create_volume_xml("images", &vol_xml).unwrap();
        assert_eq!(vol.capacity_mib, 100);
        assert_eq!(conn.list_volumes("images").unwrap(), vec!["root.img"]);
        conn.clone_volume("images", "root.img", "copy.img").unwrap();
        conn.resize_volume("images", "copy.img", 200).unwrap();
        assert_eq!(
            conn.volume_info("images", "copy.img").unwrap().capacity_mib,
            200
        );
        conn.delete_volume("images", "root.img").unwrap();
        conn.stop_pool("images").unwrap();
        conn.undefine_pool("images").unwrap();
        assert_eq!(conn.list_pools().unwrap(), vec!["default"]);
    }

    #[test]
    fn network_operations_through_the_trait() {
        let conn = connection(QemuLike);
        let net_xml =
            NetworkConfig::new("lan", std::net::Ipv4Addr::new(10, 9, 0, 0)).to_xml_string();
        let net = conn.define_network_xml(&net_xml).unwrap();
        assert!(!net.active);
        conn.start_network("lan").unwrap();
        assert!(conn.network_info("lan").unwrap().active);
        conn.stop_network("lan").unwrap();
        conn.undefine_network("lan").unwrap();
        assert_eq!(conn.list_networks().unwrap(), vec!["default"]);
    }

    #[test]
    fn lookup_by_id_and_uuid() {
        let conn = connection(QemuLike);
        let defined = conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        conn.start_domain("vm").unwrap();
        let by_id = conn.lookup_domain_by_id(1).unwrap();
        assert_eq!(by_id.name, "vm");
        let by_uuid = conn.lookup_domain_by_uuid(defined.uuid).unwrap();
        assert_eq!(by_uuid.name, "vm");
        assert_eq!(
            conn.lookup_domain_by_name("nope").unwrap_err().code(),
            ErrorCode::NoDomain
        );
    }

    #[test]
    fn snapshots_and_autostart() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        conn.snapshot_domain("vm", "base").unwrap();
        assert_eq!(conn.list_snapshots("vm").unwrap(), vec!["base"]);
        conn.set_autostart("vm", true).unwrap();
        assert!(conn.lookup_domain_by_name("vm").unwrap().autostart);
        assert!(conn.get_autostart("vm").unwrap());
        conn.set_autostart("vm", false).unwrap();
        assert!(!conn.get_autostart("vm").unwrap());
    }

    #[test]
    fn undefine_running_domain_demotes_to_transient() {
        let conn = connection(QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        conn.start_domain("vm").unwrap();
        conn.undefine_domain("vm").unwrap();
        // Still running, but no longer persistent…
        let record = conn.lookup_domain_by_name("vm").unwrap();
        assert_eq!(record.state, DomainState::Running);
        assert!(!record.persistent);
        // …and it vanishes for good when it stops.
        conn.shutdown_domain("vm").unwrap();
        assert_eq!(
            conn.lookup_domain_by_name("vm").unwrap_err().code(),
            ErrorCode::NoDomain
        );
    }

    // ---- persistence & recovery ------------------------------------------

    fn temp_store(tag: &str) -> Arc<StateStore> {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "virt-embedded-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StateStore::open(dir).unwrap()
    }

    fn stored_connection(
        store: &Arc<StateStore>,
        personality: impl hypersim::personality::Personality + 'static,
    ) -> Arc<EmbeddedConnection> {
        let host = SimHost::builder("embedded-store")
            .personality(personality)
            .latency(LatencyModel::zero())
            .build();
        EmbeddedConnection::with_store(
            host,
            "qemu:///system",
            StoreBinding::new(Arc::clone(store), "qemu"),
        )
    }

    #[test]
    fn recovery_restores_definitions_states_and_autostart() {
        let store = temp_store("recover");
        let uuids;
        {
            let conn = stored_connection(&store, QemuLike);
            conn.define_domain_xml(&domain_xml("boot", 128)).unwrap();
            conn.define_domain_xml(&domain_xml("idle", 128)).unwrap();
            conn.define_domain_xml(&domain_xml("busy", 128)).unwrap();
            conn.set_autostart("boot", true).unwrap();
            conn.start_domain("busy").unwrap();
            // A transient domain must leave no trace.
            conn.create_domain_xml(&domain_xml("ghost", 64)).unwrap();
            uuids = (
                conn.lookup_domain_by_name("boot").unwrap().uuid,
                conn.lookup_domain_by_name("busy").unwrap().uuid,
            );
            // The connection (and its host) is dropped without any
            // shutdown: the moral equivalent of SIGKILL.
        }

        let conn = stored_connection(&store, QemuLike);
        assert!(conn.list_domains().unwrap().is_empty());
        let report = conn.recover_from_store().unwrap();
        assert_eq!(report.domains, 3);
        assert_eq!(report.crashed, 1);
        assert_eq!(report.autostarted, 1);
        assert_eq!(report.quarantined, 0);

        let boot = conn.lookup_domain_by_name("boot").unwrap();
        assert_eq!(boot.uuid, uuids.0, "identity survives restart");
        assert!(boot.autostart);
        assert_eq!(boot.state, DomainState::Running);

        // `busy` was running when the daemon died: its guest died with
        // it, so it reports shut off with reason crashed.
        let busy = conn.lookup_domain_by_name("busy").unwrap();
        assert_eq!(busy.uuid, uuids.1);
        assert_eq!(busy.state, DomainState::Crashed);
        assert!(!busy.state.is_active());

        let idle = conn.lookup_domain_by_name("idle").unwrap();
        assert_eq!(idle.state, DomainState::Shutoff);

        assert_eq!(
            conn.lookup_domain_by_name("ghost").unwrap_err().code(),
            ErrorCode::NoDomain
        );
    }

    #[test]
    fn recovery_restores_networks_and_pools() {
        let store = temp_store("netpool");
        {
            let conn = stored_connection(&store, QemuLike);
            let net = NetworkConfig::new("lan", std::net::Ipv4Addr::new(10, 8, 0, 0));
            conn.define_network_xml(&net.to_xml_string()).unwrap();
            let pool = PoolConfig::new("images", hypersim::PoolBackend::Dir, 512);
            conn.define_pool_xml(&pool.to_xml_string()).unwrap();
        }
        let conn = stored_connection(&store, QemuLike);
        let report = conn.recover_from_store().unwrap();
        assert_eq!(report.networks, 1);
        assert_eq!(report.pools, 1);
        assert_eq!(report.recovered(), 2);
        assert!(conn.list_networks().unwrap().contains(&"lan".to_string()));
        assert!(conn.list_pools().unwrap().contains(&"images".to_string()));
    }

    #[test]
    fn recovery_quarantines_corrupt_definitions() {
        let store = temp_store("corrupt");
        {
            let conn = stored_connection(&store, QemuLike);
            conn.define_domain_xml(&domain_xml("good", 128)).unwrap();
            conn.define_domain_xml(&domain_xml("bad", 128)).unwrap();
        }
        // Tear the 'bad' definition mid-byte, as a crash would.
        let path = store.root().join("etc/domains/qemu").join("bad.xml");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let conn = stored_connection(&store, QemuLike);
        let report = conn.recover_from_store().unwrap();
        assert_eq!(report.domains, 1);
        assert_eq!(report.quarantined, 1);
        assert!(conn.lookup_domain_by_name("good").is_ok());
        assert_eq!(
            conn.lookup_domain_by_name("bad").unwrap_err().code(),
            ErrorCode::NoDomain
        );
    }

    #[test]
    fn undefine_and_destroy_sweep_state_files() {
        let store = temp_store("sweep");
        let conn = stored_connection(&store, QemuLike);
        conn.define_domain_xml(&domain_xml("vm", 128)).unwrap();
        let def = store.root().join("etc/domains/qemu/vm.xml");
        let run = store.root().join("run/domains/qemu/vm.xml");
        assert!(def.exists() && run.exists());
        conn.start_domain("vm").unwrap();
        conn.undefine_domain("vm").unwrap();
        assert!(
            !def.exists() && !run.exists(),
            "demoted transient domain must leave no state files"
        );
        conn.destroy_domain("vm").unwrap();
        assert!(conn.list_domains().unwrap().is_empty());
    }
}

//! Virtual network handles.

use std::sync::Arc;

use crate::driver::{HypervisorConnection, NetworkRecord};
use crate::error::VirtResult;

/// A handle to a virtual network.
///
/// Obtained from [`crate::Connect::network_lookup_by_name`] or
/// [`crate::Connect::define_network_xml`].
#[derive(Clone)]
pub struct Network {
    conn: Arc<dyn HypervisorConnection>,
    name: String,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network").field("name", &self.name).finish()
    }
}

impl Network {
    pub(crate) fn new(conn: Arc<dyn HypervisorConnection>, name: String) -> Self {
        Network { conn, name }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A fresh snapshot of the network's state.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoNetwork`] once gone.
    pub fn info(&self) -> VirtResult<NetworkRecord> {
        self.conn.network_info(&self.name)
    }

    /// Whether the network is started.
    ///
    /// # Errors
    ///
    /// As [`Network::info`].
    pub fn is_active(&self) -> VirtResult<bool> {
        Ok(self.info()?.active)
    }

    /// Starts the network.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoNetwork`].
    pub fn start(&self) -> VirtResult<()> {
        self.conn.start_network(&self.name)
    }

    /// Stops the network, releasing all leases.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::NoNetwork`].
    pub fn stop(&self) -> VirtResult<()> {
        self.conn.stop_network(&self.name)
    }

    /// Removes the inactive network's definition.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorCode::OperationInvalid`] while active.
    pub fn undefine(&self) -> VirtResult<()> {
        self.conn.undefine_network(&self.name)
    }

    /// `(mac, ip, domain)` lease triplets.
    ///
    /// # Errors
    ///
    /// As [`Network::info`].
    pub fn dhcp_leases(&self) -> VirtResult<Vec<(String, String, String)>> {
        Ok(self.info()?.leases)
    }
}

#[cfg(test)]
mod tests {

    use crate::conn::Connect;
    use crate::xmlfmt::NetworkConfig;
    use std::net::Ipv4Addr;

    #[test]
    fn network_lifecycle_through_handles() {
        let conn = Connect::builder("test:///default").open().unwrap();
        let net = conn
            .define_network(&NetworkConfig::new("lan", Ipv4Addr::new(10, 7, 0, 0)))
            .unwrap();
        assert_eq!(net.name(), "lan");
        assert!(!net.is_active().unwrap());
        net.start().unwrap();
        assert!(net.is_active().unwrap());
        let info = net.info().unwrap();
        assert_eq!(info.bridge, "virbr-lan");
        assert_eq!(info.forward, "nat");
        assert!(net.dhcp_leases().unwrap().is_empty());
        net.stop().unwrap();
        net.undefine().unwrap();
        assert!(net.info().is_err());
    }

    #[test]
    fn default_network_exists_and_is_active() {
        let conn = Connect::builder("test:///default").open().unwrap();
        assert!(conn
            .list_networks()
            .unwrap()
            .contains(&"default".to_string()));
        let default = conn.network_lookup_by_name("default").unwrap();
        assert!(default.is_active().unwrap());
    }
}

//! The internal driver architecture.
//!
//! This is libvirt's load-bearing design decision: the public API is a
//! thin veneer over a table of driver entry points
//! ([`HypervisorConnection`]), with one implementation per virtualization
//! platform plus the remote driver that tunnels every call to a daemon.
//! Driver selection is by URI scheme, with the remote driver as the
//! fallback for any scheme no client-side driver claims.

use std::sync::Arc;
use std::time::Duration;

use virt_rpc::keepalive::KeepaliveConfig;
use virt_rpc::retry::{BreakerConfig, RetryPolicy};

use crate::capabilities::Capabilities;
use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::event::{CallbackId, EventCallback};
use crate::guard::{GuardPolicy, GuardStatus};
use crate::job::JobStats;
use crate::typedparam::TypedParam;
use crate::uri::ConnectUri;
use crate::uuid::Uuid;

/// Connection options resolved by the connect builder and handed to the
/// winning driver. Every field is optional; `None` means "driver
/// default". Local drivers are free to ignore transport-level options.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    /// Default deadline applied to every RPC call on the connection.
    pub call_deadline: Option<Duration>,
    /// Keepalive probing (overrides any `?keepalive=` URI parameter).
    pub keepalive: Option<KeepaliveConfig>,
    /// Retry policy for idempotent calls after connection failures.
    pub retry: Option<RetryPolicy>,
    /// Whether a dead connection is transparently re-dialed.
    pub reconnect: Option<bool>,
    /// Circuit-breaker tuning for the reconnect path.
    pub breaker: Option<BreakerConfig>,
}

/// Public lifecycle state of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainState {
    /// Defined but not running.
    Shutoff,
    /// Executing.
    Running,
    /// vCPUs paused.
    Paused,
    /// Memory saved to storage.
    Saved,
    /// The guest crashed.
    Crashed,
}

impl DomainState {
    /// `true` for running or paused.
    pub fn is_active(self) -> bool {
        matches!(self, DomainState::Running | DomainState::Paused)
    }

    /// Wire representation.
    pub fn as_u32(self) -> u32 {
        match self {
            DomainState::Shutoff => 0,
            DomainState::Running => 1,
            DomainState::Paused => 2,
            DomainState::Saved => 3,
            DomainState::Crashed => 4,
        }
    }

    /// Decodes a wire value, defaulting unknown values to `Shutoff`.
    pub fn from_u32(v: u32) -> DomainState {
        match v {
            1 => DomainState::Running,
            2 => DomainState::Paused,
            3 => DomainState::Saved,
            4 => DomainState::Crashed,
            _ => DomainState::Shutoff,
        }
    }
}

impl From<hypersim::DomainState> for DomainState {
    fn from(state: hypersim::DomainState) -> Self {
        match state {
            hypersim::DomainState::Shutoff => DomainState::Shutoff,
            hypersim::DomainState::Running => DomainState::Running,
            hypersim::DomainState::Paused => DomainState::Paused,
            hypersim::DomainState::Saved => DomainState::Saved,
            hypersim::DomainState::Crashed => DomainState::Crashed,
        }
    }
}

impl std::fmt::Display for DomainState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DomainState::Shutoff => "shut off",
            DomainState::Running => "running",
            DomainState::Paused => "paused",
            DomainState::Saved => "saved",
            DomainState::Crashed => "crashed",
        };
        f.write_str(s)
    }
}

/// Snapshot of a domain as reported through the driver interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRecord {
    /// Name, unique per host.
    pub name: String,
    /// Stable identifier.
    pub uuid: Uuid,
    /// Hypervisor id while active.
    pub id: Option<u32>,
    /// Lifecycle state.
    pub state: DomainState,
    /// Current memory in MiB.
    pub memory_mib: u64,
    /// Balloon ceiling in MiB.
    pub max_memory_mib: u64,
    /// vCPU count.
    pub vcpus: u32,
    /// Whether the configuration is persisted.
    pub persistent: bool,
    /// Whether a managed-save image exists.
    pub has_managed_save: bool,
    /// Whether the domain starts with the host.
    pub autostart: bool,
    /// Simulated vCPU time consumed, nanoseconds.
    pub cpu_time_ns: u64,
}

impl From<hypersim::DomainInfo> for DomainRecord {
    fn from(info: hypersim::DomainInfo) -> Self {
        DomainRecord {
            name: info.name,
            uuid: Uuid::from_bytes(info.uuid),
            id: info.id,
            state: info.state.into(),
            memory_mib: info.memory.0,
            max_memory_mib: info.max_memory.0,
            vcpus: info.vcpus,
            persistent: info.persistent,
            has_managed_save: info.has_managed_save,
            autostart: info.autostart,
            cpu_time_ns: info.cpu_time_ns,
        }
    }
}

/// Host facts as reported by `virsh nodeinfo`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Host name.
    pub hostname: String,
    /// Hypervisor kind.
    pub hypervisor: String,
    /// Physical CPUs.
    pub cpus: u32,
    /// Physical memory in MiB.
    pub memory_mib: u64,
    /// Unreserved memory in MiB.
    pub free_memory_mib: u64,
    /// Active domain count.
    pub active_domains: u32,
    /// Inactive (defined) domain count.
    pub inactive_domains: u32,
}

/// Snapshot of a storage pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolRecord {
    /// Pool name.
    pub name: String,
    /// Stable identifier.
    pub uuid: Uuid,
    /// Backend kind (`dir`, `logical`, `iscsi`, `netfs`).
    pub backend: String,
    /// Total capacity in MiB.
    pub capacity_mib: u64,
    /// Allocated in MiB.
    pub allocation_mib: u64,
    /// Whether the pool is started.
    pub active: bool,
    /// Number of volumes.
    pub volume_count: u32,
}

/// Snapshot of a storage volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeRecord {
    /// Volume name, unique in its pool.
    pub name: String,
    /// Owning pool.
    pub pool: String,
    /// Logical capacity in MiB.
    pub capacity_mib: u64,
    /// Allocated bytes in MiB.
    pub allocation_mib: u64,
    /// Image format.
    pub format: String,
    /// Backing path.
    pub path: String,
}

/// Snapshot of a virtual network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkRecord {
    /// Network name.
    pub name: String,
    /// Stable identifier.
    pub uuid: Uuid,
    /// Bridge device.
    pub bridge: String,
    /// Forward mode string.
    pub forward: String,
    /// Whether the network is started.
    pub active: bool,
    /// `mac ip domain` triplets of current leases.
    pub leases: Vec<(String, String, String)>,
}

/// Report of a completed live migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// End-to-end duration in milliseconds (simulated time).
    pub total_ms: u64,
    /// Guest downtime in milliseconds (simulated time).
    pub downtime_ms: u64,
    /// Pre-copy iterations performed.
    pub iterations: u32,
    /// Data moved in MiB.
    pub transferred_mib: u64,
    /// Whether pre-copy converged within the downtime budget.
    pub converged: bool,
}

/// One domain's entry in a bulk-stats reply
/// (`virConnectGetAllDomainStats`): the name plus an open-ended
/// typed-parameter list, so new stats never change the record shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainStatsRecord {
    /// Domain name.
    pub name: String,
    /// The stats as typed parameters.
    pub params: Vec<TypedParam>,
}

impl DomainStatsRecord {
    /// Builds the canonical parameter set from a domain record and its
    /// job stats. Shared by every driver that answers bulk stats.
    pub fn compose(domain: &DomainRecord, job: &JobStats) -> Self {
        let mut params = vec![
            TypedParam::uint("state.state", domain.state.as_u32()),
            TypedParam::ullong("cpu.time", domain.cpu_time_ns),
            TypedParam::ullong("balloon.current", domain.memory_mib),
            TypedParam::ullong("balloon.maximum", domain.max_memory_mib),
            TypedParam::uint("vcpu.current", domain.vcpus),
        ];
        if job.kind != crate::job::JobKind::None {
            params.push(TypedParam::string("job.kind", job.kind.to_string()));
            params.push(TypedParam::string("job.state", job.state.to_string()));
            params.push(TypedParam::uint("job.progress", job.progress_percent()));
        }
        DomainStatsRecord {
            name: domain.name.clone(),
            params,
        }
    }
}

/// Tunables of a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOptions {
    /// Link bandwidth in MiB/s.
    pub bandwidth_mib_s: u64,
    /// Downtime budget in milliseconds.
    pub max_downtime_ms: u64,
    /// Pre-copy iteration cap.
    pub max_iterations: u32,
}

impl Default for MigrationOptions {
    fn default() -> Self {
        MigrationOptions {
            bandwidth_mib_s: 1024,
            max_downtime_ms: 300,
            max_iterations: 30,
        }
    }
}

/// The complete driver entry-point table.
///
/// Every public API call maps 1:1 onto one of these methods; the five
/// concrete implementations are the embedded platform drivers
/// (qemu/xen/lxc), the stateless ESX driver, the test driver, and the
/// remote driver. Object-safe by construction so connections are held as
/// `Arc<dyn HypervisorConnection>`.
pub trait HypervisorConnection: Send + Sync + std::fmt::Debug {
    /// The canonical URI of this connection.
    fn uri(&self) -> String;

    /// The managed host's name.
    ///
    /// # Errors
    ///
    /// Driver-specific failures (e.g. host down).
    fn hostname(&self) -> VirtResult<String>;

    /// Host facts.
    ///
    /// # Errors
    ///
    /// Driver-specific failures.
    fn node_info(&self) -> VirtResult<NodeInfo>;

    /// Hypervisor capabilities.
    ///
    /// # Errors
    ///
    /// Driver-specific failures.
    fn capabilities(&self) -> VirtResult<Capabilities>;

    /// Whether the connection is usable.
    fn is_alive(&self) -> bool;

    /// Closes the connection. Idempotent.
    fn close(&self);

    // ---- domains -------------------------------------------------------

    /// All domains (active and defined).
    ///
    /// # Errors
    ///
    /// Driver-specific failures.
    fn list_domains(&self) -> VirtResult<Vec<DomainRecord>>;

    /// Lookup by name.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when absent.
    fn lookup_domain_by_name(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Lookup by active id.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when absent.
    fn lookup_domain_by_id(&self, id: u32) -> VirtResult<DomainRecord>;

    /// Lookup by UUID.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when absent.
    fn lookup_domain_by_uuid(&self, uuid: Uuid) -> VirtResult<DomainRecord>;

    /// Persists a domain from its XML description.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`], [`ErrorCode::DomainExists`].
    fn define_domain_xml(&self, xml: &str) -> VirtResult<DomainRecord>;

    /// Creates and starts a transient domain from XML.
    ///
    /// # Errors
    ///
    /// As define plus start failures.
    fn create_domain_xml(&self, xml: &str) -> VirtResult<DomainRecord>;

    /// Removes a domain's persisted configuration (libvirt's
    /// `virDomainUndefine`). An inactive domain disappears entirely; a
    /// *running* domain keeps executing as transient — its definition is
    /// gone, and it vanishes for good when it stops.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`], [`ErrorCode::OperationInvalid`].
    fn undefine_domain(&self, name: &str) -> VirtResult<()>;

    /// Starts a defined domain.
    ///
    /// # Errors
    ///
    /// Lifecycle and capacity failures.
    fn start_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Graceful shutdown.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    fn shutdown_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Reboot.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    fn reboot_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Hard power-off.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    fn destroy_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Pause vCPUs.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    fn suspend_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Resume vCPUs.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    fn resume_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Managed save to storage.
    ///
    /// # Errors
    ///
    /// Lifecycle failures; [`ErrorCode::NoSupport`] on platforms without
    /// save/restore.
    fn save_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Restore from the managed save image.
    ///
    /// # Errors
    ///
    /// Lifecycle failures.
    fn restore_domain(&self, name: &str) -> VirtResult<DomainRecord>;

    /// Memory ballooning.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] above the ceiling; capacity failures.
    fn set_domain_memory(&self, name: &str, memory_mib: u64) -> VirtResult<DomainRecord>;

    /// vCPU hotplug.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`]; capacity failures.
    fn set_domain_vcpus(&self, name: &str, vcpus: u32) -> VirtResult<DomainRecord>;

    /// Attaches a device described by XML (currently `<disk>`).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`], duplicate targets.
    fn attach_device(&self, name: &str, device_xml: &str) -> VirtResult<DomainRecord>;

    /// Detaches the disk with the given target.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] when no such target.
    fn detach_device(&self, name: &str, target: &str) -> VirtResult<DomainRecord>;

    /// Takes a named snapshot.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSupport`] on platforms without snapshots; duplicate
    /// names.
    fn snapshot_domain(&self, name: &str, snapshot: &str) -> VirtResult<DomainRecord>;

    /// Lists snapshot names.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`].
    fn list_snapshots(&self, name: &str) -> VirtResult<Vec<String>>;

    /// Reverts the domain to a named snapshot (state + memory).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] for unknown snapshots; capacity failures
    /// when reverting to an active snapshot no longer fits.
    fn revert_snapshot(&self, name: &str, snapshot: &str) -> VirtResult<DomainRecord>;

    /// Deletes a named snapshot.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] for unknown snapshots.
    fn delete_snapshot(&self, name: &str, snapshot: &str) -> VirtResult<()>;

    /// Toggles autostart.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`].
    fn set_autostart(&self, name: &str, autostart: bool) -> VirtResult<()>;

    /// Reads the autostart flag. The default derives it from the domain
    /// record; the remote driver overrides this with a dedicated wire
    /// call (`DOMAIN_GET_AUTOSTART`), mirroring libvirt's paired
    /// get/set entry points.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`].
    fn get_autostart(&self, name: &str) -> VirtResult<bool> {
        Ok(self.lookup_domain_by_name(name)?.autostart)
    }

    /// The domain's XML description.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`].
    fn dump_domain_xml(&self, name: &str) -> VirtResult<String>;

    // ---- guards ---------------------------------------------------------

    /// Forces a guest crash (chaos/test tooling): the domain drops to
    /// crashed with no graceful path, as if the guest kernel panicked.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`], [`ErrorCode::OperationInvalid`] when
    /// inactive; [`ErrorCode::NoSupport`] on drivers without crash
    /// injection.
    fn crash_domain(&self, name: &str) -> VirtResult<DomainRecord> {
        let _ = name;
        Err(VirtError::new(
            ErrorCode::NoSupport,
            "crash injection is not supported by this driver",
        ))
    }

    /// Installs (or replaces) an availability guard on a domain.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`]; [`ErrorCode::NoSupport`] on drivers
    /// without a guard engine.
    fn guard_set(&self, name: &str, policy: &GuardPolicy) -> VirtResult<()> {
        let _ = (name, policy);
        Err(VirtError::new(
            ErrorCode::NoSupport,
            "guards are not supported by this driver",
        ))
    }

    /// Removes a domain's guard.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when no guard is defined;
    /// [`ErrorCode::NoSupport`].
    fn guard_remove(&self, name: &str) -> VirtResult<()> {
        let _ = name;
        Err(VirtError::new(
            ErrorCode::NoSupport,
            "guards are not supported by this driver",
        ))
    }

    /// Status of every defined guard, sorted by domain name.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSupport`].
    fn guard_list(&self) -> VirtResult<Vec<GuardStatus>> {
        Err(VirtError::new(
            ErrorCode::NoSupport,
            "guards are not supported by this driver",
        ))
    }

    /// Status of one domain's guard.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when no guard is defined;
    /// [`ErrorCode::NoSupport`].
    fn guard_status(&self, name: &str) -> VirtResult<GuardStatus> {
        let _ = name;
        Err(VirtError::new(
            ErrorCode::NoSupport,
            "guards are not supported by this driver",
        ))
    }

    // ---- migration internals --------------------------------------------

    /// Source side, phase 1: produce the description to ship.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`]; [`ErrorCode::OperationInvalid`] when not
    /// running; [`ErrorCode::NoSupport`].
    fn migrate_begin(&self, name: &str) -> VirtResult<String>;

    /// Destination side, phase 2: validate and reserve.
    ///
    /// # Errors
    ///
    /// Capacity and duplicate failures.
    fn migrate_prepare(&self, xml: &str) -> VirtResult<()>;

    /// Source side, phase 3: transfer memory (pre-copy loop).
    ///
    /// # Errors
    ///
    /// Transfer failures.
    fn migrate_perform(
        &self,
        name: &str,
        options: &MigrationOptions,
    ) -> VirtResult<MigrationReport>;

    /// Destination side, phase 4: start the incoming domain.
    ///
    /// # Errors
    ///
    /// Capacity/duplicate failures (rolls the reservation back).
    fn migrate_finish(&self, xml: &str) -> VirtResult<DomainRecord>;

    /// Source side, phase 5: forget the migrated-away domain.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`].
    fn migrate_confirm(&self, name: &str) -> VirtResult<()>;

    /// Destination side, abort: release the prepare-phase reservation.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoDomain`] when nothing was reserved.
    fn migrate_abort(&self, name: &str) -> VirtResult<()>;

    // ---- jobs & bulk stats -----------------------------------------------

    /// Current (or most recent) job stats of a domain. Drivers that run
    /// no background jobs report the idle default.
    ///
    /// # Errors
    ///
    /// Driver-specific failures.
    fn domain_job_stats(&self, name: &str) -> VirtResult<JobStats> {
        let _ = name;
        Ok(JobStats::default())
    }

    /// Requests cancellation of the running job on a domain.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationInvalid`] when no job is running (always,
    /// for drivers that run no background jobs).
    fn abort_domain_job(&self, name: &str) -> VirtResult<()> {
        Err(VirtError::new(
            ErrorCode::OperationInvalid,
            format!("domain '{name}' has no active job"),
        ))
    }

    /// Stats of every domain in one call. The default composes records
    /// from [`HypervisorConnection::list_domains`] and per-domain job
    /// stats; the remote driver overrides it with a single round-trip.
    ///
    /// # Errors
    ///
    /// Driver-specific failures.
    fn get_all_domain_stats(&self) -> VirtResult<Vec<DomainStatsRecord>> {
        let mut records = Vec::new();
        for domain in self.list_domains()? {
            let job = self.domain_job_stats(&domain.name).unwrap_or_default();
            records.push(DomainStatsRecord::compose(&domain, &job));
        }
        Ok(records)
    }

    // ---- storage ---------------------------------------------------------

    /// All pool names.
    ///
    /// # Errors
    ///
    /// Driver failures.
    fn list_pools(&self) -> VirtResult<Vec<String>>;

    /// Pool facts.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoStoragePool`].
    fn pool_info(&self, name: &str) -> VirtResult<PoolRecord>;

    /// Defines a pool from XML.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::StorageExists`], [`ErrorCode::XmlError`].
    fn define_pool_xml(&self, xml: &str) -> VirtResult<PoolRecord>;

    /// Starts a pool.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoStoragePool`].
    fn start_pool(&self, name: &str) -> VirtResult<()>;

    /// Stops a pool.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoStoragePool`].
    fn stop_pool(&self, name: &str) -> VirtResult<()>;

    /// Removes an inactive pool.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationInvalid`] when active.
    fn undefine_pool(&self, name: &str) -> VirtResult<()>;

    /// Volume names within a pool.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoStoragePool`].
    fn list_volumes(&self, pool: &str) -> VirtResult<Vec<String>>;

    /// Volume facts.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoStorageVol`].
    fn volume_info(&self, pool: &str, name: &str) -> VirtResult<VolumeRecord>;

    /// Creates a volume from XML.
    ///
    /// # Errors
    ///
    /// Capacity and duplicate failures.
    fn create_volume_xml(&self, pool: &str, xml: &str) -> VirtResult<VolumeRecord>;

    /// Deletes a volume.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoStorageVol`].
    fn delete_volume(&self, pool: &str, name: &str) -> VirtResult<()>;

    /// Grows a volume.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] on shrink; capacity failures.
    fn resize_volume(&self, pool: &str, name: &str, capacity_mib: u64) -> VirtResult<()>;

    /// Clones a volume within its pool.
    ///
    /// # Errors
    ///
    /// Duplicate and capacity failures.
    fn clone_volume(&self, pool: &str, source: &str, new_name: &str) -> VirtResult<VolumeRecord>;

    // ---- networks ----------------------------------------------------------

    /// All network names.
    ///
    /// # Errors
    ///
    /// Driver failures.
    fn list_networks(&self) -> VirtResult<Vec<String>>;

    /// Network facts.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoNetwork`].
    fn network_info(&self, name: &str) -> VirtResult<NetworkRecord>;

    /// Defines a network from XML.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NetworkExists`], [`ErrorCode::XmlError`].
    fn define_network_xml(&self, xml: &str) -> VirtResult<NetworkRecord>;

    /// Starts a network.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoNetwork`].
    fn start_network(&self, name: &str) -> VirtResult<()>;

    /// Stops a network.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoNetwork`].
    fn stop_network(&self, name: &str) -> VirtResult<()>;

    /// Removes an inactive network.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationInvalid`] when active.
    fn undefine_network(&self, name: &str) -> VirtResult<()>;

    // ---- events -------------------------------------------------------------

    /// Registers a lifecycle-event callback.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSupport`] on drivers without event support.
    fn register_event_callback(&self, callback: EventCallback) -> VirtResult<CallbackId>;

    /// Removes a previously registered callback.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] for unknown ids.
    fn unregister_event_callback(&self, id: CallbackId) -> VirtResult<()>;
}

/// A client-side driver: claims URIs and opens connections.
pub trait HypervisorDriver: Send + Sync + std::fmt::Debug {
    /// A short name for diagnostics (`test`, `esx`, `remote`, ...).
    fn name(&self) -> &'static str;

    /// Whether this driver claims the URI.
    fn probe(&self, uri: &ConnectUri) -> bool;

    /// Opens a connection.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoConnect`] and driver-specific failures.
    fn open(&self, uri: &ConnectUri) -> VirtResult<Arc<dyn HypervisorConnection>>;

    /// Opens a connection with explicit options. The default
    /// implementation ignores the options, which is correct for local
    /// drivers with no transport to configure.
    ///
    /// # Errors
    ///
    /// As [`HypervisorDriver::open`].
    fn open_with_options(
        &self,
        uri: &ConnectUri,
        options: &OpenOptions,
    ) -> VirtResult<Arc<dyn HypervisorConnection>> {
        let _ = options;
        self.open(uri)
    }
}

/// An ordered set of drivers with libvirt's resolution rule: the first
/// driver that probes positive wins; otherwise the fallback (the remote
/// driver) is consulted.
pub struct DriverRegistry {
    drivers: Vec<Arc<dyn HypervisorDriver>>,
    fallback: Option<Arc<dyn HypervisorDriver>>,
}

impl std::fmt::Debug for DriverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.drivers.iter().map(|d| d.name()).collect();
        f.debug_struct("DriverRegistry")
            .field("drivers", &names)
            .field("fallback", &self.fallback.as_ref().map(|d| d.name()))
            .finish()
    }
}

impl DriverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DriverRegistry {
            drivers: Vec::new(),
            fallback: None,
        }
    }

    /// Appends a driver.
    pub fn register(&mut self, driver: Arc<dyn HypervisorDriver>) {
        self.drivers.push(driver);
    }

    /// Sets the fallback driver for unclaimed schemes.
    pub fn set_fallback(&mut self, driver: Arc<dyn HypervisorDriver>) {
        self.fallback = Some(driver);
    }

    /// Resolves a URI and opens a connection.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoConnect`] when no driver claims the URI and no
    /// fallback is set; otherwise the winning driver's errors.
    pub fn open(&self, uri: &ConnectUri) -> VirtResult<Arc<dyn HypervisorConnection>> {
        self.open_with_options(uri, &OpenOptions::default())
    }

    /// Resolves a URI and opens a connection with explicit options.
    ///
    /// # Errors
    ///
    /// As [`DriverRegistry::open`].
    pub fn open_with_options(
        &self,
        uri: &ConnectUri,
        options: &OpenOptions,
    ) -> VirtResult<Arc<dyn HypervisorConnection>> {
        for driver in &self.drivers {
            if driver.probe(uri) {
                return driver.open_with_options(uri, options);
            }
        }
        match &self.fallback {
            Some(fallback) => fallback.open_with_options(uri, options),
            None => Err(VirtError::new(
                ErrorCode::NoConnect,
                format!("no driver for uri '{uri}'"),
            )),
        }
    }
}

impl Default for DriverRegistry {
    fn default() -> Self {
        DriverRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_state_wire_round_trip() {
        for state in [
            DomainState::Shutoff,
            DomainState::Running,
            DomainState::Paused,
            DomainState::Saved,
            DomainState::Crashed,
        ] {
            assert_eq!(DomainState::from_u32(state.as_u32()), state);
        }
        assert_eq!(DomainState::from_u32(77), DomainState::Shutoff);
    }

    #[test]
    fn domain_state_from_hypersim() {
        assert_eq!(
            DomainState::from(hypersim::DomainState::Running),
            DomainState::Running
        );
        assert!(DomainState::Paused.is_active());
        assert!(!DomainState::Saved.is_active());
        assert_eq!(DomainState::Running.to_string(), "running");
    }

    #[test]
    fn record_from_hypersim_info() {
        let host = hypersim::SimHost::builder("h")
            .latency(hypersim::LatencyModel::zero())
            .build();
        host.define_domain(hypersim::DomainSpec::new("vm").memory_mib(1024).vcpus(2))
            .unwrap();
        let info = host.domain("vm").unwrap();
        let record: DomainRecord = info.into();
        assert_eq!(record.name, "vm");
        assert_eq!(record.memory_mib, 1024);
        assert_eq!(record.vcpus, 2);
        assert_eq!(record.state, DomainState::Shutoff);
        assert!(record.persistent);
    }

    #[test]
    fn migration_options_defaults() {
        let opts = MigrationOptions::default();
        assert_eq!(opts.bandwidth_mib_s, 1024);
        assert_eq!(opts.max_downtime_ms, 300);
        assert_eq!(opts.max_iterations, 30);
    }

    #[derive(Debug)]
    struct DummyDriver {
        scheme: &'static str,
    }

    impl HypervisorDriver for DummyDriver {
        fn name(&self) -> &'static str {
            self.scheme
        }

        fn probe(&self, uri: &ConnectUri) -> bool {
            uri.driver() == self.scheme && uri.transport().is_none() && uri.is_local()
        }

        fn open(&self, _uri: &ConnectUri) -> VirtResult<Arc<dyn HypervisorConnection>> {
            Err(VirtError::new(
                ErrorCode::NoConnect,
                format!("dummy {}", self.scheme),
            ))
        }
    }

    #[test]
    fn registry_resolution_order_and_fallback() {
        let mut registry = DriverRegistry::new();
        registry.register(Arc::new(DummyDriver { scheme: "test" }));
        registry.set_fallback(Arc::new(DummyDriver { scheme: "remote" }));

        let uri: ConnectUri = "test:///default".parse().unwrap();
        let err = registry.open(&uri).unwrap_err();
        assert!(err.message().contains("dummy test"));

        // Unclaimed scheme falls through to the fallback.
        let uri: ConnectUri = "qemu:///system".parse().unwrap();
        let err = registry.open(&uri).unwrap_err();
        assert!(err.message().contains("dummy remote"));

        // A transport suffix defeats the local-only probe, also fallback.
        let uri: ConnectUri = "test+tcp://h/default".parse().unwrap();
        let err = registry.open(&uri).unwrap_err();
        assert!(err.message().contains("dummy remote"));
    }

    #[test]
    fn registry_without_fallback_reports_no_connect() {
        let registry = DriverRegistry::new();
        let uri: ConnectUri = "qemu:///system".parse().unwrap();
        let err = registry.open(&uri).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }
}

//! The simulated "network" connecting drivers to hosts and daemons.
//!
//! In a real deployment, an `esx://host/` URI reaches a physical ESX
//! server over the network and a `qemu+tcp://host/system` URI reaches a
//! daemon's TCP socket. In this reproduction those endpoints are
//! in-process objects, so a process-wide registry stands in for DNS + the
//! wire: tests and benchmarks register [`SimHost`]s (direct hypervisor
//! endpoints, used by the stateless ESX driver) and daemon connectors
//! (used by the remote driver's `+memory` transport) under host names.
//!
//! Unix/TCP remote transports bypass this registry entirely and use real
//! sockets.

use std::collections::HashMap;
use std::sync::OnceLock;

use hypersim::SimHost;
use parking_lot::Mutex;
use virt_rpc::transport::MemoryConnector;

use crate::error::{ErrorCode, VirtError, VirtResult};

struct Testbed {
    hosts: HashMap<String, SimHost>,
    daemons: HashMap<String, MemoryConnector>,
}

fn testbed() -> &'static Mutex<Testbed> {
    static TESTBED: OnceLock<Mutex<Testbed>> = OnceLock::new();
    TESTBED.get_or_init(|| {
        Mutex::new(Testbed {
            hosts: HashMap::new(),
            daemons: HashMap::new(),
        })
    })
}

/// Registers a direct hypervisor endpoint under `name` (the host part of
/// e.g. `esx://name/`). Replaces any previous registration.
pub fn register_host(name: impl Into<String>, host: SimHost) {
    testbed().lock().hosts.insert(name.into(), host);
}

/// Resolves a direct hypervisor endpoint.
///
/// # Errors
///
/// [`ErrorCode::NoConnect`] when nothing is registered under `name`.
pub fn lookup_host(name: &str) -> VirtResult<SimHost> {
    testbed()
        .lock()
        .hosts
        .get(name)
        .cloned()
        .ok_or_else(|| VirtError::new(ErrorCode::NoConnect, format!("unknown host '{name}'")))
}

/// Removes a host registration.
pub fn unregister_host(name: &str) {
    testbed().lock().hosts.remove(name);
}

/// Registers a daemon's in-memory connector under `name` (the host part
/// of e.g. `qemu+memory://name/system`). Replaces any previous
/// registration.
pub fn register_daemon(name: impl Into<String>, connector: MemoryConnector) {
    testbed().lock().daemons.insert(name.into(), connector);
}

/// Resolves a daemon connector.
///
/// # Errors
///
/// [`ErrorCode::NoConnect`] when nothing is registered under `name`.
pub fn lookup_daemon(name: &str) -> VirtResult<MemoryConnector> {
    testbed()
        .lock()
        .daemons
        .get(name)
        .cloned()
        .ok_or_else(|| VirtError::new(ErrorCode::NoConnect, format!("unknown daemon '{name}'")))
}

/// Removes a daemon registration.
pub fn unregister_daemon(name: &str) {
    testbed().lock().daemons.remove(name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersim::LatencyModel;

    #[test]
    fn host_register_lookup_unregister() {
        let host = SimHost::builder("tb-host-1")
            .latency(LatencyModel::zero())
            .build();
        register_host("tb-host-1", host);
        let found = lookup_host("tb-host-1").unwrap();
        assert_eq!(found.name(), "tb-host-1");
        unregister_host("tb-host-1");
        let err = lookup_host("tb-host-1").unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }

    #[test]
    fn unknown_names_fail() {
        assert!(lookup_host("never-registered").is_err());
        assert!(lookup_daemon("never-registered").is_err());
    }

    #[test]
    fn daemon_register_lookup() {
        let (_listener, connector) = virt_rpc::transport::memory_listener();
        register_daemon("tb-daemon-1", connector);
        assert!(lookup_daemon("tb-daemon-1").is_ok());
        unregister_daemon("tb-daemon-1");
        assert!(lookup_daemon("tb-daemon-1").is_err());
    }

    #[test]
    fn registration_replaces_previous() {
        let a = SimHost::builder("a").latency(LatencyModel::zero()).build();
        let b = SimHost::builder("b").latency(LatencyModel::zero()).build();
        register_host("tb-host-2", a);
        register_host("tb-host-2", b);
        assert_eq!(lookup_host("tb-host-2").unwrap().name(), "b");
        unregister_host("tb-host-2");
    }
}

//! Crash-safe on-disk state store for persistent object definitions and
//! live-status records.
//!
//! Reproduces libvirt's `/etc/libvirt` + `/run/libvirt` split: object
//! *definitions* (domain, network, pool XML) live under `etc/`, while
//! volatile *status* records — which domains are running, autostart
//! markers, managed-save flags — live under `run/`. The daemon can be
//! SIGKILLed at any instant and still reconstruct its world at the next
//! boot from these files alone; that is the paper's "non-intrusive"
//! property (the management layer can die without taking guests with it).
//!
//! ## Layout
//!
//! ```text
//! <root>/etc/domains/<driver>/<name>.xml     persistent definitions
//! <root>/etc/networks/<driver>/<name>.xml
//! <root>/etc/pools/<driver>/<name>.xml
//! <root>/run/domains/<driver>/<name>.xml     live-status records
//! <root>/quarantine/                         corrupt files, moved aside
//! ```
//!
//! ## Durability discipline
//!
//! Every write is *atomic and durable*: the payload goes to a unique
//! temp file in the target directory, the file is fsynced, renamed over
//! the destination, and the directory is fsynced so the rename itself
//! survives a power cut. A reader therefore sees either the previous
//! committed version or the new one — never a torn mixture.
//!
//! Every read is *validated*: files carry a header line with the payload
//! length and an FNV-1a checksum. A file that fails validation (torn
//! write from a crashed kernel, bit rot, truncation) is moved to
//! `quarantine/` and counted — never parsed, never a panic.
//!
//! ## Fault injection
//!
//! [`StateStore::inject_fault`] arms a deterministic fault at the Nth
//! subsequent write: either a clean I/O error before any data moves
//! ([`StoreFault::FailWrite`], the previous version stays committed) or a
//! torn write renamed into place ([`StoreFault::TornWrite`], simulating
//! the pathological crash the checksum exists to catch). Recovery paths
//! are testable without real power cuts.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::uuid::Uuid;
use hypersim::DomainState;
use virt_xml::Element;

/// Magic prefix of the header line; bump the version on format changes.
const HEADER_MAGIC: &str = "#virtstate v1";

/// The kinds of object a store holds, each with its own directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// Persistent domain definition (`etc/domains`).
    Domain,
    /// Persistent network definition (`etc/networks`).
    Network,
    /// Persistent pool definition (`etc/pools`).
    Pool,
    /// Volatile domain status record (`run/domains`).
    DomainStatus,
    /// Persistent guard policy record (`etc/guards`).
    Guard,
}

impl ObjectKind {
    fn rel_dir(self) -> &'static str {
        match self {
            ObjectKind::Domain => "etc/domains",
            ObjectKind::Network => "etc/networks",
            ObjectKind::Pool => "etc/pools",
            ObjectKind::DomainStatus => "run/domains",
            ObjectKind::Guard => "etc/guards",
        }
    }
}

/// A deterministic injected fault, armed via [`StateStore::inject_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The write fails cleanly before any byte reaches the destination:
    /// the previous committed version stays in place.
    FailWrite,
    /// Half the payload is written and renamed into place — the torn
    /// file a crashed kernel or lying disk can leave behind. The next
    /// validated read must quarantine it.
    TornWrite,
}

struct ArmedFault {
    kind: StoreFault,
    /// Fires when the write counter reaches this sequence number.
    at_write: u64,
}

/// Crash-safe store rooted at one directory. Cheap to share via `Arc`.
pub struct StateStore {
    root: PathBuf,
    /// Serializes writers so concurrent updates of one object cannot
    /// interleave (each write is also internally atomic via rename).
    write_lock: Mutex<()>,
    /// Monotone write counter driving deterministic fault injection.
    writes: AtomicU64,
    fault: Mutex<Option<ArmedFault>>,
    quarantined: AtomicU64,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateStore")
            .field("root", &self.root)
            .field("writes", &self.writes.load(Ordering::Relaxed))
            .field("quarantined", &self.quarantined.load(Ordering::Relaxed))
            .finish()
    }
}

fn io_err(context: &str, err: std::io::Error) -> VirtError {
    VirtError::new(
        ErrorCode::OperationFailed,
        format!("state store: {context}: {err}"),
    )
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to detect torn
/// writes (this is corruption *detection*, not an integrity MAC).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl StateStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] when the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> VirtResult<Arc<StateStore>> {
        let root = root.into();
        for kind in [
            ObjectKind::Domain,
            ObjectKind::Network,
            ObjectKind::Pool,
            ObjectKind::DomainStatus,
            ObjectKind::Guard,
        ] {
            fs::create_dir_all(root.join(kind.rel_dir()))
                .map_err(|e| io_err("create layout", e))?;
        }
        fs::create_dir_all(root.join("quarantine")).map_err(|e| io_err("create layout", e))?;
        Ok(Arc::new(StateStore {
            root,
            write_lock: Mutex::new(()),
            writes: AtomicU64::new(0),
            fault: Mutex::new(None),
            quarantined: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Arms a deterministic fault: the `nth` write counted from now
    /// (1-based — `1` means the very next write) experiences `kind`.
    pub fn inject_fault(&self, kind: StoreFault, nth: u64) {
        let at_write = self.writes.load(Ordering::Relaxed) + nth;
        *self.fault.lock() = Some(ArmedFault { kind, at_write });
    }

    /// Files moved to quarantine since the store opened.
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Writes that failed (real I/O errors and injected ones).
    pub fn write_error_total(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn dir(&self, kind: ObjectKind, driver: &str) -> PathBuf {
        self.root.join(kind.rel_dir()).join(driver)
    }

    fn file(&self, kind: ObjectKind, driver: &str, name: &str) -> PathBuf {
        self.dir(kind, driver).join(format!("{name}.xml"))
    }

    /// Checks the armed fault against this write's sequence number.
    fn take_fault(&self, seq: u64) -> Option<StoreFault> {
        let mut slot = self.fault.lock();
        match &*slot {
            Some(armed) if seq >= armed.at_write => slot.take().map(|a| a.kind),
            _ => None,
        }
    }

    /// Commits `payload` for `name`, atomically and durably.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] on I/O failure (including injected
    /// faults). After an error the previously committed version — if any
    /// — is still served, except for an injected [`StoreFault::TornWrite`]
    /// which deliberately leaves a corrupt file for validation to catch.
    pub fn put(&self, kind: ObjectKind, driver: &str, name: &str, payload: &str) -> VirtResult<()> {
        let _guard = self.write_lock.lock();
        let seq = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let fault = self.take_fault(seq);

        let body = payload.as_bytes();
        let header = format!(
            "{HEADER_MAGIC} fnv={:016x} len={}\n",
            fnv1a(body),
            body.len()
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(body);
        if let Some(StoreFault::TornWrite) = fault {
            // Simulate the crash the format defends against: a prefix of
            // the record lands in the final location.
            bytes.truncate(bytes.len() / 2);
        }

        let result = (|| -> std::io::Result<()> {
            let dir = self.dir(kind, driver);
            fs::create_dir_all(&dir)?;
            if let Some(StoreFault::FailWrite) = fault {
                return Err(std::io::Error::other("injected write failure"));
            }
            let tmp = dir.join(format!(".{name}.tmp{seq}"));
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            drop(f);
            let dest = self.file(kind, driver, name);
            if let Err(e) = fs::rename(&tmp, &dest) {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
            // The rename is only durable once the directory entry is.
            if let Ok(d) = File::open(&dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                if let Some(StoreFault::TornWrite) = fault {
                    // The torn bytes are in place; surface the "crash".
                    self.write_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(VirtError::new(
                        ErrorCode::OperationFailed,
                        "state store: injected torn write",
                    ));
                }
                Ok(())
            }
            Err(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                Err(io_err(&format!("write {name}"), e))
            }
        }
    }

    /// Removes `name`'s committed file. Missing files are fine — removal
    /// is idempotent.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] on I/O failure other than absence.
    pub fn remove(&self, kind: ObjectKind, driver: &str, name: &str) -> VirtResult<()> {
        let _guard = self.write_lock.lock();
        match fs::remove_file(self.file(kind, driver, name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&format!("remove {name}"), e)),
        }
    }

    /// Reads and validates one committed payload. `Ok(None)` when the
    /// file does not exist; a file failing validation is quarantined and
    /// reported as absent.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] on I/O failure other than absence.
    pub fn get(&self, kind: ObjectKind, driver: &str, name: &str) -> VirtResult<Option<String>> {
        let path = self.file(kind, driver, name);
        match fs::read(&path) {
            Ok(bytes) => match validate(&bytes) {
                Some(payload) => Ok(Some(payload)),
                None => {
                    self.quarantine_path(&path);
                    Ok(None)
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(&format!("read {name}"), e)),
        }
    }

    /// Loads every committed object of `kind` for `driver`, sorted by
    /// name. Corrupt files are quarantined (and counted), not returned —
    /// a torn write can cost at most the object it was updating, never
    /// the daemon's boot.
    pub fn load_all(&self, kind: ObjectKind, driver: &str) -> Vec<(String, String)> {
        let dir = self.dir(kind, driver);
        let Ok(entries) = fs::read_dir(&dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some(ext) = path.extension().and_then(|s| s.to_str()) else {
                continue;
            };
            if ext != "xml" || stem.starts_with('.') {
                continue; // temp files and strays
            }
            match fs::read(&path) {
                Ok(bytes) => match validate(&bytes) {
                    Some(payload) => out.push((stem.to_string(), payload)),
                    None => self.quarantine_path(&path),
                },
                Err(_) => self.quarantine_path(&path),
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Moves a file that failed validation out of the store, preserving
    /// it for inspection under `quarantine/`.
    pub fn quarantine(&self, kind: ObjectKind, driver: &str, name: &str) {
        self.quarantine_path(&self.file(kind, driver, name));
    }

    fn quarantine_path(&self, path: &Path) {
        let n = self.quarantined.fetch_add(1, Ordering::Relaxed);
        let base = path
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("corrupt");
        let dest = self.root.join("quarantine").join(format!("{n}-{base}"));
        if fs::rename(path, &dest).is_err() {
            // Cross-device or racing writer: removal still protects boot.
            let _ = fs::remove_file(path);
        }
    }
}

/// Validates a raw file: header magic, length, checksum. Returns the
/// payload on success.
fn validate(bytes: &[u8]) -> Option<String> {
    let newline = bytes.iter().position(|b| *b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let rest = header.strip_prefix(HEADER_MAGIC)?.trim();
    let mut fnv = None;
    let mut len = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("fnv=") {
            fnv = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = field.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        }
    }
    let (expected_fnv, expected_len) = (fnv?, len?);
    let body = &bytes[newline + 1..];
    if body.len() != expected_len || fnv1a(body) != expected_fnv {
        return None;
    }
    String::from_utf8(body.to_vec()).ok()
}

/// Volatile per-domain status record — what `run/` remembers about a
/// domain between daemon lives: whether it was running, its identity, and
/// the autostart marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainStatus {
    /// Domain name (matches the definition file's name).
    pub name: String,
    /// Stable identity, preserved across daemon restarts.
    pub uuid: Uuid,
    /// Lifecycle state at the last committed update.
    pub state: DomainState,
    /// Start-at-daemon-boot marker.
    pub autostart: bool,
    /// Whether a managed-save image exists.
    pub has_managed_save: bool,
}

fn state_str(state: DomainState) -> &'static str {
    match state {
        DomainState::Shutoff => "shutoff",
        DomainState::Running => "running",
        DomainState::Paused => "paused",
        DomainState::Saved => "saved",
        DomainState::Crashed => "crashed",
    }
}

fn state_from_str(s: &str) -> Option<DomainState> {
    Some(match s {
        "shutoff" => DomainState::Shutoff,
        "running" => DomainState::Running,
        "paused" => DomainState::Paused,
        "saved" => DomainState::Saved,
        "crashed" => DomainState::Crashed,
        _ => return None,
    })
}

impl DomainStatus {
    /// Serializes to the status-record XML document.
    pub fn to_xml_string(&self) -> String {
        let mut el = Element::new("domstatus");
        el.set_attr("state", state_str(self.state));
        el.set_attr("autostart", if self.autostart { "1" } else { "0" });
        el.set_attr(
            "managed_save",
            if self.has_managed_save { "1" } else { "0" },
        );
        el.push_child(Element::with_text("name", self.name.clone()));
        el.push_child(Element::with_text("uuid", self.uuid.to_string()));
        el.to_pretty_string()
    }

    /// Parses a status-record document (schema validation: unknown or
    /// missing fields are errors, so a corrupt-but-checksummed file still
    /// cannot smuggle garbage into recovery).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on any malformed document.
    pub fn from_xml_str(xml: &str) -> VirtResult<DomainStatus> {
        let bad =
            |what: &str| VirtError::new(ErrorCode::XmlError, format!("domstatus: invalid {what}"));
        let el = Element::parse(xml)
            .map_err(|e| VirtError::new(ErrorCode::XmlError, format!("domstatus: {e}")))?;
        if el.name() != "domstatus" {
            return Err(bad("root element"));
        }
        let name = el
            .child_text("name")
            .ok_or_else(|| bad("name"))?
            .to_string();
        let uuid: Uuid = el
            .child_text("uuid")
            .ok_or_else(|| bad("uuid"))?
            .parse()
            .map_err(|_| bad("uuid"))?;
        let state = el
            .attr("state")
            .and_then(state_from_str)
            .ok_or_else(|| bad("state"))?;
        let flag = |attr: &str| match el.attr(attr) {
            Some("1") => Ok(true),
            Some("0") => Ok(false),
            _ => Err(bad(attr)),
        };
        Ok(DomainStatus {
            name,
            uuid,
            state,
            autostart: flag("autostart")?,
            has_managed_save: flag("managed_save")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Arc<StateStore> {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "virt-statestore-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        StateStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip_and_replace() {
        let store = temp_store("rt");
        store
            .put(ObjectKind::Domain, "qemu", "web", "<domain>v1</domain>")
            .unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("<domain>v1</domain>".to_string())
        );
        store
            .put(ObjectKind::Domain, "qemu", "web", "<domain>v2</domain>")
            .unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("<domain>v2</domain>".to_string())
        );
        let all = store.load_all(ObjectKind::Domain, "qemu");
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "web");
    }

    #[test]
    fn kinds_and_drivers_are_isolated() {
        let store = temp_store("iso");
        store
            .put(ObjectKind::Domain, "qemu", "a", "qemu-a")
            .unwrap();
        store.put(ObjectKind::Domain, "xen", "a", "xen-a").unwrap();
        store
            .put(ObjectKind::Network, "qemu", "a", "net-a")
            .unwrap();
        assert_eq!(store.load_all(ObjectKind::Domain, "qemu").len(), 1);
        assert_eq!(
            store.get(ObjectKind::Domain, "xen", "a").unwrap().unwrap(),
            "xen-a"
        );
        assert_eq!(
            store
                .get(ObjectKind::Network, "qemu", "a")
                .unwrap()
                .unwrap(),
            "net-a"
        );
        assert_eq!(store.get(ObjectKind::Pool, "qemu", "a").unwrap(), None);
    }

    #[test]
    fn remove_is_idempotent() {
        let store = temp_store("rm");
        store.put(ObjectKind::Domain, "qemu", "web", "x").unwrap();
        store.remove(ObjectKind::Domain, "qemu", "web").unwrap();
        store.remove(ObjectKind::Domain, "qemu", "web").unwrap();
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
    }

    #[test]
    fn injected_write_failure_preserves_previous_version() {
        let store = temp_store("fail");
        store.put(ObjectKind::Domain, "qemu", "web", "v1").unwrap();
        store.inject_fault(StoreFault::FailWrite, 1);
        let err = store
            .put(ObjectKind::Domain, "qemu", "web", "v2")
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationFailed);
        assert_eq!(store.write_error_total(), 1);
        // The previous committed version is fully intact.
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("v1".to_string())
        );
        // The fault is one-shot: the next write succeeds.
        store.put(ObjectKind::Domain, "qemu", "web", "v3").unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("v3".to_string())
        );
    }

    #[test]
    fn injected_torn_write_is_quarantined_on_read() {
        let store = temp_store("torn");
        store.put(ObjectKind::Domain, "qemu", "web", "v1").unwrap();
        store.inject_fault(StoreFault::TornWrite, 1);
        store
            .put(ObjectKind::Domain, "qemu", "web", "v2-longer-payload")
            .unwrap_err();
        // The torn file is on disk; a validated read refuses to serve it
        // and moves it aside instead of crashing.
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
        assert_eq!(store.quarantined_total(), 1);
        assert!(store.load_all(ObjectKind::Domain, "qemu").is_empty());
        // The quarantined copy is preserved for inspection.
        let quarantine = store.root().join("quarantine");
        assert_eq!(fs::read_dir(quarantine).unwrap().count(), 1);
    }

    #[test]
    fn nth_write_fault_is_deterministic() {
        let store = temp_store("nth");
        store.inject_fault(StoreFault::FailWrite, 3);
        store.put(ObjectKind::Domain, "qemu", "a", "1").unwrap();
        store.put(ObjectKind::Domain, "qemu", "b", "2").unwrap();
        store.put(ObjectKind::Domain, "qemu", "c", "3").unwrap_err();
        store.put(ObjectKind::Domain, "qemu", "d", "4").unwrap();
        assert_eq!(store.load_all(ObjectKind::Domain, "qemu").len(), 3);
    }

    #[test]
    fn hand_truncated_file_quarantines_not_panics() {
        let store = temp_store("trunc");
        store
            .put(
                ObjectKind::Domain,
                "qemu",
                "web",
                "a payload long enough to truncate",
            )
            .unwrap();
        let path = store.root().join("etc/domains/qemu/web.xml");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
        assert_eq!(store.quarantined_total(), 1);
    }

    #[test]
    fn garbage_file_without_header_quarantines() {
        let store = temp_store("garbage");
        let dir = store.root().join("etc/domains/qemu");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("evil.xml"), b"<domain>no header</domain>").unwrap();
        assert!(store.load_all(ObjectKind::Domain, "qemu").is_empty());
        assert_eq!(store.quarantined_total(), 1);
    }

    #[test]
    fn guard_records_roundtrip_through_store() {
        use crate::guard::{GuardPolicy, GuardRecord};
        let store = temp_store("guard");
        let record = GuardRecord {
            domain: "web".to_string(),
            policy: GuardPolicy::KeepRunning { max_restarts: 4 },
        };
        store
            .put(ObjectKind::Guard, "qemu", "web", &record.to_xml_string())
            .unwrap();
        let loaded = store.load_all(ObjectKind::Guard, "qemu");
        assert_eq!(loaded.len(), 1);
        assert_eq!(GuardRecord::from_xml_str(&loaded[0].1).unwrap(), record);
        // Guard records live in their own directory, invisible to the
        // other kinds.
        assert!(store.load_all(ObjectKind::Domain, "qemu").is_empty());
        store.remove(ObjectKind::Guard, "qemu", "web").unwrap();
        assert!(store.load_all(ObjectKind::Guard, "qemu").is_empty());
    }

    #[test]
    fn torn_guard_record_is_quarantined_not_recovered() {
        use crate::guard::{GuardPolicy, GuardRecord};
        let store = temp_store("guard-torn");
        let keep = GuardRecord {
            domain: "web".to_string(),
            policy: GuardPolicy::KeepRunning { max_restarts: 3 },
        };
        let stop = GuardRecord {
            domain: "db".to_string(),
            policy: GuardPolicy::GracefulStop { timeout_ms: 500 },
        };
        store
            .put(ObjectKind::Guard, "qemu", "web", &keep.to_xml_string())
            .unwrap();
        store.inject_fault(StoreFault::TornWrite, 1);
        store
            .put(ObjectKind::Guard, "qemu", "db", &stop.to_xml_string())
            .unwrap_err();
        // The torn record is moved aside; the intact one survives.
        let loaded = store.load_all(ObjectKind::Guard, "qemu");
        assert_eq!(loaded.len(), 1);
        assert_eq!(GuardRecord::from_xml_str(&loaded[0].1).unwrap(), keep);
        assert_eq!(store.quarantined_total(), 1);
        // A checksummed-but-invalid document is also refused: the
        // schema check quarantines what the checksum cannot.
        store
            .put(
                ObjectKind::Guard,
                "qemu",
                "evil",
                "<guard policy=\"bogus\"/>",
            )
            .unwrap();
        let loaded = store.load_all(ObjectKind::Guard, "qemu");
        let parsed: Vec<GuardRecord> = loaded
            .iter()
            .filter_map(|(_, xml)| GuardRecord::from_xml_str(xml).ok())
            .collect();
        assert_eq!(parsed, vec![keep]);
    }

    #[test]
    fn domain_status_roundtrip() {
        let status = DomainStatus {
            name: "web".to_string(),
            uuid: Uuid::generate(),
            state: DomainState::Running,
            autostart: true,
            has_managed_save: false,
        };
        let xml = status.to_xml_string();
        assert_eq!(DomainStatus::from_xml_str(&xml).unwrap(), status);
        assert!(DomainStatus::from_xml_str("<domstatus/>").is_err());
        assert!(DomainStatus::from_xml_str("<wat/>").is_err());
        assert!(DomainStatus::from_xml_str(
            "<domstatus state='sideways' autostart='1' managed_save='0'>\
             <name>x</name><uuid>6ba7b810-9dad-41d1-80b4-00c04fd430c8</uuid></domstatus>"
        )
        .is_err());
    }
}

//! Crash-safe on-disk state store for persistent object definitions and
//! live-status records.
//!
//! Reproduces libvirt's `/etc/libvirt` + `/run/libvirt` split: object
//! *definitions* (domain, network, pool XML) live under `etc/`, while
//! volatile *status* records — which domains are running, autostart
//! markers, managed-save flags — live under `run/`. The daemon can be
//! SIGKILLed at any instant and still reconstruct its world at the next
//! boot from these files alone; that is the paper's "non-intrusive"
//! property (the management layer can die without taking guests with it).
//!
//! ## Layout
//!
//! ```text
//! <root>/etc/domains/<driver>/<name>.xml     persistent definitions
//! <root>/etc/networks/<driver>/<name>.xml
//! <root>/etc/pools/<driver>/<name>.xml
//! <root>/run/domains/<driver>/<name>.xml     live-status records
//! <root>/quarantine/                         corrupt files, moved aside
//! ```
//!
//! ## The group-commit pipeline
//!
//! Writers never touch the disk themselves. Every mutation is a
//! *dirty-object record* pushed onto a coalescing queue drained by one
//! persister thread:
//!
//! - [`StateStore::put`] / [`StateStore::remove`] enqueue and then block
//!   on the **group-commit barrier**: the caller returns once a flush
//!   cycle containing (or superseding) its record has committed. All
//!   barrier waiters that arrive while a cycle is in flight share the
//!   next one — N concurrent writers cost one batched fsync cycle, not N.
//! - [`StateStore::put_behind`] / [`StateStore::remove_behind`] are
//!   **write-behind**: they enqueue and return. Volatile `run/` status
//!   records use this path; durability lags by at most the coalesce
//!   window plus one flush cycle, and [`StateStore::flush`] or store
//!   drop drains whatever is pending.
//! - Records queued for the same object are **coalesced last-writer-wins**
//!   (a crash storm rewriting one status 50 times costs one write), and
//!   a record whose payload matches the last cleanly committed frame is
//!   skipped entirely (lifecycle ops rewrite unchanged definition files;
//!   those cost nothing now).
//! - Within a flush cycle each file still follows the atomic discipline
//!   below, but the *directory* fsyncs are batched: one `sync_all` per
//!   touched directory per cycle instead of per file.
//!
//! The crash contract is unchanged by the pipeline: a reader sees either
//! the old frame or the new frame of any object, never a torn mixture,
//! and a SIGKILL can only cost write-behind records that had not yet
//! reached their flush cycle — never a committed one.
//!
//! ## Durability discipline
//!
//! Every write is *atomic*: the payload goes to a unique temp file in
//! the target directory, the file is fsynced, renamed over the
//! destination, and the directory is fsynced (once per batch) so the
//! rename itself survives a power cut. A reader therefore sees either
//! the previous committed version or the new one — never a torn mixture.
//!
//! Every read is *validated*: files carry a header line with the payload
//! length and an FNV-1a checksum. A file that fails validation (torn
//! write from a crashed kernel, bit rot, truncation) is moved to
//! `quarantine/` and counted — never parsed, never a panic.
//!
//! ## Fault injection
//!
//! [`StateStore::inject_fault`] arms a deterministic fault at the Nth
//! subsequent write: either a clean I/O error before any data moves
//! ([`StoreFault::FailWrite`], the previous version stays committed) or a
//! torn write renamed into place ([`StoreFault::TornWrite`], simulating
//! the pathological crash the checksum exists to catch). Faults fire
//! inside the persister thread, per attempted file write, and surface
//! through the barrier result exactly as a real I/O error would.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{ErrorCode, VirtError, VirtResult};
use crate::log::Logger;
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::uuid::Uuid;
use hypersim::DomainState;
use virt_xml::Element;

/// Magic prefix of the header line; bump the version on format changes.
const HEADER_MAGIC: &str = "#virtstate v1";

#[cfg(target_os = "linux")]
mod sys {
    //! Raw declaration of the one libc entry point the batch flush
    //! uses (same no-external-crates approach as `virt_rpc::poll`).
    use std::os::raw::c_int;
    extern "C" {
        /// Flushes all dirty data and metadata of the filesystem
        /// containing `fd` — one device flush covering every staged
        /// frame of a batch, where per-file fsync pays one per file.
        pub fn syncfs(fd: c_int) -> c_int;
    }
}

/// Makes every staged frame of a batch durable with one filesystem-wide
/// sync. Returns `false` when unsupported (non-Linux) or failed; the
/// caller then falls back to per-file fsync.
#[cfg(target_os = "linux")]
fn sync_filesystem(root: &Path) -> bool {
    use std::os::fd::AsRawFd;
    match File::open(root) {
        Ok(f) => unsafe { sys::syncfs(f.as_raw_fd()) == 0 },
        Err(_) => false,
    }
}

#[cfg(not(target_os = "linux"))]
fn sync_filesystem(_root: &Path) -> bool {
    false
}

/// The kinds of object a store holds, each with its own directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Persistent domain definition (`etc/domains`).
    Domain,
    /// Persistent network definition (`etc/networks`).
    Network,
    /// Persistent pool definition (`etc/pools`).
    Pool,
    /// Volatile domain status record (`run/domains`).
    DomainStatus,
    /// Persistent guard policy record (`etc/guards`).
    Guard,
}

impl ObjectKind {
    fn rel_dir(self) -> &'static str {
        match self {
            ObjectKind::Domain => "etc/domains",
            ObjectKind::Network => "etc/networks",
            ObjectKind::Pool => "etc/pools",
            ObjectKind::DomainStatus => "run/domains",
            ObjectKind::Guard => "etc/guards",
        }
    }
}

/// A deterministic injected fault, armed via [`StateStore::inject_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The write fails cleanly before any byte reaches the destination:
    /// the previous committed version stays in place.
    FailWrite,
    /// Half the payload is written and renamed into place — the torn
    /// file a crashed kernel or lying disk can leave behind. The next
    /// validated read must quarantine it.
    TornWrite,
}

struct ArmedFault {
    kind: StoreFault,
    /// Fires when the write counter reaches this sequence number.
    at_write: u64,
}

/// Tuning knobs of the persistence pipeline.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// How long a batch containing only write-behind records may wait
    /// for more work to coalesce before it is flushed. A barrier waiter
    /// (durable `put`/`remove`, `flush`) always flushes immediately.
    pub coalesce_window: Duration,
    /// Bypass the pipeline entirely: every write performs its own full
    /// temp → fsync → rename → dirsync cycle inline on the caller's
    /// thread. This is the pre-group-commit behavior, kept as the
    /// baseline arm of the F12 experiment.
    pub sync_writes: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            coalesce_window: Duration::from_millis(2),
            sync_writes: false,
        }
    }
}

/// One object's identity inside the store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ObjKey {
    kind: ObjectKind,
    driver: String,
    name: String,
}

/// One record of a multi-object [`StateStore::commit`].
#[derive(Debug, Clone)]
pub enum StoreOp {
    /// Commit `payload` for the named object.
    Put {
        /// Object kind.
        kind: ObjectKind,
        /// Driver partition.
        driver: String,
        /// Object name.
        name: String,
        /// Frame content.
        payload: String,
    },
    /// Remove the named object's committed file (idempotent).
    Remove {
        /// Object kind.
        kind: ObjectKind,
        /// Driver partition.
        driver: String,
        /// Object name.
        name: String,
    },
}

impl StoreOp {
    fn into_parts(self) -> (ObjKey, QueuedOp) {
        match self {
            StoreOp::Put {
                kind,
                driver,
                name,
                payload,
            } => (ObjKey { kind, driver, name }, QueuedOp::Put(payload)),
            StoreOp::Remove { kind, driver, name } => {
                (ObjKey { kind, driver, name }, QueuedOp::Remove)
            }
        }
    }
}

/// A queued mutation: the newest requested content for one object.
enum QueuedOp {
    Put(String),
    Remove,
}

/// A barrier waiter's completion slot.
struct OpWaiter {
    slot: Mutex<Option<VirtResult<()>>>,
    cv: Condvar,
}

impl OpWaiter {
    fn new() -> Arc<OpWaiter> {
        Arc::new(OpWaiter {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: VirtResult<()>) {
        *self.slot.lock() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> VirtResult<()> {
        let mut slot = self.slot.lock();
        while slot.is_none() {
            self.cv.wait(&mut slot);
        }
        slot.clone().expect("slot filled")
    }
}

/// One pending dirty-object record: the latest op plus every barrier
/// waiter whose write it absorbed (last-writer-wins coalescing keeps all
/// waiters — a superseded snapshot is made durable *by* its successor).
struct Pending {
    op: QueuedOp,
    waiters: Vec<Arc<OpWaiter>>,
}

/// The persister's work queue, protected by one mutex.
struct PersistQueue {
    /// Enqueue order of distinct dirty objects.
    order: Vec<ObjKey>,
    slots: HashMap<ObjKey, Pending>,
    /// A barrier waiter is pending: flush without waiting out the window.
    urgent: bool,
    /// Total records ever enqueued (coalesced or not); the persister's
    /// gather stall watches it to detect arrivals still landing.
    enqueued: u64,
    /// When the oldest pending record was enqueued (coalesce deadline).
    oldest: Option<Instant>,
    /// The persister is mid-cycle (queue already drained into a batch).
    in_flight: bool,
    shutdown: bool,
    /// Bumped once per flush cycle that contained at least one failed
    /// record; `flush()` uses it to report write-behind errors.
    error_epoch: u64,
    last_error: Option<VirtError>,
}

/// Pipeline + integrity metrics. Allocated with the store and optionally
/// published into a daemon [`Registry`].
struct StoreMetrics {
    group_commits: Arc<Counter>,
    coalesced: Arc<Counter>,
    deduped: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    sync_us: Arc<Histogram>,
    write_error: Arc<Counter>,
    quarantined: Arc<Counter>,
}

impl StoreMetrics {
    fn new() -> Self {
        StoreMetrics {
            group_commits: Arc::new(Counter::new()),
            coalesced: Arc::new(Counter::new()),
            deduped: Arc::new(Counter::new()),
            queue_depth: Arc::new(Gauge::new()),
            sync_us: Arc::new(Histogram::new()),
            write_error: Arc::new(Counter::new()),
            quarantined: Arc::new(Counter::new()),
        }
    }
}

/// State shared between the store handle and the persister thread.
struct Shared {
    root: PathBuf,
    options: StoreOptions,
    queue: Mutex<PersistQueue>,
    /// Wakes the persister (work arrived, urgency changed, shutdown).
    work_cv: Condvar,
    /// Wakes `flush()` waiters (a cycle completed and the queue is dry).
    idle_cv: Condvar,
    /// Monotone write counter driving deterministic fault injection.
    /// Also serializes inline (sync-mode) writers via `committed`.
    writes: Counter,
    fault: Mutex<Option<ArmedFault>>,
    /// FNV-1a of the last cleanly committed payload per object: a queued
    /// put whose content already matches the committed frame is skipped.
    /// Doubles as the writer lock for sync-mode inline writes.
    committed: Mutex<HashMap<ObjKey, u64>>,
    logger: Mutex<Option<Arc<Logger>>>,
    /// Directory-fsync failures are counted per occurrence but logged
    /// once — a sick filesystem would otherwise flood the journal.
    dirsync_logged: AtomicBool,
    metrics: StoreMetrics,
}

/// Crash-safe store rooted at one directory. Cheap to share via `Arc`.
pub struct StateStore {
    shared: Arc<Shared>,
    /// The persister thread; joined when the last store handle drops.
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateStore")
            .field("root", &self.shared.root)
            .field("writes", &self.shared.writes.get())
            .field("quarantined", &self.shared.metrics.quarantined.get())
            .finish()
    }
}

fn io_err(context: &str, err: std::io::Error) -> VirtError {
    VirtError::new(
        ErrorCode::OperationFailed,
        format!("state store: {context}: {err}"),
    )
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to detect torn
/// writes (this is corruption *detection*, not an integrity MAC).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl StateStore {
    /// Opens (creating if needed) a store rooted at `root`, with the
    /// default pipeline tuning.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] when the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> VirtResult<Arc<StateStore>> {
        Self::open_with_options(root, StoreOptions::default())
    }

    /// Opens a store with explicit pipeline tuning.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] when the directories cannot be
    /// created.
    pub fn open_with_options(
        root: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> VirtResult<Arc<StateStore>> {
        let root = root.into();
        for kind in [
            ObjectKind::Domain,
            ObjectKind::Network,
            ObjectKind::Pool,
            ObjectKind::DomainStatus,
            ObjectKind::Guard,
        ] {
            fs::create_dir_all(root.join(kind.rel_dir()))
                .map_err(|e| io_err("create layout", e))?;
        }
        fs::create_dir_all(root.join("quarantine")).map_err(|e| io_err("create layout", e))?;
        let sync_writes = options.sync_writes;
        let shared = Arc::new(Shared {
            root,
            options,
            queue: Mutex::new(PersistQueue {
                order: Vec::new(),
                slots: HashMap::new(),
                urgent: false,
                enqueued: 0,
                oldest: None,
                in_flight: false,
                shutdown: false,
                error_epoch: 0,
                last_error: None,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            writes: Counter::new(),
            fault: Mutex::new(None),
            committed: Mutex::new(HashMap::new()),
            logger: Mutex::new(None),
            dirsync_logged: AtomicBool::new(false),
            metrics: StoreMetrics::new(),
        });
        let worker = if sync_writes {
            None
        } else {
            let thread_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("statestore-persist".to_string())
                    .spawn(move || persister_loop(&thread_shared))
                    .map_err(|e| io_err("spawn persister", e))?,
            )
        };
        Ok(Arc::new(StateStore {
            shared,
            worker: Mutex::new(worker),
        }))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    /// Routes the pipeline's rare structured messages (directory-fsync
    /// failures, drop-time drain errors) into a daemon logger instead of
    /// stderr.
    pub fn set_logger(&self, logger: Arc<Logger>) {
        *self.shared.logger.lock() = Some(logger);
    }

    /// Publishes the store's metrics into `registry` as `statestore.*`.
    /// The registry shares the store's own instances, so activity before
    /// and after publication all appears in snapshots.
    pub fn publish_metrics(&self, registry: &Registry) {
        let m = &self.shared.metrics;
        let _ = registry.register_counter(
            "statestore.group_commits",
            "Batched flush cycles committed by the persister thread",
            Arc::clone(&m.group_commits),
        );
        let _ = registry.register_counter(
            "statestore.coalesced",
            "Queued records absorbed by a newer write to the same object",
            Arc::clone(&m.coalesced),
        );
        let _ = registry.register_counter(
            "statestore.deduped",
            "Queued records skipped because the committed frame was already identical",
            Arc::clone(&m.deduped),
        );
        let _ = registry.register_gauge(
            "statestore.queue_depth",
            "Dirty objects currently waiting for a flush cycle",
            Arc::clone(&m.queue_depth),
        );
        let _ = registry.register_histogram(
            "statestore.sync_us",
            "Wall-clock latency of one batched flush cycle (writes + fsyncs + dirsyncs)",
            Arc::clone(&m.sync_us),
        );
        let _ = registry.register_counter(
            "statestore.write_error",
            "Failed state writes: I/O errors, injected faults, and directory-fsync failures",
            Arc::clone(&m.write_error),
        );
        let _ = registry.register_counter(
            "statestore.quarantined",
            "Corrupt state files moved aside by validated reads",
            Arc::clone(&m.quarantined),
        );
    }

    /// Arms a deterministic fault: the `nth` write counted from now
    /// (1-based — `1` means the very next write) experiences `kind`.
    /// Arm only while the pipeline is drained (between barriers) —
    /// records already queued would otherwise shift the count.
    pub fn inject_fault(&self, kind: StoreFault, nth: u64) {
        let at_write = self.shared.writes.get() + nth;
        *self.shared.fault.lock() = Some(ArmedFault { kind, at_write });
    }

    /// Files moved to quarantine since the store opened.
    pub fn quarantined_total(&self) -> u64 {
        self.shared.metrics.quarantined.get()
    }

    /// Writes that failed (real I/O errors, injected faults, and
    /// directory-fsync failures).
    pub fn write_error_total(&self) -> u64 {
        self.shared.metrics.write_error.get()
    }

    /// Flush cycles the persister has committed.
    pub fn group_commits_total(&self) -> u64 {
        self.shared.metrics.group_commits.get()
    }

    /// Queued records absorbed by newer writes to the same object.
    pub fn coalesced_total(&self) -> u64 {
        self.shared.metrics.coalesced.get()
    }

    /// Queued records skipped because the committed frame was identical.
    pub fn deduped_total(&self) -> u64 {
        self.shared.metrics.deduped.get()
    }

    /// Commits `payload` for `name`, atomically and durably: the record
    /// is queued and the call blocks on the group-commit barrier until a
    /// flush cycle containing (or superseding) it has committed.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] on I/O failure (including injected
    /// faults and directory-fsync failures). After an error the
    /// previously committed version — if any — is still served, except
    /// for an injected [`StoreFault::TornWrite`] which deliberately
    /// leaves a corrupt file for validation to catch.
    pub fn put(&self, kind: ObjectKind, driver: &str, name: &str, payload: &str) -> VirtResult<()> {
        let key = ObjKey {
            kind,
            driver: driver.to_string(),
            name: name.to_string(),
        };
        if self.shared.options.sync_writes {
            return write_now(&self.shared, &key, QueuedOp::Put(payload.to_string()));
        }
        let waiter = OpWaiter::new();
        match enqueue(
            &self.shared,
            key.clone(),
            QueuedOp::Put(payload.to_string()),
            Some(Arc::clone(&waiter)),
        ) {
            Ok(()) => waiter.wait(),
            // The pipeline is shut down (store mid-drop); write inline.
            Err(op) => write_now(&self.shared, &key, op),
        }
    }

    /// Queues `payload` for `name` **write-behind** and returns
    /// immediately. Durability lags by at most the coalesce window plus
    /// one flush cycle; repeated writes to one object before its cycle
    /// coalesce last-writer-wins. Errors are counted in
    /// `statestore.write_error` and reported by the next [`flush`]
    /// barrier rather than here.
    ///
    /// [`flush`]: StateStore::flush
    pub fn put_behind(&self, kind: ObjectKind, driver: &str, name: &str, payload: &str) {
        let key = ObjKey {
            kind,
            driver: driver.to_string(),
            name: name.to_string(),
        };
        if self.shared.options.sync_writes {
            let _ = write_now(&self.shared, &key, QueuedOp::Put(payload.to_string()));
            return;
        }
        if let Err(op) = enqueue(
            &self.shared,
            key.clone(),
            QueuedOp::Put(payload.to_string()),
            None,
        ) {
            let _ = write_now(&self.shared, &key, op);
        }
    }

    /// Removes `name`'s committed file, blocking on the group-commit
    /// barrier. Missing files are fine — removal is idempotent.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] on I/O failure other than absence.
    pub fn remove(&self, kind: ObjectKind, driver: &str, name: &str) -> VirtResult<()> {
        let key = ObjKey {
            kind,
            driver: driver.to_string(),
            name: name.to_string(),
        };
        if self.shared.options.sync_writes {
            return write_now(&self.shared, &key, QueuedOp::Remove);
        }
        let waiter = OpWaiter::new();
        match enqueue(
            &self.shared,
            key.clone(),
            QueuedOp::Remove,
            Some(Arc::clone(&waiter)),
        ) {
            Ok(()) => waiter.wait(),
            Err(op) => write_now(&self.shared, &key, op),
        }
    }

    /// Commits several records through **one** group-commit barrier: all
    /// of them are enqueued first, then the call blocks once. A mutating
    /// op that persists multiple objects (a domain definition plus its
    /// status record, or a multi-file sweep) pays one flush cycle
    /// instead of one per record.
    ///
    /// # Errors
    ///
    /// The first failing record's error; the others still committed or
    /// failed independently (per-record semantics identical to
    /// [`StateStore::put`] / [`StateStore::remove`]).
    pub fn commit(&self, ops: Vec<StoreOp>) -> VirtResult<()> {
        if self.shared.options.sync_writes {
            for op in ops {
                let (key, queued) = op.into_parts();
                write_now(&self.shared, &key, queued)?;
            }
            return Ok(());
        }
        let mut waiters = Vec::with_capacity(ops.len());
        let mut first_error = Ok(());
        for op in ops {
            let (key, queued) = op.into_parts();
            let waiter = OpWaiter::new();
            match enqueue(&self.shared, key.clone(), queued, Some(Arc::clone(&waiter))) {
                Ok(()) => waiters.push(waiter),
                // Pipeline shut down mid-drop: fall back inline.
                Err(queued) => {
                    if let Err(e) = write_now(&self.shared, &key, queued) {
                        if first_error.is_ok() {
                            first_error = Err(e);
                        }
                    }
                }
            }
        }
        for waiter in waiters {
            if let Err(e) = waiter.wait() {
                if first_error.is_ok() {
                    first_error = Err(e);
                }
            }
        }
        first_error
    }

    /// Queues a removal write-behind (see [`StateStore::put_behind`]).
    pub fn remove_behind(&self, kind: ObjectKind, driver: &str, name: &str) {
        let key = ObjKey {
            kind,
            driver: driver.to_string(),
            name: name.to_string(),
        };
        if self.shared.options.sync_writes {
            let _ = write_now(&self.shared, &key, QueuedOp::Remove);
            return;
        }
        if let Err(op) = enqueue(&self.shared, key.clone(), QueuedOp::Remove, None) {
            let _ = write_now(&self.shared, &key, op);
        }
    }

    /// Drains the pipeline: blocks until every record queued so far has
    /// been committed (or failed). Used at recovery start, daemon
    /// shutdown, and by tests that need write-behind records on disk.
    ///
    /// # Errors
    ///
    /// The first error of any flush cycle completed during the drain —
    /// this is how write-behind failures surface to a caller.
    pub fn flush(&self) -> VirtResult<()> {
        if self.shared.options.sync_writes {
            return Ok(());
        }
        let mut q = self.shared.queue.lock();
        let epoch = q.error_epoch;
        if !q.order.is_empty() {
            q.urgent = true;
            self.shared.work_cv.notify_one();
        }
        while !q.order.is_empty() || q.in_flight {
            self.shared.idle_cv.wait(&mut q);
        }
        if q.error_epoch != epoch {
            return Err(q.last_error.clone().unwrap_or_else(|| {
                VirtError::new(ErrorCode::OperationFailed, "state store: flush failed")
            }));
        }
        Ok(())
    }

    fn dir(&self, kind: ObjectKind, driver: &str) -> PathBuf {
        self.shared.dir(kind, driver)
    }

    fn file(&self, kind: ObjectKind, driver: &str, name: &str) -> PathBuf {
        self.dir(kind, driver).join(format!("{name}.xml"))
    }

    /// Reads and validates one committed payload. `Ok(None)` when the
    /// file does not exist; a file failing validation is quarantined and
    /// reported as absent. Reads see *committed* frames only — drain
    /// with [`StateStore::flush`] first if write-behind records for this
    /// object may still be queued.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationFailed`] on I/O failure other than absence.
    pub fn get(&self, kind: ObjectKind, driver: &str, name: &str) -> VirtResult<Option<String>> {
        let path = self.file(kind, driver, name);
        match fs::read(&path) {
            Ok(bytes) => match validate(&bytes) {
                Some(payload) => Ok(Some(payload)),
                None => {
                    self.shared.forget_committed(kind, driver, name);
                    self.shared.quarantine_path(&path);
                    Ok(None)
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(&format!("read {name}"), e)),
        }
    }

    /// Loads every committed object of `kind` for `driver`, sorted by
    /// name. Corrupt files are quarantined (and counted), not returned —
    /// a torn write can cost at most the object it was updating, never
    /// the daemon's boot.
    pub fn load_all(&self, kind: ObjectKind, driver: &str) -> Vec<(String, String)> {
        let dir = self.dir(kind, driver);
        let Ok(entries) = fs::read_dir(&dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some(ext) = path.extension().and_then(|s| s.to_str()) else {
                continue;
            };
            if ext != "xml" || stem.starts_with('.') {
                continue; // temp files and strays
            }
            match fs::read(&path) {
                Ok(bytes) => match validate(&bytes) {
                    Some(payload) => out.push((stem.to_string(), payload)),
                    None => {
                        self.shared.forget_committed(kind, driver, stem);
                        self.shared.quarantine_path(&path);
                    }
                },
                Err(_) => {
                    self.shared.forget_committed(kind, driver, stem);
                    self.shared.quarantine_path(&path);
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Moves a file that failed validation out of the store, preserving
    /// it for inspection under `quarantine/`.
    pub fn quarantine(&self, kind: ObjectKind, driver: &str, name: &str) {
        self.shared.forget_committed(kind, driver, name);
        self.shared.quarantine_path(&self.file(kind, driver, name));
    }
}

impl Drop for StateStore {
    fn drop(&mut self) {
        let Some(worker) = self.worker.lock().take() else {
            return;
        };
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
            self.shared.work_cv.notify_one();
        }
        // The persister drains every pending record before exiting —
        // this is the drain-on-shutdown half of the write-behind
        // contract. Errors were already counted and logged by the loop.
        let _ = worker.join();
    }
}

impl Shared {
    fn dir(&self, kind: ObjectKind, driver: &str) -> PathBuf {
        self.root.join(kind.rel_dir()).join(driver)
    }

    fn forget_committed(&self, kind: ObjectKind, driver: &str, name: &str) {
        self.committed.lock().remove(&ObjKey {
            kind,
            driver: driver.to_string(),
            name: name.to_string(),
        });
    }

    /// Checks the armed fault against this write's sequence number.
    fn take_fault(&self, seq: u64) -> Option<StoreFault> {
        let mut slot = self.fault.lock();
        match &*slot {
            Some(armed) if seq >= armed.at_write => slot.take().map(|a| a.kind),
            _ => None,
        }
    }

    fn quarantine_path(&self, path: &Path) {
        let n = self.metrics.quarantined.get();
        self.metrics.quarantined.inc();
        let base = path
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("corrupt");
        let dest = self.root.join("quarantine").join(format!("{n}-{base}"));
        if fs::rename(path, &dest).is_err() {
            // Cross-device or racing writer: removal still protects boot.
            let _ = fs::remove_file(path);
        }
    }

    fn log_warning(&self, message: &str) {
        match &*self.logger.lock() {
            Some(logger) => logger.warning("statestore", message),
            None => eprintln!("statestore: warning: {message}"),
        }
    }

    /// Directory-fsync failure: counted every time, logged once.
    fn note_dirsync_failure(&self, dir: &Path, err: &std::io::Error) {
        self.metrics.write_error.inc();
        if !self.dirsync_logged.swap(true, Ordering::Relaxed) {
            self.log_warning(&format!(
                "directory fsync failed for {} ({err}); renames in this batch may not \
                 survive a power cut — reporting the batch as failed (logged once)",
                dir.display()
            ));
        }
    }
}

/// Enqueues one record, coalescing last-writer-wins per object. When the
/// pipeline has shut down, hands the op back (`Err`) so the caller can
/// write it inline.
fn enqueue(
    shared: &Shared,
    key: ObjKey,
    op: QueuedOp,
    waiter: Option<Arc<OpWaiter>>,
) -> Result<(), QueuedOp> {
    let mut q = shared.queue.lock();
    if q.shutdown {
        return Err(op);
    }
    q.enqueued += 1;
    let urgent = waiter.is_some();
    match q.slots.get_mut(&key) {
        Some(pending) => {
            pending.op = op;
            if let Some(w) = waiter {
                pending.waiters.push(w);
            }
            shared.metrics.coalesced.inc();
        }
        None => {
            let waiters = waiter.into_iter().collect();
            q.slots.insert(key.clone(), Pending { op, waiters });
            q.order.push(key);
            if q.oldest.is_none() {
                q.oldest = Some(Instant::now());
            }
        }
    }
    if urgent {
        q.urgent = true;
    }
    shared.metrics.queue_depth.set(q.order.len() as u64);
    shared.work_cv.notify_one();
    Ok(())
}

/// The persister thread: waits for work, optionally lets a volatile-only
/// batch coalesce, then commits the whole batch in one flush cycle.
fn persister_loop(shared: &Shared) {
    let mut q = shared.queue.lock();
    // Barrier waiters released by the previous flush cycle; used by the
    // gather stall below to predict how many writers are about to
    // re-enqueue.
    let mut expected_writers: usize = 0;
    loop {
        if q.order.is_empty() {
            if q.shutdown {
                break;
            }
            shared.idle_cv.notify_all();
            shared.work_cv.wait(&mut q);
            continue;
        }
        if !q.urgent && !q.shutdown {
            // Volatile-only batch: give the window a chance to absorb
            // the rest of a storm before paying the fsync cycle.
            let deadline = q.oldest.unwrap_or_else(Instant::now) + shared.options.coalesce_window;
            let now = Instant::now();
            if now < deadline {
                shared.work_cv.wait_for(&mut q, deadline - now);
                continue; // re-evaluate: urgency or shutdown may have changed
            }
        } else if !q.shutdown && expected_writers > 1 {
            // Group-commit gather: a barrier waiter wants the flush
            // now, but the previous cycle just released
            // `expected_writers` waiters who are typically about to
            // re-enqueue their next record. Hold the cycle briefly
            // until most of them land so they share one fsync instead
            // of each paying their own. Self-calibrating: a lone
            // writer (expected ≤ 1) never stalls.
            let base = q.enqueued;
            let goal = (expected_writers - 1) as u64;
            let deadline = Instant::now() + Duration::from_micros(400);
            while !q.shutdown && q.enqueued.saturating_sub(base) < goal {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                shared.work_cv.wait_for(&mut q, deadline - now);
            }
        }
        let keys = std::mem::take(&mut q.order);
        let mut batch: Vec<(ObjKey, Pending)> = keys
            .into_iter()
            .map(|key| {
                let pending = q.slots.remove(&key).expect("ordered key has a slot");
                (key, pending)
            })
            .collect();
        q.urgent = false;
        q.oldest = None;
        q.in_flight = true;
        expected_writers = batch.iter().map(|(_, p)| p.waiters.len()).sum();
        shared.metrics.queue_depth.set(0);
        drop(q);

        let started = Instant::now();
        let results = flush_batch(shared, &batch);
        shared.metrics.sync_us.record(started.elapsed());
        shared.metrics.group_commits.inc();

        let mut first_error: Option<VirtError> = None;
        for ((_, pending), result) in batch.iter_mut().zip(&results) {
            if let Err(err) = result {
                if first_error.is_none() {
                    first_error = Some(err.clone());
                }
            }
            for waiter in pending.waiters.drain(..) {
                waiter.complete(result.clone());
            }
        }

        q = shared.queue.lock();
        q.in_flight = false;
        if let Some(err) = first_error {
            q.error_epoch += 1;
            q.last_error = Some(err);
        }
        if q.order.is_empty() {
            shared.idle_cv.notify_all();
        }
    }
    shared.idle_cv.notify_all();
}

/// A put staged across the batch's phases.
struct StagedPut {
    index: usize,
    tmp: PathBuf,
    dest: PathBuf,
    dir: PathBuf,
    file: Option<File>,
    content_hash: u64,
    torn: bool,
}

/// Commits one batch in phases, so the whole cycle costs ~one journal
/// commit instead of one per file:
///
/// 1. write every record's frame to a temp file (no fsync yet);
/// 2. fsync every temp file — the first fsync commits the filesystem
///    journal transaction already carrying the others' data, so the
///    rest are near-free;
/// 3. rename each temp over its destination (a file is only renamed
///    after **its own** fsync succeeded, so the per-file old-frame /
///    new-frame contract is exactly the single-write discipline);
/// 4. one directory fsync per touched directory.
///
/// Returns one result per record, in batch order.
fn flush_batch(shared: &Shared, batch: &[(ObjKey, Pending)]) -> Vec<VirtResult<()>> {
    let mut results: Vec<VirtResult<()>> = vec![Ok(()); batch.len()];
    // Directories whose entries changed this cycle, with the indices of
    // the records that depend on each one's fsync.
    let mut touched: Vec<(PathBuf, Vec<usize>)> = Vec::new();
    let touch = |touched: &mut Vec<(PathBuf, Vec<usize>)>, dir: &Path, index: usize| {
        if let Some((_, indices)) = touched.iter_mut().find(|(d, _)| d == dir) {
            indices.push(index);
        } else {
            touched.push((dir.to_path_buf(), vec![index]));
        }
    };
    let mut staged: Vec<StagedPut> = Vec::with_capacity(batch.len());
    let mut committed = shared.committed.lock();

    // Phase 1: removals execute, puts stage their temp files.
    for (index, (key, pending)) in batch.iter().enumerate() {
        let dir = shared.dir(key.kind, &key.driver);
        let dest = dir.join(format!("{}.xml", key.name));
        match &pending.op {
            QueuedOp::Remove => {
                committed.remove(key);
                match fs::remove_file(&dest) {
                    Ok(()) => touch(&mut touched, &dir, index),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => {
                        shared.metrics.write_error.inc();
                        results[index] = Err(io_err(&format!("remove {}", key.name), e));
                    }
                }
            }
            QueuedOp::Put(payload) => {
                let content_hash = fnv1a(payload.as_bytes());
                if committed.get(key) == Some(&content_hash) {
                    // The committed frame is already identical: the
                    // record is durable by construction, no write owed.
                    shared.metrics.deduped.inc();
                    continue;
                }
                let seq = shared.writes.get() + 1;
                shared.writes.inc();
                let fault = shared.take_fault(seq);
                match stage_one(key, &dir, payload, seq, fault) {
                    Ok((tmp, file, torn)) => staged.push(StagedPut {
                        index,
                        tmp,
                        dest,
                        dir,
                        file: Some(file),
                        content_hash,
                        torn,
                    }),
                    Err(e) => {
                        shared.metrics.write_error.inc();
                        results[index] = Err(io_err(&format!("write {}", key.name), e));
                    }
                }
            }
        }
    }

    // Phase 2 + 3: make each staged frame durable, then rename it into
    // place. With two or more frames, one filesystem-wide sync replaces
    // the per-file fsyncs — each fsync costs a full device flush, so
    // this is where the batch collapses N flushes into one. A file is
    // still only renamed after its bytes are durable, so the per-file
    // old-frame/new-frame contract is exactly the single-write
    // discipline.
    let batch_synced = staged.len() >= 2 && sync_filesystem(&shared.root);
    for put in &mut staged {
        let key = &batch[put.index].0;
        let file = put.file.take().expect("staged file present");
        let synced = if batch_synced {
            Ok(())
        } else {
            file.sync_all()
        };
        drop(file);
        let result = synced.and_then(|()| fs::rename(&put.tmp, &put.dest));
        match result {
            Ok(()) => {
                touch(&mut touched, &put.dir, put.index);
                if put.torn {
                    // The torn bytes are in place; surface the "crash"
                    // and forget the committed frame.
                    committed.remove(key);
                    shared.metrics.write_error.inc();
                    results[put.index] = Err(VirtError::new(
                        ErrorCode::OperationFailed,
                        "state store: injected torn write",
                    ));
                } else {
                    committed.insert(key.clone(), put.content_hash);
                }
            }
            Err(e) => {
                let _ = fs::remove_file(&put.tmp);
                shared.metrics.write_error.inc();
                results[put.index] = Err(io_err(&format!("write {}", key.name), e));
            }
        }
    }
    drop(committed);

    // Phase 4: make the renames durable — they only count once their
    // directory entries are. One dirsync per touched directory per
    // batch; with several directories, a single filesystem-wide sync
    // replaces them all. A failure here fails every record that
    // depended on the directory (unless it already failed for its own
    // reason).
    if touched.len() >= 2 && sync_filesystem(&shared.root) {
        return results;
    }
    for (dir, indices) in touched {
        if let Err(e) = File::open(&dir).and_then(|d| d.sync_all()) {
            shared.note_dirsync_failure(&dir, &e);
            let err = io_err(&format!("sync directory {}", dir.display()), e);
            for index in indices {
                if results[index].is_ok() {
                    results[index] = Err(err.clone());
                }
            }
        }
    }
    results
}

/// Stages one frame: builds header + payload and writes it to a unique
/// temp file in the target directory, *without* fsyncing — the batch
/// fsyncs in its own phase. Fault injection hooks in before any byte
/// moves (`FailWrite`) or by truncating the frame (`TornWrite`; the
/// returned flag tells the caller to report the write as failed after
/// renaming the torn bytes into place).
fn stage_one(
    key: &ObjKey,
    dir: &Path,
    payload: &str,
    seq: u64,
    fault: Option<StoreFault>,
) -> std::io::Result<(PathBuf, File, bool)> {
    let body = payload.as_bytes();
    let header = format!(
        "{HEADER_MAGIC} fnv={:016x} len={}\n",
        fnv1a(body),
        body.len()
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(body);
    let torn = matches!(fault, Some(StoreFault::TornWrite));
    if torn {
        // Simulate the crash the format defends against: a prefix of
        // the record lands in the final location.
        bytes.truncate(bytes.len() / 2);
    }
    fs::create_dir_all(dir)?;
    if let Some(StoreFault::FailWrite) = fault {
        return Err(std::io::Error::other("injected write failure"));
    }
    let tmp = dir.join(format!(".{}.tmp{seq}", key.name));
    let mut f = File::create(&tmp)?;
    if let Err(e) = f.write_all(&bytes) {
        drop(f);
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok((tmp, f, torn))
}

/// Inline (sync-mode) commit of one record: the full pre-pipeline
/// temp → fsync → rename → dirsync cycle on the caller's thread, with
/// dirsync failures surfaced instead of discarded.
fn write_now(shared: &Shared, key: &ObjKey, op: QueuedOp) -> VirtResult<()> {
    // The committed-content map doubles as the writer lock here, so
    // concurrent sync-mode writers cannot interleave.
    let mut committed = shared.committed.lock();
    let dir = shared.dir(key.kind, &key.driver);
    let dest = dir.join(format!("{}.xml", key.name));
    match op {
        QueuedOp::Remove => {
            committed.remove(key);
            match fs::remove_file(&dest) {
                Ok(()) => {
                    if let Err(e) = File::open(&dir).and_then(|d| d.sync_all()) {
                        shared.note_dirsync_failure(&dir, &e);
                        return Err(io_err(&format!("sync directory {}", dir.display()), e));
                    }
                    Ok(())
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => {
                    shared.metrics.write_error.inc();
                    Err(io_err(&format!("remove {}", key.name), e))
                }
            }
        }
        QueuedOp::Put(payload) => {
            let content_hash = fnv1a(payload.as_bytes());
            let seq = shared.writes.get() + 1;
            shared.writes.inc();
            let fault = shared.take_fault(seq);
            let written = stage_one(key, &dir, &payload, seq, fault).and_then(|(tmp, f, torn)| {
                let synced = f.sync_all();
                drop(f);
                if let Err(e) = synced.and_then(|()| fs::rename(&tmp, &dest)) {
                    let _ = fs::remove_file(&tmp);
                    return Err(e);
                }
                Ok(torn)
            });
            match written {
                Ok(torn) => {
                    if let Err(e) = File::open(&dir).and_then(|d| d.sync_all()) {
                        shared.note_dirsync_failure(&dir, &e);
                        return Err(io_err(&format!("sync directory {}", dir.display()), e));
                    }
                    if torn {
                        committed.remove(key);
                        shared.metrics.write_error.inc();
                        return Err(VirtError::new(
                            ErrorCode::OperationFailed,
                            "state store: injected torn write",
                        ));
                    }
                    committed.insert(key.clone(), content_hash);
                    Ok(())
                }
                Err(e) => {
                    shared.metrics.write_error.inc();
                    Err(io_err(&format!("write {}", key.name), e))
                }
            }
        }
    }
}

/// Validates a raw file: header magic, length, checksum. Returns the
/// payload on success.
fn validate(bytes: &[u8]) -> Option<String> {
    let newline = bytes.iter().position(|b| *b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let rest = header.strip_prefix(HEADER_MAGIC)?.trim();
    let mut fnv = None;
    let mut len = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("fnv=") {
            fnv = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = field.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        }
    }
    let (expected_fnv, expected_len) = (fnv?, len?);
    let body = &bytes[newline + 1..];
    if body.len() != expected_len || fnv1a(body) != expected_fnv {
        return None;
    }
    String::from_utf8(body.to_vec()).ok()
}

/// Volatile per-domain status record — what `run/` remembers about a
/// domain between daemon lives: whether it was running, its identity, and
/// the autostart marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainStatus {
    /// Domain name (matches the definition file's name).
    pub name: String,
    /// Stable identity, preserved across daemon restarts.
    pub uuid: Uuid,
    /// Lifecycle state at the last committed update.
    pub state: DomainState,
    /// Start-at-daemon-boot marker.
    pub autostart: bool,
    /// Whether a managed-save image exists.
    pub has_managed_save: bool,
}

fn state_str(state: DomainState) -> &'static str {
    match state {
        DomainState::Shutoff => "shutoff",
        DomainState::Running => "running",
        DomainState::Paused => "paused",
        DomainState::Saved => "saved",
        DomainState::Crashed => "crashed",
    }
}

fn state_from_str(s: &str) -> Option<DomainState> {
    Some(match s {
        "shutoff" => DomainState::Shutoff,
        "running" => DomainState::Running,
        "paused" => DomainState::Paused,
        "saved" => DomainState::Saved,
        "crashed" => DomainState::Crashed,
        _ => return None,
    })
}

impl DomainStatus {
    /// Serializes to the status-record XML document.
    pub fn to_xml_string(&self) -> String {
        let mut el = Element::new("domstatus");
        el.set_attr("state", state_str(self.state));
        el.set_attr("autostart", if self.autostart { "1" } else { "0" });
        el.set_attr(
            "managed_save",
            if self.has_managed_save { "1" } else { "0" },
        );
        el.push_child(Element::with_text("name", self.name.clone()));
        el.push_child(Element::with_text("uuid", self.uuid.to_string()));
        el.to_pretty_string()
    }

    /// Parses a status-record document (schema validation: unknown or
    /// missing fields are errors, so a corrupt-but-checksummed file still
    /// cannot smuggle garbage into recovery).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::XmlError`] on any malformed document.
    pub fn from_xml_str(xml: &str) -> VirtResult<DomainStatus> {
        let bad =
            |what: &str| VirtError::new(ErrorCode::XmlError, format!("domstatus: invalid {what}"));
        let el = Element::parse(xml)
            .map_err(|e| VirtError::new(ErrorCode::XmlError, format!("domstatus: {e}")))?;
        if el.name() != "domstatus" {
            return Err(bad("root element"));
        }
        let name = el
            .child_text("name")
            .ok_or_else(|| bad("name"))?
            .to_string();
        let uuid: Uuid = el
            .child_text("uuid")
            .ok_or_else(|| bad("uuid"))?
            .parse()
            .map_err(|_| bad("uuid"))?;
        let state = el
            .attr("state")
            .and_then(state_from_str)
            .ok_or_else(|| bad("state"))?;
        let flag = |attr: &str| match el.attr(attr) {
            Some("1") => Ok(true),
            Some("0") => Ok(false),
            _ => Err(bad(attr)),
        };
        Ok(DomainStatus {
            name,
            uuid,
            state,
            autostart: flag("autostart")?,
            has_managed_save: flag("managed_save")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "virt-statestore-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn temp_store(tag: &str) -> Arc<StateStore> {
        StateStore::open(temp_dir(tag)).unwrap()
    }

    #[test]
    fn put_get_roundtrip_and_replace() {
        let store = temp_store("rt");
        store
            .put(ObjectKind::Domain, "qemu", "web", "<domain>v1</domain>")
            .unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("<domain>v1</domain>".to_string())
        );
        store
            .put(ObjectKind::Domain, "qemu", "web", "<domain>v2</domain>")
            .unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("<domain>v2</domain>".to_string())
        );
        let all = store.load_all(ObjectKind::Domain, "qemu");
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "web");
    }

    #[test]
    fn kinds_and_drivers_are_isolated() {
        let store = temp_store("iso");
        store
            .put(ObjectKind::Domain, "qemu", "a", "qemu-a")
            .unwrap();
        store.put(ObjectKind::Domain, "xen", "a", "xen-a").unwrap();
        store
            .put(ObjectKind::Network, "qemu", "a", "net-a")
            .unwrap();
        assert_eq!(store.load_all(ObjectKind::Domain, "qemu").len(), 1);
        assert_eq!(
            store.get(ObjectKind::Domain, "xen", "a").unwrap().unwrap(),
            "xen-a"
        );
        assert_eq!(
            store
                .get(ObjectKind::Network, "qemu", "a")
                .unwrap()
                .unwrap(),
            "net-a"
        );
        assert_eq!(store.get(ObjectKind::Pool, "qemu", "a").unwrap(), None);
    }

    #[test]
    fn remove_is_idempotent() {
        let store = temp_store("rm");
        store.put(ObjectKind::Domain, "qemu", "web", "x").unwrap();
        store.remove(ObjectKind::Domain, "qemu", "web").unwrap();
        store.remove(ObjectKind::Domain, "qemu", "web").unwrap();
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
    }

    #[test]
    fn injected_write_failure_preserves_previous_version() {
        let store = temp_store("fail");
        store.put(ObjectKind::Domain, "qemu", "web", "v1").unwrap();
        store.inject_fault(StoreFault::FailWrite, 1);
        let err = store
            .put(ObjectKind::Domain, "qemu", "web", "v2")
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationFailed);
        assert_eq!(store.write_error_total(), 1);
        // The previous committed version is fully intact.
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("v1".to_string())
        );
        // The fault is one-shot: the next write succeeds.
        store.put(ObjectKind::Domain, "qemu", "web", "v3").unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("v3".to_string())
        );
    }

    #[test]
    fn injected_torn_write_is_quarantined_on_read() {
        let store = temp_store("torn");
        store.put(ObjectKind::Domain, "qemu", "web", "v1").unwrap();
        store.inject_fault(StoreFault::TornWrite, 1);
        store
            .put(ObjectKind::Domain, "qemu", "web", "v2-longer-payload")
            .unwrap_err();
        // The torn file is on disk; a validated read refuses to serve it
        // and moves it aside instead of crashing.
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
        assert_eq!(store.quarantined_total(), 1);
        assert!(store.load_all(ObjectKind::Domain, "qemu").is_empty());
        // The quarantined copy is preserved for inspection.
        let quarantine = store.root().join("quarantine");
        assert_eq!(fs::read_dir(quarantine).unwrap().count(), 1);
    }

    #[test]
    fn nth_write_fault_is_deterministic() {
        let store = temp_store("nth");
        store.inject_fault(StoreFault::FailWrite, 3);
        store.put(ObjectKind::Domain, "qemu", "a", "1").unwrap();
        store.put(ObjectKind::Domain, "qemu", "b", "2").unwrap();
        store.put(ObjectKind::Domain, "qemu", "c", "3").unwrap_err();
        store.put(ObjectKind::Domain, "qemu", "d", "4").unwrap();
        assert_eq!(store.load_all(ObjectKind::Domain, "qemu").len(), 3);
    }

    #[test]
    fn hand_truncated_file_quarantines_not_panics() {
        let store = temp_store("trunc");
        store
            .put(
                ObjectKind::Domain,
                "qemu",
                "web",
                "a payload long enough to truncate",
            )
            .unwrap();
        let path = store.root().join("etc/domains/qemu/web.xml");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
        assert_eq!(store.quarantined_total(), 1);
    }

    #[test]
    fn garbage_file_without_header_quarantines() {
        let store = temp_store("garbage");
        let dir = store.root().join("etc/domains/qemu");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("evil.xml"), b"<domain>no header</domain>").unwrap();
        assert!(store.load_all(ObjectKind::Domain, "qemu").is_empty());
        assert_eq!(store.quarantined_total(), 1);
    }

    #[test]
    fn guard_records_roundtrip_through_store() {
        use crate::guard::{GuardPolicy, GuardRecord};
        let store = temp_store("guard");
        let record = GuardRecord {
            domain: "web".to_string(),
            policy: GuardPolicy::KeepRunning { max_restarts: 4 },
        };
        store
            .put(ObjectKind::Guard, "qemu", "web", &record.to_xml_string())
            .unwrap();
        let loaded = store.load_all(ObjectKind::Guard, "qemu");
        assert_eq!(loaded.len(), 1);
        assert_eq!(GuardRecord::from_xml_str(&loaded[0].1).unwrap(), record);
        // Guard records live in their own directory, invisible to the
        // other kinds.
        assert!(store.load_all(ObjectKind::Domain, "qemu").is_empty());
        store.remove(ObjectKind::Guard, "qemu", "web").unwrap();
        assert!(store.load_all(ObjectKind::Guard, "qemu").is_empty());
    }

    #[test]
    fn torn_guard_record_is_quarantined_not_recovered() {
        use crate::guard::{GuardPolicy, GuardRecord};
        let store = temp_store("guard-torn");
        let keep = GuardRecord {
            domain: "web".to_string(),
            policy: GuardPolicy::KeepRunning { max_restarts: 3 },
        };
        let stop = GuardRecord {
            domain: "db".to_string(),
            policy: GuardPolicy::GracefulStop { timeout_ms: 500 },
        };
        store
            .put(ObjectKind::Guard, "qemu", "web", &keep.to_xml_string())
            .unwrap();
        store.inject_fault(StoreFault::TornWrite, 1);
        store
            .put(ObjectKind::Guard, "qemu", "db", &stop.to_xml_string())
            .unwrap_err();
        // The torn record is moved aside; the intact one survives.
        let loaded = store.load_all(ObjectKind::Guard, "qemu");
        assert_eq!(loaded.len(), 1);
        assert_eq!(GuardRecord::from_xml_str(&loaded[0].1).unwrap(), keep);
        assert_eq!(store.quarantined_total(), 1);
        // A checksummed-but-invalid document is also refused: the
        // schema check quarantines what the checksum cannot.
        store
            .put(
                ObjectKind::Guard,
                "qemu",
                "evil",
                "<guard policy=\"bogus\"/>",
            )
            .unwrap();
        let loaded = store.load_all(ObjectKind::Guard, "qemu");
        let parsed: Vec<GuardRecord> = loaded
            .iter()
            .filter_map(|(_, xml)| GuardRecord::from_xml_str(xml).ok())
            .collect();
        assert_eq!(parsed, vec![keep]);
    }

    #[test]
    fn domain_status_roundtrip() {
        let status = DomainStatus {
            name: "web".to_string(),
            uuid: Uuid::generate(),
            state: DomainState::Running,
            autostart: true,
            has_managed_save: false,
        };
        let xml = status.to_xml_string();
        assert_eq!(DomainStatus::from_xml_str(&xml).unwrap(), status);
        assert!(DomainStatus::from_xml_str("<domstatus/>").is_err());
        assert!(DomainStatus::from_xml_str("<wat/>").is_err());
        assert!(DomainStatus::from_xml_str(
            "<domstatus state='sideways' autostart='1' managed_save='0'>\
             <name>x</name><uuid>6ba7b810-9dad-41d1-80b4-00c04fd430c8</uuid></domstatus>"
        )
        .is_err());
    }

    // ---- pipeline behavior ------------------------------------------------

    #[test]
    fn write_behind_burst_to_one_object_coalesces_to_last_frame() {
        let store = temp_store("coalesce");
        for i in 0..50 {
            store.put_behind(
                ObjectKind::DomainStatus,
                "qemu",
                "web",
                &format!("frame-{i}"),
            );
        }
        store.flush().unwrap();
        assert_eq!(
            store.get(ObjectKind::DomainStatus, "qemu", "web").unwrap(),
            Some("frame-49".to_string())
        );
        // The storm cost at most a couple of flush cycles, not 50.
        assert!(
            store.group_commits_total() <= 2,
            "50-write burst took {} cycles",
            store.group_commits_total()
        );
        assert!(store.coalesced_total() >= 48, "{}", store.coalesced_total());
    }

    #[test]
    fn identical_payload_rewrite_is_skipped() {
        let store = temp_store("dedup");
        store
            .put(ObjectKind::Domain, "qemu", "web", "same")
            .unwrap();
        let writes_after_first = store.group_commits_total();
        store
            .put(ObjectKind::Domain, "qemu", "web", "same")
            .unwrap();
        assert_eq!(store.deduped_total(), 1);
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("same".to_string())
        );
        // A genuinely new frame still writes.
        store.put(ObjectKind::Domain, "qemu", "web", "new").unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("new".to_string())
        );
        let _ = writes_after_first;
    }

    #[test]
    fn concurrent_durable_writers_share_flush_cycles() {
        let store = temp_store("group");
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        store
                            .put(
                                ObjectKind::Domain,
                                "qemu",
                                &format!("dom-{t}-{i}"),
                                &format!("payload {t} {i}"),
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.load_all(ObjectKind::Domain, "qemu").len(), 80);
        // Group commit: 80 durable writes from 8 writers must not cost
        // 80 cycles. (The exact count depends on scheduling; the bound
        // proves batching happened.)
        assert!(
            store.group_commits_total() < 80,
            "no batching: {} cycles for 80 writes",
            store.group_commits_total()
        );
    }

    #[test]
    fn flush_surfaces_write_behind_errors() {
        let store = temp_store("behind-err");
        store.inject_fault(StoreFault::FailWrite, 1);
        store.put_behind(ObjectKind::DomainStatus, "qemu", "web", "doomed");
        let err = store.flush().unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationFailed);
        assert_eq!(store.write_error_total(), 1);
        // The pipeline recovers: later writes succeed and flush is clean.
        store.put_behind(ObjectKind::DomainStatus, "qemu", "web", "fine");
        store.flush().unwrap();
        assert_eq!(
            store.get(ObjectKind::DomainStatus, "qemu", "web").unwrap(),
            Some("fine".to_string())
        );
    }

    #[test]
    fn drop_drains_pending_write_behind_records() {
        let dir = temp_dir("drop-drain");
        {
            let store = StateStore::open(&dir).unwrap();
            for i in 0..20 {
                store.put_behind(
                    ObjectKind::DomainStatus,
                    "qemu",
                    &format!("dom{i}"),
                    &format!("status {i}"),
                );
            }
            // No flush: Drop must drain.
        }
        let store = StateStore::open(&dir).unwrap();
        assert_eq!(store.load_all(ObjectKind::DomainStatus, "qemu").len(), 20);
    }

    #[test]
    fn sync_mode_matches_pipeline_semantics() {
        let store = StateStore::open_with_options(
            temp_dir("sync-mode"),
            StoreOptions {
                sync_writes: true,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.put(ObjectKind::Domain, "qemu", "web", "v1").unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "web").unwrap(),
            Some("v1".to_string())
        );
        store.inject_fault(StoreFault::FailWrite, 1);
        store
            .put(ObjectKind::Domain, "qemu", "web", "v2")
            .unwrap_err();
        assert_eq!(store.write_error_total(), 1);
        store.remove(ObjectKind::Domain, "qemu", "web").unwrap();
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "web").unwrap(), None);
        store.flush().unwrap();
        assert_eq!(store.group_commits_total(), 0);
    }

    #[test]
    fn interleaved_put_and_remove_coalesce_to_final_state() {
        let store = temp_store("final-state");
        store.put_behind(ObjectKind::Domain, "qemu", "a", "a1");
        store.remove_behind(ObjectKind::Domain, "qemu", "a");
        store.put_behind(ObjectKind::Domain, "qemu", "a", "a2");
        store.put_behind(ObjectKind::Domain, "qemu", "b", "b1");
        store.remove_behind(ObjectKind::Domain, "qemu", "b");
        store.flush().unwrap();
        assert_eq!(
            store.get(ObjectKind::Domain, "qemu", "a").unwrap(),
            Some("a2".to_string())
        );
        assert_eq!(store.get(ObjectKind::Domain, "qemu", "b").unwrap(), None);
    }

    proptest::proptest! {
        /// Coalescing is last-writer-wins per object: any interleaving
        /// of puts and removes to one object, through any mix of the
        /// durable and write-behind paths, leaves exactly the final
        /// operation's frame on disk.
        #[test]
        fn coalesced_writes_always_land_the_last_frame(
            ops in proptest::collection::vec(
                (proptest::bool::ANY, proptest::bool::ANY, 0u32..1000), 1..40
            )
        ) {
            let store = temp_store("prop");
            let mut expected: Option<String> = None;
            for (durable, is_put, tag) in &ops {
                if *is_put {
                    let payload = format!("frame-{tag}");
                    if *durable {
                        store.put(ObjectKind::DomainStatus, "qemu", "obj", &payload).unwrap();
                    } else {
                        store.put_behind(ObjectKind::DomainStatus, "qemu", "obj", &payload);
                    }
                    expected = Some(payload);
                } else {
                    if *durable {
                        store.remove(ObjectKind::DomainStatus, "qemu", "obj").unwrap();
                    } else {
                        store.remove_behind(ObjectKind::DomainStatus, "qemu", "obj");
                    }
                    expected = None;
                }
            }
            store.flush().unwrap();
            let on_disk = store.get(ObjectKind::DomainStatus, "qemu", "obj").unwrap();
            proptest::prop_assert_eq!(on_disk, expected);
            proptest::prop_assert_eq!(store.quarantined_total(), 0);
        }
    }
}

//! The logging subsystem: levels, per-module filters, and outputs.
//!
//! Follows libvirt's design:
//!
//! - four levels forming an inclusive hierarchy (`debug` ⊃ `info` ⊃
//!   `warning` ⊃ `error`);
//! - **filters** of the form `level:module_match` that override the global
//!   level for modules whose name contains the match string;
//! - **outputs** of the form `level:kind[:data]` restricting which
//!   messages reach each destination (`stderr`, `file:<path>`,
//!   `journald`, and a capturing `buffer` sink for tests and the daemon's
//!   admin interface).
//!
//! Settings changes are applied with a read-copy-update swap: the logger
//! holds an `Arc<LogSettings>` behind a lock taken only for the pointer
//! read/replace, so writers never stall concurrent loggers mid-message
//! and a half-applied filter set is never observable — the property whose
//! absence causes the lost-log-consistency problem described in the
//! libvirt literature.

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{ErrorCode, VirtError, VirtResult};

/// Message priority, lowest (most verbose) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    /// Everything.
    Debug = 1,
    /// Informational and worse.
    Info = 2,
    /// Warnings and errors.
    Warning = 3,
    /// Errors only.
    Error = 4,
}

impl LogLevel {
    /// Parses the numeric form used in filter/output strings.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] outside 1–4.
    pub fn from_number(n: u32) -> VirtResult<LogLevel> {
        match n {
            1 => Ok(LogLevel::Debug),
            2 => Ok(LogLevel::Info),
            3 => Ok(LogLevel::Warning),
            4 => Ok(LogLevel::Error),
            other => Err(VirtError::new(
                ErrorCode::InvalidArg,
                format!("logging level {other} out of range 1-4"),
            )),
        }
    }

    /// The numeric form.
    pub fn as_number(self) -> u32 {
        self as u32
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warning => "warning",
            LogLevel::Error => "error",
        };
        f.write_str(s)
    }
}

/// A per-module level override: `level:module_match`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogFilter {
    /// Minimum level for matching modules.
    pub level: LogLevel,
    /// Substring matched against the message's module name.
    pub module_match: String,
}

impl FromStr for LogFilter {
    type Err = VirtError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |why: &str| VirtError::new(ErrorCode::InvalidArg, format!("filter '{s}': {why}"));
        let (level_str, module) = s.split_once(':').ok_or_else(|| bad("missing ':'"))?;
        let number = level_str
            .parse::<u32>()
            .map_err(|_| bad("level is not a number"))?;
        let level = LogLevel::from_number(number)?;
        if module.is_empty() {
            return Err(bad("empty module match"));
        }
        Ok(LogFilter {
            level,
            module_match: module.to_string(),
        })
    }
}

impl fmt::Display for LogFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.level.as_number(), self.module_match)
    }
}

/// Where matching messages go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputKind {
    /// Standard error.
    Stderr,
    /// Append to a file at the given path.
    File(String),
    /// A journald-style destination (modeled as a named in-memory journal).
    Journald,
    /// A shared in-memory buffer, inspectable by tests and the admin API.
    Buffer,
}

/// A destination plus the minimum level it accepts: `level:kind[:data]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogOutput {
    /// Minimum level this output accepts.
    pub level: LogLevel,
    /// The destination.
    pub kind: OutputKind,
}

impl FromStr for LogOutput {
    type Err = VirtError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |why: &str| VirtError::new(ErrorCode::InvalidArg, format!("output '{s}': {why}"));
        let mut parts = s.splitn(3, ':');
        let level_str = parts.next().ok_or_else(|| bad("empty"))?;
        let number = level_str
            .parse::<u32>()
            .map_err(|_| bad("level is not a number"))?;
        let level = LogLevel::from_number(number)?;
        let kind_str = parts.next().ok_or_else(|| bad("missing output kind"))?;
        let data = parts.next();
        let kind = match (kind_str, data) {
            ("stderr", None) => OutputKind::Stderr,
            ("stderr", Some(_)) => return Err(bad("stderr takes no data")),
            ("journald", None) => OutputKind::Journald,
            ("journald", Some(_)) => return Err(bad("journald takes no data")),
            ("buffer", None) => OutputKind::Buffer,
            ("buffer", Some(_)) => return Err(bad("buffer takes no data")),
            ("file", Some(path)) if path.starts_with('/') => OutputKind::File(path.to_string()),
            ("file", Some(_)) => return Err(bad("file path must be absolute")),
            ("file", None) => return Err(bad("file output requires a path")),
            (other, _) => return Err(bad(&format!("unknown output kind '{other}'"))),
        };
        Ok(LogOutput { level, kind })
    }
}

impl fmt::Display for LogOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            OutputKind::Stderr => write!(f, "{}:stderr", self.level.as_number()),
            OutputKind::Journald => write!(f, "{}:journald", self.level.as_number()),
            OutputKind::Buffer => write!(f, "{}:buffer", self.level.as_number()),
            OutputKind::File(path) => write!(f, "{}:file:{}", self.level.as_number(), path),
        }
    }
}

/// An immutable snapshot of the complete logging configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogSettings {
    /// Global minimum level.
    pub level: LogLevel,
    /// Per-module overrides, applied first-match-wins.
    pub filters: Vec<LogFilter>,
    /// Destinations.
    pub outputs: Vec<LogOutput>,
}

impl LogSettings {
    /// libvirt-like defaults: level `error`, no filters, stderr output.
    pub fn new() -> Self {
        LogSettings {
            level: LogLevel::Error,
            filters: Vec::new(),
            outputs: vec![LogOutput {
                level: LogLevel::Debug,
                kind: OutputKind::Stderr,
            }],
        }
    }

    /// Parses a space-separated filter list (`"3:util 4:rpc"`).
    ///
    /// # Errors
    ///
    /// The first malformed entry's error; nothing is partially applied.
    pub fn parse_filters(s: &str) -> VirtResult<Vec<LogFilter>> {
        s.split_whitespace().map(str::parse).collect()
    }

    /// Parses a space-separated output list.
    ///
    /// # Errors
    ///
    /// The first malformed entry's error; nothing is partially applied.
    pub fn parse_outputs(s: &str) -> VirtResult<Vec<LogOutput>> {
        s.split_whitespace().map(str::parse).collect()
    }

    /// Formats the filters back to the string form.
    pub fn filters_string(&self) -> String {
        self.filters
            .iter()
            .map(LogFilter::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Formats the outputs back to the string form.
    pub fn outputs_string(&self) -> String {
        self.outputs
            .iter()
            .map(LogOutput::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The level effective for `module`: the first matching filter's
    /// level, falling back to the global level.
    pub fn effective_level(&self, module: &str) -> LogLevel {
        self.filters
            .iter()
            .find(|f| module.contains(f.module_match.as_str()))
            .map(|f| f.level)
            .unwrap_or(self.level)
    }
}

impl Default for LogSettings {
    fn default() -> Self {
        LogSettings::new()
    }
}

/// One emitted record, as captured by buffer/journald sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Severity.
    pub level: LogLevel,
    /// Module that emitted the record.
    pub module: String,
    /// The message text.
    pub message: String,
    /// The RPC request being serviced when the record was emitted, if
    /// any — picked up from the thread's tracing span so every layer a
    /// dispatch touches logs with the same `c<client>.s<serial>` id.
    pub request: Option<crate::metrics::trace::RequestId>,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.request {
            Some(id) => write!(
                f,
                "{}: {}: [{}] {}",
                self.level, self.module, id, self.message
            ),
            None => write!(f, "{}: {}: {}", self.level, self.module, self.message),
        }
    }
}

/// A logger instance: RCU-swapped settings plus capturing sinks.
///
/// Each daemon owns one `Logger`; libraries log through a reference.
///
/// # Examples
///
/// ```
/// use virt_core::log::{Logger, LogLevel, LogSettings};
///
/// let logger = Logger::new();
/// let mut settings = LogSettings::new();
/// settings.level = LogLevel::Info;
/// settings.outputs = LogSettings::parse_outputs("1:buffer").unwrap();
/// logger.redefine(settings).unwrap();
///
/// logger.info("driver.qemu", "domain started");
/// logger.debug("driver.qemu", "suppressed at info level");
/// assert_eq!(logger.captured().len(), 1);
/// ```
#[derive(Debug)]
pub struct Logger {
    settings: RwLock<Arc<LogSettings>>,
    buffer: Mutex<Vec<LogRecord>>,
    journal: Mutex<Vec<LogRecord>>,
    /// Open file handles, keyed by path — files are opened once and
    /// appended through, like a real daemon keeps its log fd.
    files: Mutex<std::collections::HashMap<String, std::fs::File>>,
}

impl Logger {
    /// Creates a logger with default settings.
    pub fn new() -> Self {
        Logger {
            settings: RwLock::new(Arc::new(LogSettings::new())),
            buffer: Mutex::new(Vec::new()),
            journal: Mutex::new(Vec::new()),
            files: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// A snapshot of the current settings.
    pub fn settings(&self) -> Arc<LogSettings> {
        Arc::clone(&self.settings.read())
    }

    /// Atomically replaces the settings (the RCU swap). Every message
    /// observes either the old or the new settings in full.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidArg`] when the settings reference a file output
    /// whose parent directory does not exist (validated up front so a
    /// failed redefine leaves the old settings in force).
    pub fn redefine(&self, settings: LogSettings) -> VirtResult<()> {
        for output in &settings.outputs {
            if let OutputKind::File(path) = &output.kind {
                let parent = std::path::Path::new(path)
                    .parent()
                    .filter(|p| !p.as_os_str().is_empty())
                    .ok_or_else(|| {
                        VirtError::new(ErrorCode::InvalidArg, format!("bad log file path '{path}'"))
                    })?;
                if !parent.exists() {
                    return Err(VirtError::new(
                        ErrorCode::InvalidArg,
                        format!("log directory '{}' does not exist", parent.display()),
                    ));
                }
            }
        }
        *self.settings.write() = Arc::new(settings);
        Ok(())
    }

    /// Changes only the global level, keeping filters and outputs.
    pub fn set_level(&self, level: LogLevel) {
        let mut new_settings = (*self.settings()).clone();
        new_settings.level = level;
        *self.settings.write() = Arc::new(new_settings);
    }

    /// Emits a record.
    pub fn log(&self, level: LogLevel, module: &str, message: &str) {
        // Readers share the lock, so concurrent loggers proceed in
        // parallel; a redefine waits for in-flight messages and then swaps
        // the Arc — no message ever observes a half-applied settings set.
        let settings = self.settings.read();
        if level < settings.effective_level(module) {
            return;
        }
        let record = LogRecord {
            level,
            module: module.to_string(),
            message: message.to_string(),
            request: crate::metrics::trace::current(),
        };
        for output in &settings.outputs {
            if level < output.level {
                continue;
            }
            match &output.kind {
                OutputKind::Stderr => {
                    let _ = writeln!(std::io::stderr(), "{record}");
                }
                OutputKind::File(path) => {
                    let mut files = self.files.lock();
                    let file = match files.entry(path.clone()) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            match std::fs::OpenOptions::new()
                                .append(true)
                                .create(true)
                                .open(path)
                            {
                                Ok(file) => e.insert(file),
                                Err(_) => continue,
                            }
                        }
                    };
                    let _ = writeln!(file, "{record}");
                }
                OutputKind::Journald => push_capped(&mut self.journal.lock(), record.clone()),
                OutputKind::Buffer => push_capped(&mut self.buffer.lock(), record.clone()),
            }
        }
    }

    /// Convenience: debug-level record.
    pub fn debug(&self, module: &str, message: &str) {
        self.log(LogLevel::Debug, module, message);
    }

    /// Convenience: info-level record.
    pub fn info(&self, module: &str, message: &str) {
        self.log(LogLevel::Info, module, message);
    }

    /// Convenience: warning-level record.
    pub fn warning(&self, module: &str, message: &str) {
        self.log(LogLevel::Warning, module, message);
    }

    /// Convenience: error-level record.
    pub fn error(&self, module: &str, message: &str) {
        self.log(LogLevel::Error, module, message);
    }

    /// Records captured by `buffer` outputs.
    pub fn captured(&self) -> Vec<LogRecord> {
        self.buffer.lock().clone()
    }

    /// Records captured by `journald` outputs.
    pub fn journal(&self) -> Vec<LogRecord> {
        self.journal.lock().clone()
    }

    /// Clears both capturing sinks.
    pub fn clear_captured(&self) {
        self.buffer.lock().clear();
        self.journal.lock().clear();
    }
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new()
    }
}

/// Capacity of the capturing sinks; oldest records are dropped first, so
/// a long-running daemon's in-memory log stays bounded.
pub const CAPTURE_CAP: usize = 10_000;

fn push_capped(sink: &mut Vec<LogRecord>, record: LogRecord) {
    if sink.len() >= CAPTURE_CAP {
        // Rare in practice; drain in one block to amortize the shift.
        sink.drain(..CAPTURE_CAP / 2);
    }
    sink.push(record);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffered_logger(level: LogLevel) -> Logger {
        let logger = Logger::new();
        let settings = LogSettings {
            level,
            filters: Vec::new(),
            outputs: vec![LogOutput {
                level: LogLevel::Debug,
                kind: OutputKind::Buffer,
            }],
        };
        logger.redefine(settings).unwrap();
        logger
    }

    #[test]
    fn level_numbers_round_trip() {
        for n in 1..=4 {
            assert_eq!(LogLevel::from_number(n).unwrap().as_number(), n);
        }
        assert!(LogLevel::from_number(0).is_err());
        assert!(LogLevel::from_number(5).is_err());
    }

    #[test]
    fn level_hierarchy_is_inclusive() {
        let logger = buffered_logger(LogLevel::Warning);
        logger.debug("m", "no");
        logger.info("m", "no");
        logger.warning("m", "yes");
        logger.error("m", "yes");
        let captured = logger.captured();
        assert_eq!(captured.len(), 2);
        assert_eq!(captured[0].level, LogLevel::Warning);
        assert_eq!(captured[1].level, LogLevel::Error);
    }

    #[test]
    fn filter_parse_round_trip() {
        let filter: LogFilter = "3:util.object".parse().unwrap();
        assert_eq!(filter.level, LogLevel::Warning);
        assert_eq!(filter.module_match, "util.object");
        assert_eq!(filter.to_string(), "3:util.object");
    }

    #[test]
    fn malformed_filters_rejected() {
        for bad in ["", "3", ":util", "x:util", "0:util", "5:util", "3:"] {
            assert!(bad.parse::<LogFilter>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn output_parse_round_trip() {
        for text in [
            "1:stderr",
            "3:journald",
            "2:buffer",
            "1:file:/var/log/virtd.log",
        ] {
            let output: LogOutput = text.parse().unwrap();
            assert_eq!(output.to_string(), text);
        }
    }

    #[test]
    fn malformed_outputs_rejected() {
        for bad in [
            "",
            "1",
            "1:tape",
            "9:stderr",
            "1:file",
            "1:file:relative/path",
            "1:stderr:extra",
            "1:journald:extra",
        ] {
            assert!(bad.parse::<LogOutput>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn filters_override_global_level() {
        let logger = buffered_logger(LogLevel::Error);
        let mut settings = (*logger.settings()).clone();
        settings.filters = LogSettings::parse_filters("1:driver.qemu 3:rpc").unwrap();
        logger.redefine(settings).unwrap();

        logger.debug("driver.qemu", "visible via filter");
        logger.debug("rpc.server", "hidden: filter says warning+");
        logger.warning("rpc.server", "visible via filter");
        logger.info("other.module", "hidden: global error level");
        logger.error("other.module", "visible globally");

        let captured: Vec<String> = logger
            .captured()
            .iter()
            .map(|r| r.message.clone())
            .collect();
        assert_eq!(
            captured,
            vec![
                "visible via filter",
                "visible via filter",
                "visible globally"
            ]
        );
    }

    #[test]
    fn first_matching_filter_wins() {
        let settings = LogSettings {
            level: LogLevel::Error,
            filters: LogSettings::parse_filters("4:util.object 1:util").unwrap(),
            outputs: Vec::new(),
        };
        assert_eq!(settings.effective_level("util.object"), LogLevel::Error);
        assert_eq!(settings.effective_level("util.file"), LogLevel::Debug);
        assert_eq!(settings.effective_level("rpc"), LogLevel::Error);
    }

    #[test]
    fn per_output_level_restricts() {
        let logger = Logger::new();
        let settings = LogSettings {
            level: LogLevel::Debug,
            filters: Vec::new(),
            outputs: vec![
                LogOutput {
                    level: LogLevel::Error,
                    kind: OutputKind::Buffer,
                },
                LogOutput {
                    level: LogLevel::Debug,
                    kind: OutputKind::Journald,
                },
            ],
        };
        logger.redefine(settings).unwrap();
        logger.info("m", "info msg");
        logger.error("m", "error msg");
        assert_eq!(logger.captured().len(), 1, "buffer takes errors only");
        assert_eq!(logger.journal().len(), 2, "journal takes everything");
    }

    #[test]
    fn file_output_appends() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("virt-log-test-{}.log", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let logger = Logger::new();
        let settings = LogSettings {
            level: LogLevel::Debug,
            filters: Vec::new(),
            outputs: vec![LogOutput {
                level: LogLevel::Debug,
                kind: OutputKind::File(path_str.clone()),
            }],
        };
        logger.redefine(settings).unwrap();
        logger.info("mod", "line one");
        logger.info("mod", "line two");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        assert!(contents.contains("line two"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn redefine_with_missing_log_dir_fails_atomically() {
        let logger = buffered_logger(LogLevel::Debug);
        let before = logger.settings();
        let bad = LogSettings {
            level: LogLevel::Debug,
            filters: Vec::new(),
            outputs: LogSettings::parse_outputs("1:file:/no/such/dir/x.log").unwrap(),
        };
        let err = logger.redefine(bad).unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidArg);
        assert_eq!(*logger.settings(), *before, "old settings remain in force");
    }

    #[test]
    fn set_level_keeps_filters_and_outputs() {
        let logger = buffered_logger(LogLevel::Error);
        let mut settings = (*logger.settings()).clone();
        settings.filters = LogSettings::parse_filters("2:rpc").unwrap();
        logger.redefine(settings).unwrap();
        logger.set_level(LogLevel::Debug);
        let after = logger.settings();
        assert_eq!(after.level, LogLevel::Debug);
        assert_eq!(after.filters.len(), 1);
        assert_eq!(after.outputs.len(), 1);
    }

    #[test]
    fn settings_strings_round_trip() {
        let settings = LogSettings {
            level: LogLevel::Info,
            filters: LogSettings::parse_filters("3:util 4:rpc").unwrap(),
            outputs: LogSettings::parse_outputs("1:buffer 3:stderr").unwrap(),
        };
        assert_eq!(settings.filters_string(), "3:util 4:rpc");
        assert_eq!(settings.outputs_string(), "1:buffer 3:stderr");
        assert_eq!(
            LogSettings::parse_filters(&settings.filters_string()).unwrap(),
            settings.filters
        );
        assert_eq!(
            LogSettings::parse_outputs(&settings.outputs_string()).unwrap(),
            settings.outputs
        );
    }

    #[test]
    fn parse_lists_fail_atomically() {
        assert!(LogSettings::parse_filters("3:good 9:bad").is_err());
        assert!(LogSettings::parse_outputs("1:stderr 1:tape").is_err());
        assert!(LogSettings::parse_filters("").unwrap().is_empty());
    }

    #[test]
    fn records_carry_the_active_request_id() {
        use crate::metrics::trace::{self, RequestId};
        let logger = buffered_logger(LogLevel::Debug);
        logger.info("rpc", "outside any request");
        {
            let _span = trace::enter(RequestId::new(7, 42));
            logger.info("rpc", "inside a request");
        }
        logger.info("rpc", "after the request");
        let captured = logger.captured();
        assert_eq!(captured[0].request, None);
        assert_eq!(captured[1].request, Some(RequestId::new(7, 42)));
        assert_eq!(captured[2].request, None);
        assert!(captured[1].to_string().contains("[c7.s42]"));
    }

    #[test]
    fn concurrent_logging_during_redefines_never_tears() {
        let logger = Arc::new(buffered_logger(LogLevel::Debug));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // The writers must be running before the redefine storm starts, or
        // a fast main thread finishes all redefines first and the
        // `total > 0` check below races to zero.
        let barrier = Arc::new(std::sync::Barrier::new(5));

        let writers: Vec<_> = (0..4)
            .map(|t| {
                let logger = Arc::clone(&logger);
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut n = 0u64;
                    while n == 0 || !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        logger.debug(&format!("mod{t}"), "msg");
                        n += 1;
                    }
                    n
                })
            })
            .collect();

        barrier.wait();
        for i in 0..200 {
            let mut settings = (*logger.settings()).clone();
            settings.filters =
                LogSettings::parse_filters(&format!("{}:mod1", (i % 4) + 1)).unwrap();
            logger.redefine(settings).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0);
        // Every captured record is complete (no torn strings).
        for record in logger.captured() {
            assert_eq!(record.message, "msg");
            assert!(record.module.starts_with("mod"));
        }
    }

    #[test]
    fn filter_and_output_strings_round_trip_through_fromstr() {
        // Display → FromStr → Display is the identity for every valid
        // combination of level and destination.
        for level in 1..=4u32 {
            let filter: LogFilter = format!("{level}:daemon.rpc").parse().unwrap();
            assert_eq!(
                filter.to_string().parse::<LogFilter>().unwrap(),
                filter,
                "filter level {level}"
            );
            for kind in ["stderr", "journald", "buffer", "file:/var/log/v.log"] {
                let text = format!("{level}:{kind}");
                let output: LogOutput = text.parse().unwrap();
                assert_eq!(output.to_string(), text);
                assert_eq!(output.to_string().parse::<LogOutput>().unwrap(), output);
            }
        }
    }

    #[test]
    fn parse_errors_name_the_offending_input_and_reason() {
        // A rejected `level:kind:data` form must say *what* was wrong,
        // not just fail — the admin CLI surfaces these verbatim.
        let err = |s: &str| s.parse::<LogOutput>().unwrap_err().to_string();
        assert!(
            err("1:tape").contains("unknown output kind 'tape'"),
            "{}",
            err("1:tape")
        );
        assert!(err("1:tape").contains("'1:tape'"), "error names the input");
        assert!(err("x:stderr").contains("level is not a number"));
        assert!(err("9:stderr").contains("out of range"));
        assert!(err("1:file").contains("requires a path"));
        assert!(err("1:file:rel/path").contains("must be absolute"));
        assert!(err("1:stderr:extra").contains("stderr takes no data"));
        assert!(err("1:journald:x").contains("journald takes no data"));
        assert!(err("1").contains("missing output kind"));

        let ferr = |s: &str| s.parse::<LogFilter>().unwrap_err().to_string();
        assert!(ferr("3util").contains("missing ':'"));
        assert!(ferr("3:").contains("empty module match"));
        assert!(ferr("q:util").contains("level is not a number"));
    }

    #[test]
    fn settings_swap_is_atomic_under_a_reader_thread() {
        // RCU property: a reader always sees settings wholly from one
        // redefine — never level from A with filters from B.
        let logger = Arc::new(buffered_logger(LogLevel::Debug));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let make = |n: u32| {
            let level = LogLevel::from_number((n % 4) + 1).unwrap();
            LogSettings {
                level,
                filters: LogSettings::parse_filters(&format!(
                    "{}:mod{}",
                    level.as_number(),
                    level.as_number()
                ))
                .unwrap(),
                outputs: LogSettings::parse_outputs(&format!("{}:buffer", level.as_number()))
                    .unwrap(),
            }
        };
        // Move off the constructor defaults before the reader starts, so
        // every observable generation carries the consistency markers.
        logger.redefine(make(0)).unwrap();
        let reader = {
            let logger = Arc::clone(&logger);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let settings = logger.settings();
                    // Internal consistency markers: each generation uses
                    // its own level number in every field.
                    let n = settings.level.as_number();
                    assert_eq!(settings.filters.len(), 1, "whole generations only");
                    assert_eq!(settings.filters[0].to_string(), format!("{n}:mod{n}"));
                    assert_eq!(settings.outputs[0].to_string(), format!("{n}:buffer"));
                    observed += 1;
                }
                observed
            })
        };
        for n in 0..500 {
            logger.redefine(make(n)).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0);
    }
}

//! The remote protocol: procedure numbers and wire record types.
//!
//! Shared by the remote driver (client side) and `virtd`'s dispatch table
//! (server side). All records are XDR structs; growth headroom comes from
//! typed-parameter lists rather than struct changes, as in libvirt.

use virt_rpc::xdr::{XdrDecode, XdrEncode};
use virt_rpc::xdr_struct;

use crate::driver::{
    DomainRecord, DomainState, MigrationOptions, MigrationReport, NetworkRecord, NodeInfo,
    PoolRecord, VolumeRecord,
};
use crate::event::{DomainEvent, DomainEventKind};
use crate::guard::{GuardPolicy, GuardStatus};
use crate::job::{JobKind, JobState, JobStats};
use crate::typedparam::TypedParamList;
use crate::uuid::Uuid;

/// Procedure numbers of the remote (hypervisor) program.
pub mod proc {
    /// Open a driver connection on the daemon.
    pub const OPEN: u32 = 1;
    /// Close the driver connection.
    pub const CLOSE: u32 = 2;
    /// Authenticate (SASL-plain style) before OPEN on daemons requiring it.
    pub const AUTH: u32 = 6;
    /// Host name.
    pub const GET_HOSTNAME: u32 = 3;
    /// Capabilities XML.
    pub const GET_CAPABILITIES: u32 = 4;
    /// Node facts.
    pub const NODE_INFO: u32 = 5;

    /// All domains.
    pub const LIST_DOMAINS: u32 = 10;
    /// Lookup by name.
    pub const DOMAIN_LOOKUP_NAME: u32 = 11;
    /// Lookup by id.
    pub const DOMAIN_LOOKUP_ID: u32 = 12;
    /// Lookup by UUID.
    pub const DOMAIN_LOOKUP_UUID: u32 = 13;
    /// Define from XML.
    pub const DOMAIN_DEFINE_XML: u32 = 14;
    /// Create (transient) from XML.
    pub const DOMAIN_CREATE_XML: u32 = 15;
    /// Undefine.
    pub const DOMAIN_UNDEFINE: u32 = 16;
    /// Start.
    pub const DOMAIN_START: u32 = 17;
    /// Graceful shutdown.
    pub const DOMAIN_SHUTDOWN: u32 = 18;
    /// Reboot.
    pub const DOMAIN_REBOOT: u32 = 19;
    /// Hard power-off.
    pub const DOMAIN_DESTROY: u32 = 20;
    /// Pause.
    pub const DOMAIN_SUSPEND: u32 = 21;
    /// Unpause.
    pub const DOMAIN_RESUME: u32 = 22;
    /// Managed save.
    pub const DOMAIN_SAVE: u32 = 23;
    /// Restore from managed save.
    pub const DOMAIN_RESTORE: u32 = 24;
    /// Balloon memory.
    pub const DOMAIN_SET_MEMORY: u32 = 25;
    /// vCPU hotplug.
    pub const DOMAIN_SET_VCPUS: u32 = 26;
    /// Attach device XML.
    pub const DOMAIN_ATTACH_DEVICE: u32 = 27;
    /// Detach device by target.
    pub const DOMAIN_DETACH_DEVICE: u32 = 28;
    /// Take snapshot.
    pub const DOMAIN_SNAPSHOT: u32 = 29;
    /// List snapshots.
    pub const DOMAIN_LIST_SNAPSHOTS: u32 = 30;
    /// Toggle autostart.
    pub const DOMAIN_SET_AUTOSTART: u32 = 31;
    /// Dump XML.
    pub const DOMAIN_DUMP_XML: u32 = 32;
    /// Revert to snapshot.
    pub const DOMAIN_SNAPSHOT_REVERT: u32 = 33;
    /// Delete snapshot.
    pub const DOMAIN_SNAPSHOT_DELETE: u32 = 34;
    /// Current/most-recent job stats of a domain.
    pub const DOMAIN_GET_JOB_STATS: u32 = 35;
    /// Cancel the running job on a domain.
    pub const DOMAIN_ABORT_JOB: u32 = 36;
    /// Bulk stats of every domain in one round-trip.
    pub const CONNECT_GET_ALL_DOMAIN_STATS: u32 = 37;
    /// Read the autostart flag.
    pub const DOMAIN_GET_AUTOSTART: u32 = 38;
    /// Force a guest crash (chaos/test tooling).
    pub const DOMAIN_CRASH: u32 = 39;

    /// Migration phase 1 (source).
    pub const MIGRATE_BEGIN: u32 = 40;
    /// Migration phase 2 (destination).
    pub const MIGRATE_PREPARE: u32 = 41;
    /// Migration phase 3 (source).
    pub const MIGRATE_PERFORM: u32 = 42;
    /// Migration phase 4 (destination).
    pub const MIGRATE_FINISH: u32 = 43;
    /// Migration phase 5 (source).
    pub const MIGRATE_CONFIRM: u32 = 44;
    /// Migration abort (destination rollback).
    pub const MIGRATE_ABORT: u32 = 45;

    /// Pool names.
    pub const LIST_POOLS: u32 = 50;
    /// Pool facts.
    pub const POOL_INFO: u32 = 51;
    /// Define pool from XML.
    pub const POOL_DEFINE_XML: u32 = 52;
    /// Start pool.
    pub const POOL_START: u32 = 53;
    /// Stop pool.
    pub const POOL_STOP: u32 = 54;
    /// Undefine pool.
    pub const POOL_UNDEFINE: u32 = 55;
    /// Volume names.
    pub const LIST_VOLUMES: u32 = 56;
    /// Volume facts.
    pub const VOLUME_INFO: u32 = 57;
    /// Create volume from XML.
    pub const VOLUME_CREATE_XML: u32 = 58;
    /// Delete volume.
    pub const VOLUME_DELETE: u32 = 59;
    /// Resize volume.
    pub const VOLUME_RESIZE: u32 = 60;
    /// Clone volume.
    pub const VOLUME_CLONE: u32 = 61;

    /// Network names.
    pub const LIST_NETWORKS: u32 = 70;
    /// Network facts.
    pub const NETWORK_INFO: u32 = 71;
    /// Define network from XML.
    pub const NETWORK_DEFINE_XML: u32 = 72;
    /// Start network.
    pub const NETWORK_START: u32 = 73;
    /// Stop network.
    pub const NETWORK_STOP: u32 = 74;
    /// Undefine network.
    pub const NETWORK_UNDEFINE: u32 = 75;

    /// Subscribe to lifecycle events.
    pub const EVENT_REGISTER: u32 = 80;
    /// Unsubscribe from lifecycle events.
    pub const EVENT_DEREGISTER: u32 = 81;
    /// Server→client lifecycle event message.
    pub const EVENT_LIFECYCLE: u32 = 90;
    /// Server→client job-lifecycle event message.
    pub const EVENT_DOMAIN_JOB: u32 = 91;

    /// Install (or replace) an availability guard on a domain.
    pub const GUARD_SET: u32 = 92;
    /// Remove a domain's guard.
    pub const GUARD_REMOVE: u32 = 93;
    /// Status of every defined guard.
    pub const GUARD_LIST: u32 = 94;
    /// Status of one domain's guard.
    pub const GUARD_STATUS: u32 = 95;

    /// Every callable procedure with its symbolic name. The daemon's
    /// metrics layer pre-builds its per-procedure latency histograms from
    /// this table; keep it in sync when adding procedures.
    pub const ALL: &[(u32, &str)] = &[
        (OPEN, "OPEN"),
        (CLOSE, "CLOSE"),
        (AUTH, "AUTH"),
        (GET_HOSTNAME, "GET_HOSTNAME"),
        (GET_CAPABILITIES, "GET_CAPABILITIES"),
        (NODE_INFO, "NODE_INFO"),
        (LIST_DOMAINS, "LIST_DOMAINS"),
        (DOMAIN_LOOKUP_NAME, "DOMAIN_LOOKUP_NAME"),
        (DOMAIN_LOOKUP_ID, "DOMAIN_LOOKUP_ID"),
        (DOMAIN_LOOKUP_UUID, "DOMAIN_LOOKUP_UUID"),
        (DOMAIN_DEFINE_XML, "DOMAIN_DEFINE_XML"),
        (DOMAIN_CREATE_XML, "DOMAIN_CREATE_XML"),
        (DOMAIN_UNDEFINE, "DOMAIN_UNDEFINE"),
        (DOMAIN_START, "DOMAIN_START"),
        (DOMAIN_SHUTDOWN, "DOMAIN_SHUTDOWN"),
        (DOMAIN_REBOOT, "DOMAIN_REBOOT"),
        (DOMAIN_DESTROY, "DOMAIN_DESTROY"),
        (DOMAIN_SUSPEND, "DOMAIN_SUSPEND"),
        (DOMAIN_RESUME, "DOMAIN_RESUME"),
        (DOMAIN_SAVE, "DOMAIN_SAVE"),
        (DOMAIN_RESTORE, "DOMAIN_RESTORE"),
        (DOMAIN_SET_MEMORY, "DOMAIN_SET_MEMORY"),
        (DOMAIN_SET_VCPUS, "DOMAIN_SET_VCPUS"),
        (DOMAIN_ATTACH_DEVICE, "DOMAIN_ATTACH_DEVICE"),
        (DOMAIN_DETACH_DEVICE, "DOMAIN_DETACH_DEVICE"),
        (DOMAIN_SNAPSHOT, "DOMAIN_SNAPSHOT"),
        (DOMAIN_LIST_SNAPSHOTS, "DOMAIN_LIST_SNAPSHOTS"),
        (DOMAIN_SET_AUTOSTART, "DOMAIN_SET_AUTOSTART"),
        (DOMAIN_DUMP_XML, "DOMAIN_DUMP_XML"),
        (DOMAIN_SNAPSHOT_REVERT, "DOMAIN_SNAPSHOT_REVERT"),
        (DOMAIN_SNAPSHOT_DELETE, "DOMAIN_SNAPSHOT_DELETE"),
        (DOMAIN_GET_JOB_STATS, "DOMAIN_GET_JOB_STATS"),
        (DOMAIN_ABORT_JOB, "DOMAIN_ABORT_JOB"),
        (CONNECT_GET_ALL_DOMAIN_STATS, "CONNECT_GET_ALL_DOMAIN_STATS"),
        (DOMAIN_GET_AUTOSTART, "DOMAIN_GET_AUTOSTART"),
        (DOMAIN_CRASH, "DOMAIN_CRASH"),
        (MIGRATE_BEGIN, "MIGRATE_BEGIN"),
        (MIGRATE_PREPARE, "MIGRATE_PREPARE"),
        (MIGRATE_PERFORM, "MIGRATE_PERFORM"),
        (MIGRATE_FINISH, "MIGRATE_FINISH"),
        (MIGRATE_CONFIRM, "MIGRATE_CONFIRM"),
        (MIGRATE_ABORT, "MIGRATE_ABORT"),
        (LIST_POOLS, "LIST_POOLS"),
        (POOL_INFO, "POOL_INFO"),
        (POOL_DEFINE_XML, "POOL_DEFINE_XML"),
        (POOL_START, "POOL_START"),
        (POOL_STOP, "POOL_STOP"),
        (POOL_UNDEFINE, "POOL_UNDEFINE"),
        (LIST_VOLUMES, "LIST_VOLUMES"),
        (VOLUME_INFO, "VOLUME_INFO"),
        (VOLUME_CREATE_XML, "VOLUME_CREATE_XML"),
        (VOLUME_DELETE, "VOLUME_DELETE"),
        (VOLUME_RESIZE, "VOLUME_RESIZE"),
        (VOLUME_CLONE, "VOLUME_CLONE"),
        (LIST_NETWORKS, "LIST_NETWORKS"),
        (NETWORK_INFO, "NETWORK_INFO"),
        (NETWORK_DEFINE_XML, "NETWORK_DEFINE_XML"),
        (NETWORK_START, "NETWORK_START"),
        (NETWORK_STOP, "NETWORK_STOP"),
        (NETWORK_UNDEFINE, "NETWORK_UNDEFINE"),
        (EVENT_REGISTER, "EVENT_REGISTER"),
        (EVENT_DEREGISTER, "EVENT_DEREGISTER"),
        (GUARD_SET, "GUARD_SET"),
        (GUARD_REMOVE, "GUARD_REMOVE"),
        (GUARD_LIST, "GUARD_LIST"),
        (GUARD_STATUS, "GUARD_STATUS"),
    ];

    /// The symbolic name of a callable procedure, if known.
    pub fn name(procedure: u32) -> Option<&'static str> {
        ALL.iter()
            .find(|(num, _)| *num == procedure)
            .map(|(_, name)| *name)
    }
}

/// Whether a procedure only reads state. Read-only connections
/// (`?readonly` URIs) may call exactly these plus session management.
///
/// `DOMAIN_ABORT_JOB` is the one high-priority procedure that mutates:
/// it must ride priority workers (an abort has to get through when every
/// ordinary worker is saturated by jobs) yet cancelling someone's
/// migration is clearly not a read-only action.
pub fn is_readonly_safe(procedure: u32) -> bool {
    (is_high_priority(procedure) && procedure != proc::DOMAIN_ABORT_JOB) || procedure == proc::AUTH
}

/// Whether a procedure is high-priority: guaranteed to finish without
/// waiting on a hypervisor, so it may run on a priority worker even when
/// every ordinary worker is wedged. Mirrors libvirt's tagging of
/// lookups/getters — and, as in libvirt, job query/abort are here
/// precisely because normal workers are busy running the jobs.
pub fn is_high_priority(procedure: u32) -> bool {
    matches!(
        procedure,
        proc::OPEN
            | proc::CLOSE
            | proc::AUTH
            | proc::GET_HOSTNAME
            | proc::GET_CAPABILITIES
            | proc::NODE_INFO
            | proc::LIST_DOMAINS
            | proc::DOMAIN_LOOKUP_NAME
            | proc::DOMAIN_LOOKUP_ID
            | proc::DOMAIN_LOOKUP_UUID
            | proc::DOMAIN_LIST_SNAPSHOTS
            | proc::DOMAIN_DUMP_XML
            | proc::DOMAIN_GET_JOB_STATS
            | proc::DOMAIN_ABORT_JOB
            | proc::CONNECT_GET_ALL_DOMAIN_STATS
            | proc::DOMAIN_GET_AUTOSTART
            | proc::LIST_POOLS
            | proc::POOL_INFO
            | proc::LIST_VOLUMES
            | proc::VOLUME_INFO
            | proc::LIST_NETWORKS
            | proc::NETWORK_INFO
            | proc::EVENT_REGISTER
            | proc::EVENT_DEREGISTER
            | proc::GUARD_LIST
            | proc::GUARD_STATUS
    )
}

/// Whether a procedure is idempotent: re-issuing it after an ambiguous
/// connection failure cannot change daemon state beyond what the first
/// (possibly executed) attempt did. The resilient remote driver
/// transparently retries exactly these; mutating procedures surface the
/// failure to the caller, who alone knows whether a repeat is safe.
pub fn is_idempotent(procedure: u32) -> bool {
    matches!(
        procedure,
        proc::GET_HOSTNAME
            | proc::GET_CAPABILITIES
            | proc::NODE_INFO
            | proc::LIST_DOMAINS
            | proc::DOMAIN_LOOKUP_NAME
            | proc::DOMAIN_LOOKUP_ID
            | proc::DOMAIN_LOOKUP_UUID
            | proc::DOMAIN_LIST_SNAPSHOTS
            | proc::DOMAIN_DUMP_XML
            | proc::DOMAIN_GET_JOB_STATS
            | proc::CONNECT_GET_ALL_DOMAIN_STATS
            | proc::DOMAIN_GET_AUTOSTART
            | proc::LIST_POOLS
            | proc::POOL_INFO
            | proc::LIST_VOLUMES
            | proc::VOLUME_INFO
            | proc::LIST_NETWORKS
            | proc::NETWORK_INFO
            | proc::GUARD_LIST
            | proc::GUARD_STATUS
    )
}

xdr_struct! {
    /// Arguments carrying one name.
    pub struct NameArgs {
        /// Object name.
        pub name: String,
    }
}

xdr_struct! {
    /// Arguments carrying one XML document.
    pub struct XmlArgs {
        /// The document text.
        pub xml: String,
    }
}

xdr_struct! {
    /// Arguments for `OPEN`.
    pub struct OpenArgs {
        /// The daemon-local URI (transport suffix stripped).
        pub uri: String,
        /// Whether the session is restricted to read-only procedures.
        pub readonly: bool,
    }
}

xdr_struct! {
    /// Arguments for `AUTH` (SASL-plain style credential check).
    pub struct AuthArgs {
        /// The user authenticating.
        pub username: String,
        /// The shared secret.
        pub password: String,
    }
}

xdr_struct! {
    /// Name + 64-bit value (set-memory).
    pub struct NameU64Args {
        /// Domain name.
        pub name: String,
        /// The value.
        pub value: u64,
    }
}

xdr_struct! {
    /// Name + 32-bit value (set-vcpus, lookup-by-id uses value only).
    pub struct NameU32Args {
        /// Domain name.
        pub name: String,
        /// The value.
        pub value: u32,
    }
}

xdr_struct! {
    /// Name + flag (autostart).
    pub struct NameBoolArgs {
        /// Domain name.
        pub name: String,
        /// The flag.
        pub value: bool,
    }
}

xdr_struct! {
    /// Name + a second string (attach/detach/snapshot).
    pub struct NameStringArgs {
        /// Domain name.
        pub name: String,
        /// Device XML, target, or snapshot name.
        pub value: String,
    }
}

xdr_struct! {
    /// Pool + volume name pair.
    pub struct PoolVolArgs {
        /// Pool name.
        pub pool: String,
        /// Volume name.
        pub name: String,
    }
}

xdr_struct! {
    /// Pool + XML (volume create).
    pub struct PoolXmlArgs {
        /// Pool name.
        pub pool: String,
        /// Volume XML.
        pub xml: String,
    }
}

xdr_struct! {
    /// Pool + volume + value (resize).
    pub struct VolResizeArgs {
        /// Pool name.
        pub pool: String,
        /// Volume name.
        pub name: String,
        /// New capacity in MiB.
        pub capacity_mib: u64,
    }
}

xdr_struct! {
    /// Pool + source + new name (clone).
    pub struct VolCloneArgs {
        /// Pool name.
        pub pool: String,
        /// Source volume.
        pub source: String,
        /// New volume name.
        pub new_name: String,
    }
}

xdr_struct! {
    /// Migration perform arguments.
    pub struct MigratePerformArgs {
        /// Domain name.
        pub name: String,
        /// Link bandwidth in MiB/s.
        pub bandwidth_mib_s: u64,
        /// Downtime budget in ms.
        pub max_downtime_ms: u64,
        /// Pre-copy iteration cap.
        pub max_iterations: u32,
    }
}

impl MigratePerformArgs {
    /// Converts wire arguments into driver options.
    pub fn to_options(&self) -> MigrationOptions {
        MigrationOptions {
            bandwidth_mib_s: self.bandwidth_mib_s,
            max_downtime_ms: self.max_downtime_ms,
            max_iterations: self.max_iterations,
        }
    }

    /// Builds wire arguments from driver options.
    pub fn from_options(name: &str, options: &MigrationOptions) -> Self {
        MigratePerformArgs {
            name: name.to_string(),
            bandwidth_mib_s: options.bandwidth_mib_s,
            max_downtime_ms: options.max_downtime_ms,
            max_iterations: options.max_iterations,
        }
    }
}

xdr_struct! {
    /// Wire form of a domain snapshot record.
    pub struct WireDomain {
        /// Name.
        pub name: String,
        /// UUID bytes.
        pub uuid: [u8; 16],
        /// Active id, -1 when inactive.
        pub id: i64,
        /// State discriminant.
        pub state: u32,
        /// Current memory in MiB.
        pub memory_mib: u64,
        /// Balloon ceiling in MiB.
        pub max_memory_mib: u64,
        /// vCPU count.
        pub vcpus: u32,
        /// Persistence flag.
        pub persistent: bool,
        /// Managed-save image flag.
        pub has_managed_save: bool,
        /// Autostart flag.
        pub autostart: bool,
        /// Simulated vCPU time consumed, nanoseconds.
        pub cpu_time_ns: u64,
    }
}

impl From<&DomainRecord> for WireDomain {
    fn from(r: &DomainRecord) -> Self {
        WireDomain {
            name: r.name.clone(),
            uuid: *r.uuid.as_bytes(),
            id: r.id.map(|i| i as i64).unwrap_or(-1),
            state: r.state.as_u32(),
            memory_mib: r.memory_mib,
            max_memory_mib: r.max_memory_mib,
            vcpus: r.vcpus,
            persistent: r.persistent,
            has_managed_save: r.has_managed_save,
            autostart: r.autostart,
            cpu_time_ns: r.cpu_time_ns,
        }
    }
}

impl From<WireDomain> for DomainRecord {
    fn from(w: WireDomain) -> Self {
        DomainRecord {
            name: w.name,
            uuid: Uuid::from_bytes(w.uuid),
            id: (w.id >= 0).then_some(w.id as u32),
            state: DomainState::from_u32(w.state),
            memory_mib: w.memory_mib,
            max_memory_mib: w.max_memory_mib,
            vcpus: w.vcpus,
            persistent: w.persistent,
            has_managed_save: w.has_managed_save,
            autostart: w.autostart,
            cpu_time_ns: w.cpu_time_ns,
        }
    }
}

/// Wire list of domains.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDomainList(pub Vec<WireDomain>);

impl XdrEncode for WireDomainList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for domain in &self.0 {
            domain.encode(out);
        }
    }
}

impl XdrDecode for WireDomainList {
    fn decode(cursor: &mut virt_rpc::xdr::Cursor<'_>) -> Result<Self, virt_rpc::xdr::XdrError> {
        let len = u32::decode(cursor)?;
        if len > 1_000_000 {
            return Err(virt_rpc::xdr::XdrError::LengthTooLarge(len));
        }
        let mut items = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            items.push(WireDomain::decode(cursor)?);
        }
        Ok(WireDomainList(items))
    }
}

xdr_struct! {
    /// Arguments for `GUARD_SET`.
    pub struct GuardSetArgs {
        /// Domain name.
        pub name: String,
        /// Policy discriminant ([`GuardPolicy::kind`]).
        pub kind: u32,
        /// Policy parameter ([`GuardPolicy::param`]).
        pub param: u64,
    }
}

impl GuardSetArgs {
    /// Builds the wire arguments for one policy.
    pub fn from_policy(name: &str, policy: &GuardPolicy) -> GuardSetArgs {
        GuardSetArgs {
            name: name.to_string(),
            kind: policy.kind(),
            param: policy.param(),
        }
    }

    /// Decodes the policy; `None` for unknown kinds.
    pub fn to_policy(&self) -> Option<GuardPolicy> {
        GuardPolicy::from_wire(self.kind, self.param)
    }
}

xdr_struct! {
    /// Wire form of one guard's status.
    pub struct WireGuardStatus {
        /// The guarded domain.
        pub domain: String,
        /// Policy discriminant.
        pub kind: u32,
        /// Policy parameter.
        pub param: u64,
        /// Consecutive restarts since the domain last reached running.
        pub restarts: u32,
        /// Whether the restart budget is exhausted.
        pub gave_up: bool,
        /// Whether an action is pending (`next_retry_ms` is meaningful).
        pub has_next_retry: bool,
        /// Milliseconds until the next scheduled action.
        pub next_retry_ms: u64,
        /// The last lifecycle observation that drove the guard.
        pub last_event: String,
    }
}

impl From<&GuardStatus> for WireGuardStatus {
    fn from(s: &GuardStatus) -> Self {
        WireGuardStatus {
            domain: s.domain.clone(),
            kind: s.policy.kind(),
            param: s.policy.param(),
            restarts: s.restarts,
            gave_up: s.gave_up,
            has_next_retry: s.next_retry.is_some(),
            next_retry_ms: s.next_retry.map(|d| d.as_millis() as u64).unwrap_or(0),
            last_event: s.last_event.clone(),
        }
    }
}

impl WireGuardStatus {
    /// Decodes into the API status type; `None` for unknown policy kinds.
    pub fn into_status(self) -> Option<GuardStatus> {
        Some(GuardStatus {
            policy: GuardPolicy::from_wire(self.kind, self.param)?,
            domain: self.domain,
            restarts: self.restarts,
            gave_up: self.gave_up,
            next_retry: self
                .has_next_retry
                .then(|| std::time::Duration::from_millis(self.next_retry_ms)),
            last_event: self.last_event,
        })
    }
}

/// Wire list of guard statuses.
#[derive(Debug, Clone, PartialEq)]
pub struct WireGuardStatusList(pub Vec<WireGuardStatus>);

impl XdrEncode for WireGuardStatusList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for status in &self.0 {
            status.encode(out);
        }
    }
}

impl XdrDecode for WireGuardStatusList {
    fn decode(cursor: &mut virt_rpc::xdr::Cursor<'_>) -> Result<Self, virt_rpc::xdr::XdrError> {
        let len = u32::decode(cursor)?;
        if len > 1_000_000 {
            return Err(virt_rpc::xdr::XdrError::LengthTooLarge(len));
        }
        let mut items = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            items.push(WireGuardStatus::decode(cursor)?);
        }
        Ok(WireGuardStatusList(items))
    }
}

xdr_struct! {
    /// Wire form of node facts.
    pub struct WireNodeInfo {
        /// Host name.
        pub hostname: String,
        /// Hypervisor kind.
        pub hypervisor: String,
        /// Physical CPUs.
        pub cpus: u32,
        /// Physical memory in MiB.
        pub memory_mib: u64,
        /// Free memory in MiB.
        pub free_memory_mib: u64,
        /// Active domain count.
        pub active_domains: u32,
        /// Inactive domain count.
        pub inactive_domains: u32,
    }
}

impl From<&NodeInfo> for WireNodeInfo {
    fn from(n: &NodeInfo) -> Self {
        WireNodeInfo {
            hostname: n.hostname.clone(),
            hypervisor: n.hypervisor.clone(),
            cpus: n.cpus,
            memory_mib: n.memory_mib,
            free_memory_mib: n.free_memory_mib,
            active_domains: n.active_domains,
            inactive_domains: n.inactive_domains,
        }
    }
}

impl From<WireNodeInfo> for NodeInfo {
    fn from(w: WireNodeInfo) -> Self {
        NodeInfo {
            hostname: w.hostname,
            hypervisor: w.hypervisor,
            cpus: w.cpus,
            memory_mib: w.memory_mib,
            free_memory_mib: w.free_memory_mib,
            active_domains: w.active_domains,
            inactive_domains: w.inactive_domains,
        }
    }
}

xdr_struct! {
    /// Wire form of a pool record.
    pub struct WirePool {
        /// Name.
        pub name: String,
        /// UUID bytes.
        pub uuid: [u8; 16],
        /// Backend kind name.
        pub backend: String,
        /// Capacity in MiB.
        pub capacity_mib: u64,
        /// Allocation in MiB.
        pub allocation_mib: u64,
        /// Active flag.
        pub active: bool,
        /// Volume count.
        pub volume_count: u32,
    }
}

impl From<&PoolRecord> for WirePool {
    fn from(p: &PoolRecord) -> Self {
        WirePool {
            name: p.name.clone(),
            uuid: *p.uuid.as_bytes(),
            backend: p.backend.clone(),
            capacity_mib: p.capacity_mib,
            allocation_mib: p.allocation_mib,
            active: p.active,
            volume_count: p.volume_count,
        }
    }
}

impl From<WirePool> for PoolRecord {
    fn from(w: WirePool) -> Self {
        PoolRecord {
            name: w.name,
            uuid: Uuid::from_bytes(w.uuid),
            backend: w.backend,
            capacity_mib: w.capacity_mib,
            allocation_mib: w.allocation_mib,
            active: w.active,
            volume_count: w.volume_count,
        }
    }
}

xdr_struct! {
    /// Wire form of a volume record.
    pub struct WireVolume {
        /// Name.
        pub name: String,
        /// Owning pool.
        pub pool: String,
        /// Capacity in MiB.
        pub capacity_mib: u64,
        /// Allocation in MiB.
        pub allocation_mib: u64,
        /// Format.
        pub format: String,
        /// Path.
        pub path: String,
    }
}

impl From<&VolumeRecord> for WireVolume {
    fn from(v: &VolumeRecord) -> Self {
        WireVolume {
            name: v.name.clone(),
            pool: v.pool.clone(),
            capacity_mib: v.capacity_mib,
            allocation_mib: v.allocation_mib,
            format: v.format.clone(),
            path: v.path.clone(),
        }
    }
}

impl From<WireVolume> for VolumeRecord {
    fn from(w: WireVolume) -> Self {
        VolumeRecord {
            name: w.name,
            pool: w.pool,
            capacity_mib: w.capacity_mib,
            allocation_mib: w.allocation_mib,
            format: w.format,
            path: w.path,
        }
    }
}

xdr_struct! {
    /// Wire form of a network record. Leases travel as three parallel
    /// arrays (mac/ip/domain) to stay within scalar XDR array support.
    pub struct WireNetwork {
        /// Name.
        pub name: String,
        /// UUID bytes.
        pub uuid: [u8; 16],
        /// Bridge device.
        pub bridge: String,
        /// Forward mode name.
        pub forward: String,
        /// Active flag.
        pub active: bool,
        /// Lease MACs.
        pub lease_macs: Vec<String>,
        /// Lease IPs.
        pub lease_ips: Vec<String>,
        /// Lease domain names.
        pub lease_domains: Vec<String>,
    }
}

impl From<&NetworkRecord> for WireNetwork {
    fn from(n: &NetworkRecord) -> Self {
        WireNetwork {
            name: n.name.clone(),
            uuid: *n.uuid.as_bytes(),
            bridge: n.bridge.clone(),
            forward: n.forward.clone(),
            active: n.active,
            lease_macs: n.leases.iter().map(|(m, _, _)| m.clone()).collect(),
            lease_ips: n.leases.iter().map(|(_, i, _)| i.clone()).collect(),
            lease_domains: n.leases.iter().map(|(_, _, d)| d.clone()).collect(),
        }
    }
}

impl From<WireNetwork> for NetworkRecord {
    fn from(w: WireNetwork) -> Self {
        let leases = w
            .lease_macs
            .into_iter()
            .zip(w.lease_ips)
            .zip(w.lease_domains)
            .map(|((m, i), d)| (m, i, d))
            .collect();
        NetworkRecord {
            name: w.name,
            uuid: Uuid::from_bytes(w.uuid),
            bridge: w.bridge,
            forward: w.forward,
            active: w.active,
            leases,
        }
    }
}

xdr_struct! {
    /// Wire form of a migration report.
    pub struct WireMigrationReport {
        /// Total duration in ms.
        pub total_ms: u64,
        /// Downtime in ms.
        pub downtime_ms: u64,
        /// Pre-copy iterations.
        pub iterations: u32,
        /// Transferred MiB.
        pub transferred_mib: u64,
        /// Convergence flag.
        pub converged: bool,
    }
}

impl From<&MigrationReport> for WireMigrationReport {
    fn from(r: &MigrationReport) -> Self {
        WireMigrationReport {
            total_ms: r.total_ms,
            downtime_ms: r.downtime_ms,
            iterations: r.iterations,
            transferred_mib: r.transferred_mib,
            converged: r.converged,
        }
    }
}

impl From<WireMigrationReport> for MigrationReport {
    fn from(w: WireMigrationReport) -> Self {
        MigrationReport {
            total_ms: w.total_ms,
            downtime_ms: w.downtime_ms,
            iterations: w.iterations,
            transferred_mib: w.transferred_mib,
            converged: w.converged,
        }
    }
}

xdr_struct! {
    /// Wire form of a lifecycle event.
    pub struct WireEvent {
        /// Domain name.
        pub domain: String,
        /// Domain UUID bytes.
        pub uuid: [u8; 16],
        /// Event kind discriminant.
        pub kind: u32,
        /// Trace id of the request that caused the event, 0 when
        /// untraced (job events carry their job's trace).
        pub trace_id: u64,
    }
}

impl From<&DomainEvent> for WireEvent {
    fn from(e: &DomainEvent) -> Self {
        WireEvent {
            domain: e.domain.clone(),
            uuid: *e.uuid.as_bytes(),
            kind: e.kind.as_u32(),
            trace_id: e.trace_id,
        }
    }
}

impl WireEvent {
    /// Decodes into a [`DomainEvent`], dropping unknown kinds.
    pub fn into_event(self) -> Option<DomainEvent> {
        Some(DomainEvent {
            domain: self.domain,
            uuid: Uuid::from_bytes(self.uuid),
            kind: DomainEventKind::from_u32(self.kind)?,
            trace_id: self.trace_id,
        })
    }
}

xdr_struct! {
    /// Wire form of a domain-job stats snapshot.
    pub struct WireJobStats {
        /// Job kind discriminant.
        pub kind: u32,
        /// Job state discriminant.
        pub state: u32,
        /// Virtual-clock ms since the job started.
        pub elapsed_ms: u64,
        /// Total data the job expects to move, MiB.
        pub data_total_mib: u64,
        /// Data moved so far, MiB.
        pub data_processed_mib: u64,
        /// Data still to move, MiB.
        pub data_remaining_mib: u64,
        /// Pre-copy iterations completed.
        pub memory_iterations: u32,
        /// Failure reason for failed jobs.
        pub error: String,
        /// Trace id of the request that started the job, 0 when
        /// untraced.
        pub trace_id: u64,
    }
}

impl From<&JobStats> for WireJobStats {
    fn from(s: &JobStats) -> Self {
        WireJobStats {
            kind: s.kind.as_u32(),
            state: s.state.as_u32(),
            elapsed_ms: s.elapsed_ms,
            data_total_mib: s.data_total_mib,
            data_processed_mib: s.data_processed_mib,
            data_remaining_mib: s.data_remaining_mib,
            memory_iterations: s.memory_iterations,
            error: s.error.clone(),
            trace_id: s.trace_id,
        }
    }
}

impl From<WireJobStats> for JobStats {
    fn from(w: WireJobStats) -> Self {
        JobStats {
            kind: JobKind::from_u32(w.kind),
            state: JobState::from_u32(w.state),
            elapsed_ms: w.elapsed_ms,
            data_total_mib: w.data_total_mib,
            data_processed_mib: w.data_processed_mib,
            data_remaining_mib: w.data_remaining_mib,
            memory_iterations: w.memory_iterations,
            error: w.error,
            trace_id: w.trace_id,
        }
    }
}

xdr_struct! {
    /// One domain's record in the bulk-stats reply: the name plus an
    /// open-ended typed-parameter list, libvirt's
    /// `virConnectGetAllDomainStats` shape (new stats fields never
    /// change the wire struct).
    pub struct WireDomainStatsRecord {
        /// Domain name.
        pub name: String,
        /// The stats as typed parameters.
        pub params: TypedParamList,
    }
}

/// Wire list of bulk domain-stats records.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDomainStatsList(pub Vec<WireDomainStatsRecord>);

impl XdrEncode for WireDomainStatsList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for record in &self.0 {
            record.encode(out);
        }
    }
}

impl XdrDecode for WireDomainStatsList {
    fn decode(cursor: &mut virt_rpc::xdr::Cursor<'_>) -> Result<Self, virt_rpc::xdr::XdrError> {
        let len = u32::decode(cursor)?;
        if len > 1_000_000 {
            return Err(virt_rpc::xdr::XdrError::LengthTooLarge(len));
        }
        let mut items = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            items.push(WireDomainStatsRecord::decode(cursor)?);
        }
        Ok(WireDomainStatsList(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virt_rpc::xdr::{XdrDecode, XdrEncode};

    fn sample_record() -> DomainRecord {
        DomainRecord {
            name: "vm".to_string(),
            uuid: Uuid::from_bytes([9; 16]),
            id: Some(4),
            state: DomainState::Paused,
            memory_mib: 2048,
            max_memory_mib: 4096,
            vcpus: 8,
            persistent: true,
            has_managed_save: false,
            autostart: true,
            cpu_time_ns: 123_456_789,
        }
    }

    #[test]
    fn wire_domain_round_trip() {
        let record = sample_record();
        let wire = WireDomain::from(&record);
        let decoded = WireDomain::from_xdr(&wire.to_xdr()).unwrap();
        let back: DomainRecord = decoded.into();
        assert_eq!(back, record);
    }

    #[test]
    fn inactive_domain_id_encodes_as_minus_one() {
        let mut record = sample_record();
        record.id = None;
        let wire = WireDomain::from(&record);
        assert_eq!(wire.id, -1);
        let back: DomainRecord = WireDomain::from_xdr(&wire.to_xdr()).unwrap().into();
        assert_eq!(back.id, None);
    }

    #[test]
    fn domain_list_round_trip() {
        let list = WireDomainList(vec![
            WireDomain::from(&sample_record()),
            WireDomain::from(&sample_record()),
        ]);
        let decoded = WireDomainList::from_xdr(&list.to_xdr()).unwrap();
        assert_eq!(decoded, list);
    }

    #[test]
    fn node_info_round_trip() {
        let info = NodeInfo {
            hostname: "node".into(),
            hypervisor: "qemu".into(),
            cpus: 16,
            memory_mib: 65536,
            free_memory_mib: 4096,
            active_domains: 10,
            inactive_domains: 3,
        };
        let wire = WireNodeInfo::from(&info);
        let back: NodeInfo = WireNodeInfo::from_xdr(&wire.to_xdr()).unwrap().into();
        assert_eq!(back, info);
    }

    #[test]
    fn network_leases_round_trip_as_parallel_arrays() {
        let record = NetworkRecord {
            name: "default".into(),
            uuid: Uuid::from_bytes([1; 16]),
            bridge: "virbr0".into(),
            forward: "nat".into(),
            active: true,
            leases: vec![
                ("m1".into(), "192.168.122.2".into(), "a".into()),
                ("m2".into(), "192.168.122.3".into(), "b".into()),
            ],
        };
        let wire = WireNetwork::from(&record);
        let back: NetworkRecord = WireNetwork::from_xdr(&wire.to_xdr()).unwrap().into();
        assert_eq!(back, record);
    }

    #[test]
    fn migrate_args_round_trip_options() {
        let options = MigrationOptions {
            bandwidth_mib_s: 500,
            max_downtime_ms: 100,
            max_iterations: 7,
        };
        let args = MigratePerformArgs::from_options("vm", &options);
        let decoded = MigratePerformArgs::from_xdr(&args.to_xdr()).unwrap();
        assert_eq!(decoded.to_options(), options);
        assert_eq!(decoded.name, "vm");
    }

    #[test]
    fn event_round_trip_and_unknown_kind() {
        let event = DomainEvent {
            domain: "vm".into(),
            uuid: Uuid::from_bytes([3; 16]),
            kind: DomainEventKind::MigratedIn,
            trace_id: 0xfeed_beef,
        };
        let wire = WireEvent::from(&event);
        let back = WireEvent::from_xdr(&wire.to_xdr())
            .unwrap()
            .into_event()
            .unwrap();
        assert_eq!(back, event);

        let unknown = WireEvent {
            domain: "vm".into(),
            uuid: [0; 16],
            kind: 999,
            trace_id: 0,
        };
        assert!(unknown.into_event().is_none());
    }

    #[test]
    fn job_stats_round_trip() {
        let stats = JobStats {
            kind: JobKind::Migration,
            state: JobState::Running,
            elapsed_ms: 1234,
            data_total_mib: 4096,
            data_processed_mib: 1024,
            data_remaining_mib: 3072,
            memory_iterations: 2,
            error: String::new(),
            trace_id: 0xabad_cafe,
        };
        let wire = WireJobStats::from(&stats);
        let back: JobStats = WireJobStats::from_xdr(&wire.to_xdr()).unwrap().into();
        assert_eq!(back, stats);
    }

    #[test]
    fn domain_stats_list_round_trip() {
        use crate::typedparam::TypedParam;
        let list = WireDomainStatsList(vec![
            WireDomainStatsRecord {
                name: "vm0".into(),
                params: TypedParamList(vec![
                    TypedParam::uint("state.state", 1),
                    TypedParam::ullong("balloon.current", 2048),
                ]),
            },
            WireDomainStatsRecord {
                name: "vm1".into(),
                params: TypedParamList(vec![TypedParam::string("job.kind", "migration")]),
            },
        ]);
        let decoded = WireDomainStatsList::from_xdr(&list.to_xdr()).unwrap();
        assert_eq!(decoded, list);
    }

    #[test]
    fn guard_status_round_trip() {
        let status = GuardStatus {
            domain: "web".into(),
            policy: GuardPolicy::KeepRunning { max_restarts: 6 },
            restarts: 2,
            gave_up: false,
            next_retry: Some(std::time::Duration::from_millis(150)),
            last_event: "crashed".into(),
        };
        let wire = WireGuardStatus::from(&status);
        let back = WireGuardStatus::from_xdr(&wire.to_xdr())
            .unwrap()
            .into_status()
            .unwrap();
        assert_eq!(back, status);

        // No pending retry encodes as has_next_retry = false.
        let idle = GuardStatus {
            next_retry: None,
            gave_up: true,
            ..status
        };
        let back = WireGuardStatus::from(&idle).into_status().unwrap();
        assert_eq!(back, idle);

        // Unknown policy kinds decode to None, not garbage.
        let unknown = WireGuardStatus {
            domain: "x".into(),
            kind: 77,
            param: 0,
            restarts: 0,
            gave_up: false,
            has_next_retry: false,
            next_retry_ms: 0,
            last_event: String::new(),
        };
        assert!(unknown.into_status().is_none());

        let list = WireGuardStatusList(vec![WireGuardStatus::from(&GuardStatus {
            domain: "a".into(),
            policy: GuardPolicy::AutoResume,
            restarts: 0,
            gave_up: false,
            next_retry: None,
            last_event: "armed".into(),
        })]);
        let decoded = WireGuardStatusList::from_xdr(&list.to_xdr()).unwrap();
        assert_eq!(decoded, list);
    }

    #[test]
    fn guard_set_args_round_trip() {
        for policy in [
            GuardPolicy::KeepRunning { max_restarts: 3 },
            GuardPolicy::AutoResume,
            GuardPolicy::GracefulStop { timeout_ms: 900 },
        ] {
            let args = GuardSetArgs::from_policy("vm", &policy);
            let decoded = GuardSetArgs::from_xdr(&args.to_xdr()).unwrap();
            assert_eq!(decoded.to_policy(), Some(policy));
            assert_eq!(decoded.name, "vm");
        }
        assert_eq!(
            GuardSetArgs {
                name: "vm".into(),
                kind: 0,
                param: 0
            }
            .to_policy(),
            None
        );
    }

    #[test]
    fn priority_classification() {
        assert!(is_high_priority(proc::LIST_DOMAINS));
        assert!(is_high_priority(proc::NODE_INFO));
        assert!(is_high_priority(proc::DOMAIN_DUMP_XML));
        // Job query/abort and bulk stats must get through while normal
        // workers are saturated by the jobs themselves.
        assert!(is_high_priority(proc::DOMAIN_GET_JOB_STATS));
        assert!(is_high_priority(proc::DOMAIN_ABORT_JOB));
        assert!(is_high_priority(proc::CONNECT_GET_ALL_DOMAIN_STATS));
        // Autostart: the getter is a pure read, the setter mutates.
        assert!(is_high_priority(proc::DOMAIN_GET_AUTOSTART));
        assert!(!is_high_priority(proc::DOMAIN_SET_AUTOSTART));
        assert!(!is_high_priority(proc::DOMAIN_START));
        assert!(!is_high_priority(proc::MIGRATE_PERFORM));
        assert!(!is_high_priority(proc::DOMAIN_DESTROY));
        // Guard queries are pure reads; mutating guard procedures and
        // crash injection ride ordinary workers.
        assert!(is_high_priority(proc::GUARD_LIST));
        assert!(is_high_priority(proc::GUARD_STATUS));
        assert!(!is_high_priority(proc::GUARD_SET));
        assert!(!is_high_priority(proc::GUARD_REMOVE));
        assert!(!is_high_priority(proc::DOMAIN_CRASH));
    }

    #[test]
    fn readonly_sessions_cannot_abort_jobs() {
        // High-priority but mutating: the one exception to
        // "high-priority implies readonly-safe".
        assert!(!is_readonly_safe(proc::DOMAIN_ABORT_JOB));
        assert!(is_readonly_safe(proc::DOMAIN_GET_JOB_STATS));
        assert!(is_readonly_safe(proc::CONNECT_GET_ALL_DOMAIN_STATS));
        assert!(is_readonly_safe(proc::LIST_DOMAINS));
        assert!(is_readonly_safe(proc::AUTH));
        assert!(!is_readonly_safe(proc::DOMAIN_START));
        assert!(is_readonly_safe(proc::GUARD_LIST));
        assert!(is_readonly_safe(proc::GUARD_STATUS));
        assert!(!is_readonly_safe(proc::GUARD_SET));
        assert!(!is_readonly_safe(proc::GUARD_REMOVE));
        assert!(!is_readonly_safe(proc::DOMAIN_CRASH));
    }

    #[test]
    fn idempotency_classification() {
        // Pure reads are idempotent.
        assert!(is_idempotent(proc::GET_HOSTNAME));
        assert!(is_idempotent(proc::LIST_DOMAINS));
        assert!(is_idempotent(proc::DOMAIN_DUMP_XML));
        assert!(is_idempotent(proc::NETWORK_INFO));
        // Session management and mutations are not.
        assert!(!is_idempotent(proc::OPEN));
        assert!(!is_idempotent(proc::AUTH));
        assert!(!is_idempotent(proc::EVENT_REGISTER));
        assert!(!is_idempotent(proc::DOMAIN_START));
        assert!(!is_idempotent(proc::DOMAIN_DESTROY));
        assert!(!is_idempotent(proc::VOLUME_CLONE));
        assert!(!is_idempotent(proc::MIGRATE_PERFORM));
        // Job queries are pure reads; abort is a mutation (a retried
        // abort could cancel a *different*, later job).
        assert!(is_idempotent(proc::DOMAIN_GET_JOB_STATS));
        assert!(is_idempotent(proc::CONNECT_GET_ALL_DOMAIN_STATS));
        assert!(is_idempotent(proc::DOMAIN_GET_AUTOSTART));
        assert!(!is_idempotent(proc::DOMAIN_SET_AUTOSTART));
        assert!(!is_idempotent(proc::DOMAIN_ABORT_JOB));
        // Guard queries are reads; set/remove/crash mutate. (Re-setting
        // the same policy would be harmless, but a retried set racing a
        // crash storm could reset a climbing backoff ladder.)
        assert!(is_idempotent(proc::GUARD_LIST));
        assert!(is_idempotent(proc::GUARD_STATUS));
        assert!(!is_idempotent(proc::GUARD_SET));
        assert!(!is_idempotent(proc::GUARD_REMOVE));
        assert!(!is_idempotent(proc::DOMAIN_CRASH));
        // Idempotent procedures are a strict subset of high-priority ones.
        for (num, name) in proc::ALL {
            if is_idempotent(*num) {
                assert!(is_high_priority(*num), "{name} idempotent but not prio");
            }
        }
    }

    #[test]
    fn procedure_numbers_are_unique() {
        let all = [
            proc::OPEN,
            proc::CLOSE,
            proc::GET_HOSTNAME,
            proc::GET_CAPABILITIES,
            proc::NODE_INFO,
            proc::LIST_DOMAINS,
            proc::DOMAIN_LOOKUP_NAME,
            proc::DOMAIN_LOOKUP_ID,
            proc::DOMAIN_LOOKUP_UUID,
            proc::DOMAIN_DEFINE_XML,
            proc::DOMAIN_CREATE_XML,
            proc::DOMAIN_UNDEFINE,
            proc::DOMAIN_START,
            proc::DOMAIN_SHUTDOWN,
            proc::DOMAIN_REBOOT,
            proc::DOMAIN_DESTROY,
            proc::DOMAIN_SUSPEND,
            proc::DOMAIN_RESUME,
            proc::DOMAIN_SAVE,
            proc::DOMAIN_RESTORE,
            proc::DOMAIN_SET_MEMORY,
            proc::DOMAIN_SET_VCPUS,
            proc::DOMAIN_ATTACH_DEVICE,
            proc::DOMAIN_DETACH_DEVICE,
            proc::DOMAIN_SNAPSHOT,
            proc::DOMAIN_LIST_SNAPSHOTS,
            proc::DOMAIN_SET_AUTOSTART,
            proc::DOMAIN_DUMP_XML,
            proc::DOMAIN_SNAPSHOT_REVERT,
            proc::DOMAIN_SNAPSHOT_DELETE,
            proc::DOMAIN_GET_JOB_STATS,
            proc::DOMAIN_ABORT_JOB,
            proc::CONNECT_GET_ALL_DOMAIN_STATS,
            proc::DOMAIN_GET_AUTOSTART,
            proc::MIGRATE_BEGIN,
            proc::MIGRATE_PREPARE,
            proc::MIGRATE_PERFORM,
            proc::MIGRATE_FINISH,
            proc::MIGRATE_CONFIRM,
            proc::MIGRATE_ABORT,
            proc::LIST_POOLS,
            proc::POOL_INFO,
            proc::POOL_DEFINE_XML,
            proc::POOL_START,
            proc::POOL_STOP,
            proc::POOL_UNDEFINE,
            proc::LIST_VOLUMES,
            proc::VOLUME_INFO,
            proc::VOLUME_CREATE_XML,
            proc::VOLUME_DELETE,
            proc::VOLUME_RESIZE,
            proc::VOLUME_CLONE,
            proc::LIST_NETWORKS,
            proc::NETWORK_INFO,
            proc::NETWORK_DEFINE_XML,
            proc::NETWORK_START,
            proc::NETWORK_STOP,
            proc::NETWORK_UNDEFINE,
            proc::EVENT_REGISTER,
            proc::EVENT_DEREGISTER,
            proc::EVENT_LIFECYCLE,
            proc::EVENT_DOMAIN_JOB,
            proc::DOMAIN_CRASH,
            proc::GUARD_SET,
            proc::GUARD_REMOVE,
            proc::GUARD_LIST,
            proc::GUARD_STATUS,
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }
}

//! Domain lifecycle events.
//!
//! Management applications register callbacks to be notified when domains
//! change state — locally from embedded drivers, remotely via event
//! messages pushed by the daemon. The [`EventBus`] is the shared
//! dispatcher both paths feed.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::uuid::Uuid;

/// What happened to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DomainEventKind {
    /// Configuration persisted.
    Defined,
    /// Configuration removed.
    Undefined,
    /// Execution started.
    Started,
    /// vCPUs paused.
    Suspended,
    /// vCPUs resumed.
    Resumed,
    /// Execution stopped (shutdown or destroy).
    Stopped,
    /// Memory saved to storage.
    Saved,
    /// Restored from a save image.
    Restored,
    /// The guest crashed.
    Crashed,
    /// Arrived via migration.
    MigratedIn,
    /// Left via migration.
    MigratedOut,
    /// A background job started on the domain.
    JobStarted,
    /// A background job completed successfully.
    JobCompleted,
    /// A background job failed.
    JobFailed,
    /// A background job was aborted by request.
    JobAborted,
}

impl DomainEventKind {
    /// Wire representation.
    pub fn as_u32(self) -> u32 {
        match self {
            DomainEventKind::Defined => 0,
            DomainEventKind::Undefined => 1,
            DomainEventKind::Started => 2,
            DomainEventKind::Suspended => 3,
            DomainEventKind::Resumed => 4,
            DomainEventKind::Stopped => 5,
            DomainEventKind::Saved => 6,
            DomainEventKind::Restored => 7,
            DomainEventKind::Crashed => 8,
            DomainEventKind::MigratedIn => 9,
            DomainEventKind::MigratedOut => 10,
            DomainEventKind::JobStarted => 11,
            DomainEventKind::JobCompleted => 12,
            DomainEventKind::JobFailed => 13,
            DomainEventKind::JobAborted => 14,
        }
    }

    /// `true` for the job-lifecycle kinds pushed on the job event channel.
    pub fn is_job_event(self) -> bool {
        matches!(
            self,
            DomainEventKind::JobStarted
                | DomainEventKind::JobCompleted
                | DomainEventKind::JobFailed
                | DomainEventKind::JobAborted
        )
    }

    /// Decodes a wire value.
    pub fn from_u32(v: u32) -> Option<DomainEventKind> {
        use DomainEventKind::*;
        Some(match v {
            0 => Defined,
            1 => Undefined,
            2 => Started,
            3 => Suspended,
            4 => Resumed,
            5 => Stopped,
            6 => Saved,
            7 => Restored,
            8 => Crashed,
            9 => MigratedIn,
            10 => MigratedOut,
            11 => JobStarted,
            12 => JobCompleted,
            13 => JobFailed,
            14 => JobAborted,
            _ => return None,
        })
    }
}

/// A domain lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainEvent {
    /// The domain's name.
    pub domain: String,
    /// The domain's UUID.
    pub uuid: Uuid,
    /// What happened.
    pub kind: DomainEventKind,
    /// Trace id of the request that caused the event (job events carry
    /// their job's trace), 0 when untraced. Connects an asynchronous
    /// notification back to the flight-recorder span tree.
    pub trace_id: u64,
}

/// Callback invoked for each event.
pub type EventCallback = Arc<dyn Fn(&DomainEvent) + Send + Sync + 'static>;

/// A registration handle returned by [`EventBus::register`].
pub type CallbackId = u32;

/// Which event kinds a registration wants delivered (see
/// [`EventBus::register_filtered`]). Non-matching events are skipped
/// during dispatch before the callback is ever touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventFilter {
    /// Every event.
    #[default]
    All,
    /// Only job-lifecycle events (started/completed/failed/aborted).
    JobsOnly,
    /// Only domain-lifecycle events (everything that is not a job event).
    LifecycleOnly,
}

impl EventFilter {
    /// Whether an event of `kind` passes this filter.
    pub fn matches(self, kind: DomainEventKind) -> bool {
        match self {
            EventFilter::All => true,
            EventFilter::JobsOnly => kind.is_job_event(),
            EventFilter::LifecycleOnly => !kind.is_job_event(),
        }
    }
}

/// Dispatches domain events to registered callbacks.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// use virt_core::event::{DomainEvent, DomainEventKind, EventBus};
/// use virt_core::Uuid;
///
/// let bus = EventBus::new();
/// let hits = Arc::new(AtomicU32::new(0));
/// let h = hits.clone();
/// let id = bus.register(Arc::new(move |_event| { h.fetch_add(1, Ordering::SeqCst); }));
/// bus.emit(&DomainEvent { domain: "vm".into(), uuid: Uuid::NIL, kind: DomainEventKind::Started, trace_id: 0 });
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
/// bus.unregister(id);
/// ```
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Arc<Mutex<BusInner>>,
}

#[derive(Default)]
struct BusInner {
    next_id: CallbackId,
    callbacks: HashMap<CallbackId, (EventFilter, EventCallback)>,
    /// Immutable dispatch snapshot, rebuilt on (un)register. `emit`
    /// clones only this one `Arc` under the lock, instead of cloning
    /// every callback `Arc` per event.
    snapshot: Arc<Vec<(CallbackId, EventFilter, EventCallback)>>,
}

impl BusInner {
    fn rebuild_snapshot(&mut self) {
        let mut subs: Vec<(CallbackId, EventFilter, EventCallback)> = self
            .callbacks
            .iter()
            .map(|(id, (filter, callback))| (*id, *filter, Arc::clone(callback)))
            .collect();
        // Registration order, so delivery is deterministic.
        subs.sort_by_key(|(id, _, _)| *id);
        self.snapshot = Arc::new(subs);
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("callbacks", &self.inner.lock().callbacks.len())
            .finish()
    }
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Registers a callback for every event, returning its id.
    pub fn register(&self, callback: EventCallback) -> CallbackId {
        self.register_filtered(EventFilter::All, callback)
    }

    /// Registers a callback that only receives events matching `filter`.
    /// Non-matching events are skipped during dispatch without invoking
    /// (or even cloning) the callback.
    pub fn register_filtered(&self, filter: EventFilter, callback: EventCallback) -> CallbackId {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.callbacks.insert(id, (filter, callback));
        inner.rebuild_snapshot();
        id
    }

    /// Removes a callback; returns whether it existed.
    pub fn unregister(&self, id: CallbackId) -> bool {
        let mut inner = self.inner.lock();
        let existed = inner.callbacks.remove(&id).is_some();
        if existed {
            inner.rebuild_snapshot();
        }
        existed
    }

    /// Number of registered callbacks.
    pub fn len(&self) -> usize {
        self.inner.lock().callbacks.len()
    }

    /// `true` when no callbacks are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers an event to every callback whose filter matches.
    ///
    /// Takes the bus lock only long enough to clone the current snapshot
    /// `Arc`; callbacks run on the emitting thread, outside the lock, so
    /// a callback may register/unregister without deadlocking and an
    /// emit on one thread never serializes against emits on others.
    pub fn emit(&self, event: &DomainEvent) {
        let snapshot = Arc::clone(&self.inner.lock().snapshot);
        for (_, filter, callback) in snapshot.iter() {
            if filter.matches(event.kind) {
                callback(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn event(kind: DomainEventKind) -> DomainEvent {
        DomainEvent {
            domain: "vm".to_string(),
            uuid: Uuid::NIL,
            kind,
            trace_id: 0,
        }
    }

    #[test]
    fn kinds_round_trip_the_wire() {
        for v in 0..=14u32 {
            let kind = DomainEventKind::from_u32(v).unwrap();
            assert_eq!(kind.as_u32(), v);
        }
        assert_eq!(DomainEventKind::from_u32(99), None);
    }

    #[test]
    fn job_kinds_are_classified() {
        assert!(DomainEventKind::JobStarted.is_job_event());
        assert!(DomainEventKind::JobAborted.is_job_event());
        assert!(!DomainEventKind::Started.is_job_event());
        assert!(!DomainEventKind::MigratedOut.is_job_event());
    }

    #[test]
    fn multiple_callbacks_all_fire() {
        let bus = EventBus::new();
        let count = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let c = count.clone();
            bus.register(Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        bus.emit(&event(DomainEventKind::Started));
        assert_eq!(count.load(Ordering::SeqCst), 3);
        assert_eq!(bus.len(), 3);
    }

    #[test]
    fn unregister_stops_delivery() {
        let bus = EventBus::new();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let id = bus.register(Arc::new(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        bus.emit(&event(DomainEventKind::Started));
        assert!(bus.unregister(id));
        assert!(!bus.unregister(id), "second unregister reports absence");
        bus.emit(&event(DomainEventKind::Stopped));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert!(bus.is_empty());
    }

    #[test]
    fn callbacks_receive_event_payload() {
        let bus = EventBus::new();
        let (tx, rx) = std::sync::mpsc::channel();
        bus.register(Arc::new(move |e: &DomainEvent| {
            tx.send(e.clone()).unwrap();
        }));
        bus.emit(&event(DomainEventKind::Crashed));
        let got = rx.recv().unwrap();
        assert_eq!(got.domain, "vm");
        assert_eq!(got.kind, DomainEventKind::Crashed);
    }

    #[test]
    fn callback_may_register_another_without_deadlock() {
        let bus = EventBus::new();
        let bus2 = bus.clone();
        bus.register(Arc::new(move |_| {
            bus2.register(Arc::new(|_| {}));
        }));
        bus.emit(&event(DomainEventKind::Started));
        assert_eq!(bus.len(), 2);
    }

    #[test]
    fn filters_gate_delivery_by_kind() {
        let bus = EventBus::new();
        let jobs = Arc::new(AtomicU32::new(0));
        let lifecycle = Arc::new(AtomicU32::new(0));
        let j = jobs.clone();
        bus.register_filtered(
            EventFilter::JobsOnly,
            Arc::new(move |_| {
                j.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let l = lifecycle.clone();
        bus.register_filtered(
            EventFilter::LifecycleOnly,
            Arc::new(move |_| {
                l.fetch_add(1, Ordering::SeqCst);
            }),
        );
        bus.emit(&event(DomainEventKind::Started));
        bus.emit(&event(DomainEventKind::JobStarted));
        bus.emit(&event(DomainEventKind::JobCompleted));
        assert_eq!(jobs.load(Ordering::SeqCst), 2);
        assert_eq!(lifecycle.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn delivery_follows_registration_order() {
        let bus = EventBus::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in 0..4u32 {
            let log = log.clone();
            bus.register(Arc::new(move |_| log.lock().push(tag)));
        }
        bus.emit(&event(DomainEventKind::Started));
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn mid_emit_registration_lands_in_the_next_batch() {
        // The snapshot taken at emit time is the broadcast batch: a
        // callback registered while an emit is in flight must not see
        // that same event.
        let bus = EventBus::new();
        let late_hits = Arc::new(AtomicU32::new(0));
        let bus2 = bus.clone();
        let late = late_hits.clone();
        bus.register(Arc::new(move |_| {
            let late = late.clone();
            bus2.register(Arc::new(move |_| {
                late.fetch_add(1, Ordering::SeqCst);
            }));
        }));
        bus.emit(&event(DomainEventKind::Started));
        assert_eq!(late_hits.load(Ordering::SeqCst), 0);
        bus.emit(&event(DomainEventKind::Stopped));
        assert_eq!(late_hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clones_share_registrations() {
        let bus = EventBus::new();
        let other = bus.clone();
        other.register(Arc::new(|_| {}));
        assert_eq!(bus.len(), 1);
    }
}

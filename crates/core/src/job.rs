//! The domain-job engine: cancellable long-running operations with
//! progress reporting.
//!
//! Mirrors libvirt's domain-job subsystem (`virDomainGetJobStats`,
//! `virDomainAbortJob`): long-running operations — live migration,
//! save/restore, managed-save — run as *jobs* that publish progress while
//! they execute and can be aborted mid-flight. The daemon-side
//! [`JobManager`] enforces libvirt's one-modify-job-per-domain exclusion
//! and keeps the stats of the most recent job per domain queryable after
//! completion; the client-side [`JobHandle`] pairs a started operation
//! with the polling/abort calls.
//!
//! Query and abort ride the RPC server's **priority workers**, so both
//! succeed even when every normal worker is occupied by running jobs —
//! the same reason libvirt has priority workers at all.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use virt_metrics::{Counter, Gauge, Histogram, Registry};

use crate::error::{ErrorCode, VirtError, VirtResult};

/// What kind of operation a job is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum JobKind {
    /// No job (the idle placeholder in [`JobStats`]).
    #[default]
    None,
    /// Live migration of the domain to another host.
    Migration,
    /// Saving domain memory to storage (also managed-save).
    Save,
    /// Restoring domain memory from a save image.
    Restore,
}

impl JobKind {
    /// Wire representation.
    pub fn as_u32(self) -> u32 {
        match self {
            JobKind::None => 0,
            JobKind::Migration => 1,
            JobKind::Save => 2,
            JobKind::Restore => 3,
        }
    }

    /// Decodes a wire value, falling back to [`JobKind::None`].
    pub fn from_u32(v: u32) -> JobKind {
        match v {
            1 => JobKind::Migration,
            2 => JobKind::Save,
            3 => JobKind::Restore,
            _ => JobKind::None,
        }
    }
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobKind::None => "none",
            JobKind::Migration => "migration",
            JobKind::Save => "save",
            JobKind::Restore => "restore",
        })
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum JobState {
    /// No job has run on this domain.
    #[default]
    None,
    /// The job is executing.
    Running,
    /// The job finished successfully.
    Completed,
    /// The job failed; [`JobStats::error`] carries the reason.
    Failed,
    /// The job was cancelled by an abort request.
    Aborted,
}

impl JobState {
    /// Wire representation.
    pub fn as_u32(self) -> u32 {
        match self {
            JobState::None => 0,
            JobState::Running => 1,
            JobState::Completed => 2,
            JobState::Failed => 3,
            JobState::Aborted => 4,
        }
    }

    /// Decodes a wire value, falling back to [`JobState::None`].
    pub fn from_u32(v: u32) -> JobState {
        match v {
            1 => JobState::Running,
            2 => JobState::Completed,
            3 => JobState::Failed,
            4 => JobState::Aborted,
            _ => JobState::None,
        }
    }

    /// `true` while the job is still executing.
    pub fn is_active(self) -> bool {
        self == JobState::Running
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobState::None => "none",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Aborted => "aborted",
        })
    }
}

/// A point-in-time snapshot of a domain's (most recent) job.
///
/// Data volumes are in MiB; times are in milliseconds of the hosts'
/// virtual clock, so repeated polls of a simulated migration show the
/// same numbers a real one would.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobStats {
    /// What the job is doing.
    pub kind: JobKind,
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Time spent so far (virtual-clock ms).
    pub elapsed_ms: u64,
    /// Total data the job expects to move.
    pub data_total_mib: u64,
    /// Data moved so far.
    pub data_processed_mib: u64,
    /// Data still to move (for migration this is the current dirty set,
    /// so it can grow between polls even as processed increases).
    pub data_remaining_mib: u64,
    /// Pre-copy iterations completed (migration only).
    pub memory_iterations: u32,
    /// Failure reason when `state` is [`JobState::Failed`].
    pub error: String,
    /// The request trace the job was started under, 0 when untraced.
    /// Lets `domjobinfo` and job events point back into the flight
    /// recorder for the full stage breakdown.
    pub trace_id: u64,
}

impl JobStats {
    /// Completion estimate in percent, derived from processed vs
    /// processed+remaining. 0 when nothing has happened yet.
    pub fn progress_percent(&self) -> u32 {
        let done = self.data_processed_mib;
        let span = done + self.data_remaining_mib;
        match (done * 100).checked_div(span) {
            Some(pct) => pct.min(100) as u32,
            None if self.state == JobState::Completed => 100,
            None => 0,
        }
    }

    /// Estimated milliseconds to completion, extrapolated from the rate
    /// so far. `None` until any data has been processed.
    pub fn eta_ms(&self) -> Option<u64> {
        if self.data_processed_mib == 0 || !self.state.is_active() {
            return None;
        }
        Some(self.elapsed_ms * self.data_remaining_mib / self.data_processed_mib)
    }
}

/// Shared `jobs.*` metrics: one global set covering every [`JobManager`]
/// in the process, published into each daemon's registry.
#[derive(Debug)]
pub struct JobMetrics {
    /// Jobs currently running.
    pub active: Arc<Gauge>,
    /// Jobs that finished successfully.
    pub completed: Arc<Counter>,
    /// Jobs cancelled by abort.
    pub aborted: Arc<Counter>,
    /// Jobs that failed.
    pub failed: Arc<Counter>,
    /// Wall-clock duration of finished jobs.
    pub duration_us: Arc<Histogram>,
}

impl JobMetrics {
    fn new() -> Self {
        JobMetrics {
            active: Arc::new(Gauge::new()),
            completed: Arc::new(Counter::new()),
            aborted: Arc::new(Counter::new()),
            failed: Arc::new(Counter::new()),
            duration_us: Arc::new(Histogram::new()),
        }
    }

    /// Publishes the metrics into `registry` under `jobs.*`.
    pub fn publish(&self, registry: &Registry) {
        let _ = registry.register_gauge(
            "jobs.active",
            "Domain jobs currently running",
            Arc::clone(&self.active),
        );
        let _ = registry.register_counter(
            "jobs.completed",
            "Domain jobs that completed successfully",
            Arc::clone(&self.completed),
        );
        let _ = registry.register_counter(
            "jobs.aborted",
            "Domain jobs cancelled by abort",
            Arc::clone(&self.aborted),
        );
        let _ = registry.register_counter(
            "jobs.failed",
            "Domain jobs that failed",
            Arc::clone(&self.failed),
        );
        let _ = registry.register_histogram(
            "jobs.duration_us",
            "Wall-clock duration of finished domain jobs",
            Arc::clone(&self.duration_us),
        );
    }
}

/// The process-wide job metrics (see [`JobMetrics`]).
pub fn job_metrics() -> &'static JobMetrics {
    static METRICS: OnceLock<JobMetrics> = OnceLock::new();
    METRICS.get_or_init(JobMetrics::new)
}

struct JobEntry {
    stats: JobStats,
    abort: Arc<AtomicBool>,
    started: Instant,
    /// Distinguishes a restarted job from a stale ticket of an earlier
    /// one: finish calls only apply when the epoch still matches.
    epoch: u64,
}

/// Tracks the jobs of one host's domains and enforces the
/// one-modify-job-per-domain exclusion.
///
/// Completed/failed/aborted entries are retained so the most recent
/// job's outcome stays queryable (as libvirt's completed-job stats do).
pub struct JobManager {
    /// Read-mostly index of per-domain job slots, mirroring the host's
    /// sharded domain table: progress updates and stats polls take the
    /// read lock plus the one domain's mutex, so a migration publishing
    /// a progress slice never blocks a stats query on another domain.
    /// Only `begin` (slot insert/replace) takes the write lock.
    entries: RwLock<HashMap<String, Arc<Mutex<JobEntry>>>>,
    next_epoch: AtomicU64,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("domains", &self.entries.read().len())
            .finish()
    }
}

impl Default for JobManager {
    fn default() -> Self {
        JobManager::new()
    }
}

impl JobManager {
    /// An empty manager.
    pub fn new() -> Self {
        JobManager {
            entries: RwLock::new(HashMap::new()),
            next_epoch: AtomicU64::new(0),
        }
    }

    /// The shared manager for the host named `host`.
    ///
    /// Keyed globally so an in-process daemon restart — which rebuilds
    /// its driver connections around the same `SimHost` — sees the jobs
    /// that were in flight before the restart and can fail them
    /// ([`JobManager::fail_running`]), like libvirt's job recovery on
    /// daemon startup.
    pub fn for_host(host: &str) -> Arc<JobManager> {
        static MANAGERS: OnceLock<Mutex<HashMap<String, Arc<JobManager>>>> = OnceLock::new();
        let managers = MANAGERS.get_or_init(|| Mutex::new(HashMap::new()));
        Arc::clone(
            managers
                .lock()
                .entry(host.to_string())
                .or_insert_with(|| Arc::new(JobManager::new())),
        )
    }

    /// Starts a job on `domain`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationInvalid`] when the domain already has a
    /// running job — libvirt's "another job is active" busy error.
    pub fn begin(self: &Arc<Self>, domain: &str, kind: JobKind) -> VirtResult<JobTicket> {
        // Write lock: the busy-check and the slot replacement must be one
        // atomic step or two racing begins could both pass the check.
        let mut entries = self.entries.write();
        if let Some(entry) = entries.get(domain) {
            let entry = entry.lock();
            if entry.stats.state.is_active() {
                return Err(VirtError::new(
                    ErrorCode::OperationInvalid,
                    format!(
                        "domain '{domain}' already has an active {} job",
                        entry.stats.kind
                    ),
                ));
            }
        }
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let abort = Arc::new(AtomicBool::new(false));
        entries.insert(
            domain.to_string(),
            Arc::new(Mutex::new(JobEntry {
                stats: JobStats {
                    kind,
                    state: JobState::Running,
                    // Inherit the trace of the request that started the
                    // job so later polls can find its spans.
                    trace_id: crate::metrics::span::current_trace_id(),
                    ..JobStats::default()
                },
                abort: Arc::clone(&abort),
                started: Instant::now(),
                epoch,
            })),
        );
        job_metrics().active.inc();
        Ok(JobTicket {
            manager: Arc::clone(self),
            domain: domain.to_string(),
            abort,
            epoch,
            finished: false,
        })
    }

    /// The current (or most recent) job stats for `domain`. A domain
    /// that never ran a job reports the [`JobKind::None`] default.
    pub fn stats(&self, domain: &str) -> JobStats {
        self.entries
            .read()
            .get(domain)
            .map(|e| e.lock().stats.clone())
            .unwrap_or_default()
    }

    /// Requests cancellation of the running job on `domain`. The job
    /// observes the flag at its next progress slice and finishes as
    /// [`JobState::Aborted`].
    ///
    /// # Errors
    ///
    /// [`ErrorCode::OperationInvalid`] when no job is running.
    pub fn abort(&self, domain: &str) -> VirtResult<()> {
        let entries = self.entries.read();
        if let Some(entry) = entries.get(domain) {
            let entry = entry.lock();
            if entry.stats.state.is_active() {
                entry.abort.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
        Err(VirtError::new(
            ErrorCode::OperationInvalid,
            format!("domain '{domain}' has no active job"),
        ))
    }

    /// Marks every running job failed with `reason` and signals its
    /// abort flag (so a worker thread still in the operation loop stops
    /// at its next slice). Called on daemon startup to recover jobs
    /// orphaned by a crash/restart; returns the affected domain names.
    pub fn fail_running(&self, reason: &str) -> Vec<String> {
        let mut failed = Vec::new();
        let entries = self.entries.read();
        for (domain, entry) in entries.iter() {
            let mut entry = entry.lock();
            if entry.stats.state.is_active() {
                entry.stats.state = JobState::Failed;
                entry.stats.error = reason.to_string();
                entry.abort.store(true, Ordering::SeqCst);
                job_metrics().active.dec();
                job_metrics().failed.inc();
                failed.push(domain.clone());
            }
        }
        failed
    }

    fn finish(&self, domain: &str, epoch: u64, outcome: JobState, error: Option<&str>) {
        let Some(entry) = self.entries.read().get(domain).cloned() else {
            return;
        };
        let mut entry = entry.lock();
        // A restart may already have failed this job (and a newer job
        // may even occupy the slot); a stale ticket must not touch it.
        if entry.epoch != epoch || !entry.stats.state.is_active() {
            return;
        }
        entry.stats.state = outcome;
        if let Some(error) = error {
            entry.stats.error = error.to_string();
        }
        let metrics = job_metrics();
        metrics.active.dec();
        metrics.duration_us.record(entry.started.elapsed());
        match outcome {
            JobState::Completed => metrics.completed.inc(),
            JobState::Aborted => metrics.aborted.inc(),
            _ => metrics.failed.inc(),
        }
    }

    fn update(&self, domain: &str, epoch: u64, progress: JobProgress) {
        let Some(entry) = self.entries.read().get(domain).cloned() else {
            return;
        };
        let mut entry = entry.lock();
        if entry.epoch == epoch && entry.stats.state.is_active() {
            entry.stats.elapsed_ms = progress.elapsed_ms;
            entry.stats.data_total_mib = progress.total_mib;
            entry.stats.data_processed_mib = progress.processed_mib;
            entry.stats.data_remaining_mib = progress.remaining_mib;
            entry.stats.memory_iterations = progress.iterations;
        }
    }
}

/// One progress report from a running job.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobProgress {
    /// Virtual-clock ms since the job started.
    pub elapsed_ms: u64,
    /// Total data the job expects to move.
    pub total_mib: u64,
    /// Data moved so far.
    pub processed_mib: u64,
    /// Data still to move.
    pub remaining_mib: u64,
    /// Pre-copy iterations completed.
    pub iterations: u32,
}

/// The running side of a job: held by the worker executing the
/// operation, used to publish progress and observe abort requests.
///
/// Dropping a ticket without finishing it marks the job failed — a
/// panicking worker must not leave a permanently "running" job blocking
/// the domain.
pub struct JobTicket {
    manager: Arc<JobManager>,
    domain: String,
    abort: Arc<AtomicBool>,
    epoch: u64,
    finished: bool,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("domain", &self.domain)
            .field("epoch", &self.epoch)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl JobTicket {
    /// Publishes a progress snapshot.
    pub fn update(&self, progress: JobProgress) {
        self.manager.update(&self.domain, self.epoch, progress);
    }

    /// `true` once an abort has been requested.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Finishes the job as completed.
    pub fn complete(mut self) {
        self.finished = true;
        self.manager
            .finish(&self.domain, self.epoch, JobState::Completed, None);
    }

    /// Finishes the job as aborted (the worker honored the request).
    pub fn abort_finish(mut self) {
        self.finished = true;
        self.manager
            .finish(&self.domain, self.epoch, JobState::Aborted, None);
    }

    /// Finishes the job as failed with a reason.
    pub fn fail(mut self, reason: &str) {
        self.finished = true;
        self.manager
            .finish(&self.domain, self.epoch, JobState::Failed, Some(reason));
    }
}

impl Drop for JobTicket {
    fn drop(&mut self) {
        if !self.finished {
            self.manager.finish(
                &self.domain,
                self.epoch,
                JobState::Failed,
                Some("job abandoned by its worker"),
            );
        }
    }
}

/// A client-side handle to a started long-running operation.
///
/// The operation itself runs as a blocking call on a background thread
/// (over RPC it occupies a normal daemon worker — that is the job
/// "running on the worker pool"); the handle polls progress and requests
/// aborts through the separate high-priority query procedures, and
/// [`JobHandle::wait`] joins the result. The synchronous APIs
/// ([`crate::domain::Domain::migrate_to`] etc.) are start-and-wait
/// wrappers over this.
pub struct JobHandle<T> {
    domain: crate::domain::Domain,
    thread: Option<std::thread::JoinHandle<VirtResult<T>>>,
}

impl<T: Send + 'static> JobHandle<T> {
    pub(crate) fn spawn(
        domain: crate::domain::Domain,
        operation: impl FnOnce() -> VirtResult<T> + Send + 'static,
    ) -> Self {
        JobHandle {
            domain,
            thread: Some(std::thread::spawn(operation)),
        }
    }
}

impl<T> JobHandle<T> {
    /// Polls the job's current stats (one high-priority round-trip).
    pub fn stats(&self) -> VirtResult<JobStats> {
        self.domain.job_stats()
    }

    /// Requests cancellation of the job.
    pub fn abort(&self) -> VirtResult<()> {
        self.domain.abort_job()
    }

    /// `true` once the operation has finished (successfully or not).
    pub fn done(&self) -> bool {
        self.thread.as_ref().is_none_or(|t| t.is_finished())
    }

    /// Blocks until the operation finishes and returns its result.
    pub fn wait(mut self) -> VirtResult<T> {
        let thread = self.thread.take().expect("wait consumes the handle");
        thread
            .join()
            .map_err(|_| VirtError::new(ErrorCode::Internal, "job worker thread panicked"))?
    }
}

impl<T> Drop for JobHandle<T> {
    fn drop(&mut self) {
        // Detach: an undisturbed drop leaves the operation running to
        // completion, like closing virsh while a migration continues.
        let _ = self.thread.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_states_round_trip_the_wire() {
        for kind in [
            JobKind::None,
            JobKind::Migration,
            JobKind::Save,
            JobKind::Restore,
        ] {
            assert_eq!(JobKind::from_u32(kind.as_u32()), kind);
        }
        for state in [
            JobState::None,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Aborted,
        ] {
            assert_eq!(JobState::from_u32(state.as_u32()), state);
        }
        assert_eq!(JobKind::from_u32(99), JobKind::None);
        assert_eq!(JobState::from_u32(99), JobState::None);
    }

    #[test]
    fn progress_and_eta_derive_from_stats() {
        let stats = JobStats {
            kind: JobKind::Migration,
            state: JobState::Running,
            elapsed_ms: 1_000,
            data_total_mib: 1_024,
            data_processed_mib: 750,
            data_remaining_mib: 250,
            ..JobStats::default()
        };
        assert_eq!(stats.progress_percent(), 75);
        assert_eq!(stats.eta_ms(), Some(333));

        let idle = JobStats::default();
        assert_eq!(idle.progress_percent(), 0);
        assert_eq!(idle.eta_ms(), None);

        let done = JobStats {
            state: JobState::Completed,
            ..JobStats::default()
        };
        assert_eq!(done.progress_percent(), 100);
    }

    #[test]
    fn begin_excludes_concurrent_jobs_per_domain() {
        let manager = Arc::new(JobManager::new());
        let ticket = manager.begin("vm", JobKind::Migration).unwrap();
        let err = manager.begin("vm", JobKind::Save).unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationInvalid);
        assert!(err.message().contains("active"), "{err}");
        // A different domain is unaffected.
        let other = manager.begin("other", JobKind::Save).unwrap();
        other.complete();
        ticket.complete();
        // After completion the domain accepts a new job.
        manager.begin("vm", JobKind::Save).unwrap().complete();
    }

    #[test]
    fn ticket_updates_are_visible_in_stats() {
        let manager = Arc::new(JobManager::new());
        let ticket = manager.begin("vm", JobKind::Migration).unwrap();
        ticket.update(JobProgress {
            elapsed_ms: 10,
            total_mib: 512,
            processed_mib: 128,
            remaining_mib: 384,
            iterations: 1,
        });
        let stats = manager.stats("vm");
        assert_eq!(stats.state, JobState::Running);
        assert_eq!(stats.data_processed_mib, 128);
        assert_eq!(stats.memory_iterations, 1);
        ticket.complete();
        assert_eq!(manager.stats("vm").state, JobState::Completed);
        // Data of the finished job stays queryable.
        assert_eq!(manager.stats("vm").data_processed_mib, 128);
    }

    #[test]
    fn abort_flags_the_running_ticket() {
        let manager = Arc::new(JobManager::new());
        let ticket = manager.begin("vm", JobKind::Migration).unwrap();
        assert!(!ticket.aborted());
        manager.abort("vm").unwrap();
        assert!(ticket.aborted());
        ticket.abort_finish();
        assert_eq!(manager.stats("vm").state, JobState::Aborted);
        // No running job any more: abort is invalid.
        let err = manager.abort("vm").unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationInvalid);
    }

    #[test]
    fn abort_without_any_job_is_invalid() {
        let manager = JobManager::new();
        let err = manager.abort("ghost").unwrap_err();
        assert_eq!(err.code(), ErrorCode::OperationInvalid);
    }

    #[test]
    fn dropped_ticket_fails_the_job() {
        let manager = Arc::new(JobManager::new());
        drop(manager.begin("vm", JobKind::Save).unwrap());
        let stats = manager.stats("vm");
        assert_eq!(stats.state, JobState::Failed);
        assert!(stats.error.contains("abandoned"));
    }

    #[test]
    fn fail_running_recovers_orphans_and_blocks_stale_tickets() {
        let manager = Arc::new(JobManager::new());
        let ticket = manager.begin("vm", JobKind::Migration).unwrap();
        let failed = manager.fail_running("daemon restarted");
        assert_eq!(failed, vec!["vm".to_string()]);
        assert!(ticket.aborted(), "stale worker sees the abort flag");
        let stats = manager.stats("vm");
        assert_eq!(stats.state, JobState::Failed);
        assert_eq!(stats.error, "daemon restarted");
        // The stale ticket's completion must not resurrect the job...
        ticket.complete();
        assert_eq!(manager.stats("vm").state, JobState::Failed);
        // ...nor clobber a newer job occupying the slot.
        let fresh = Arc::clone(&manager);
        let new_ticket = fresh.begin("vm", JobKind::Save).unwrap();
        assert_eq!(manager.stats("vm").state, JobState::Running);
        new_ticket.complete();
        assert_eq!(manager.stats("vm").state, JobState::Completed);
    }

    #[test]
    fn for_host_is_keyed_and_stable() {
        let a1 = JobManager::for_host("job-test-host-a");
        let a2 = JobManager::for_host("job-test-host-a");
        let b = JobManager::for_host("job-test-host-b");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
    }

    #[test]
    fn metrics_track_outcomes() {
        let metrics = job_metrics();
        let base_completed = metrics.completed.get();
        let base_aborted = metrics.aborted.get();
        let base_failed = metrics.failed.get();

        let manager = Arc::new(JobManager::new());
        manager.begin("m1", JobKind::Save).unwrap().complete();
        manager.begin("m2", JobKind::Save).unwrap().abort_finish();
        manager.begin("m3", JobKind::Save).unwrap().fail("boom");

        assert_eq!(metrics.completed.get(), base_completed + 1);
        assert_eq!(metrics.aborted.get(), base_aborted + 1);
        assert_eq!(metrics.failed.get(), base_failed + 1);

        let registry = Registry::new();
        metrics.publish(&registry);
        let names = registry.names();
        for name in [
            "jobs.active",
            "jobs.completed",
            "jobs.aborted",
            "jobs.failed",
            "jobs.duration_us",
        ] {
            assert!(names.contains(&name.to_string()), "missing {name}");
        }
    }
}

//! Property tests over virt-core's data structures: URIs, UUIDs, domain
//! XML descriptions, typed parameters, and protocol records.

use proptest::prelude::*;

use virt_core::protocol::WireDomain;
use virt_core::typedparam::{ParamValue, TypedParam, TypedParamList};
use virt_core::uri::ConnectUri;
use virt_core::xmlfmt::{DiskConfig, DomainConfig, InterfaceConfig};
use virt_core::Uuid;
use virt_rpc::xdr::{XdrDecode, XdrEncode};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,20}"
}

fn domain_config_strategy() -> impl Strategy<Value = DomainConfig> {
    (
        name_strategy(),
        1u64..1_000_000,
        0u64..1_000_000,
        1u32..512,
        prop_oneof![
            Just("qemu".to_string()),
            Just("xen".to_string()),
            Just("lxc".to_string()),
            Just("esx".to_string())
        ],
        0u64..10_000,
        proptest::collection::vec((name_strategy(), name_strategy(), 0u64..100_000), 0..4),
        proptest::collection::vec(name_strategy(), 0..3),
        proptest::bool::ANY,
    )
        .prop_map(
            |(name, memory, extra_max, vcpus, domain_type, dirty, disks, nics, with_uuid)| {
                let mut config = DomainConfig::new(name, memory, vcpus);
                config.max_memory_mib = memory + extra_max;
                config.domain_type = domain_type;
                config.dirty_rate_mib_s = dirty;
                if with_uuid {
                    config.uuid = Some(Uuid::generate());
                }
                for (i, (target, source, capacity)) in disks.into_iter().enumerate() {
                    config.disks.push(DiskConfig {
                        target: format!("{target}{i}"),
                        source: format!("/img/{source}"),
                        capacity_mib: capacity,
                        bus: "virtio".to_string(),
                    });
                }
                for (i, network) in nics.into_iter().enumerate() {
                    config.interfaces.push(InterfaceConfig {
                        mac: format!("52:54:00:00:00:{i:02x}"),
                        network,
                        model: "virtio".to_string(),
                    });
                }
                config
            },
        )
}

proptest! {
    /// Domain descriptions survive the XML round trip exactly.
    #[test]
    fn domain_config_xml_round_trips(config in domain_config_strategy()) {
        let xml = config.to_xml_string();
        let parsed = DomainConfig::from_xml_str(&xml).expect("own xml parses");
        prop_assert_eq!(parsed, config);
    }

    /// Config → hypersim spec → config is lossless for all fields the
    /// spec carries.
    #[test]
    fn domain_config_spec_round_trips(config in domain_config_strategy()) {
        let spec = config.to_spec();
        let uuid = config.uuid.unwrap_or(Uuid::NIL);
        let back = DomainConfig::from_spec(&spec, &config.domain_type, uuid);
        prop_assert_eq!(back.name, config.name);
        prop_assert_eq!(back.memory_mib, config.memory_mib);
        prop_assert_eq!(back.max_memory_mib, config.max_memory_mib);
        prop_assert_eq!(back.vcpus, config.vcpus);
        prop_assert_eq!(back.disks, config.disks);
        prop_assert_eq!(back.interfaces, config.interfaces);
        prop_assert_eq!(back.dirty_rate_mib_s, config.dirty_rate_mib_s);
    }

    /// The XML parser never panics on arbitrary input.
    #[test]
    fn domain_xml_parser_never_panics(input in "\\PC{0,300}") {
        let _ = DomainConfig::from_xml_str(&input);
    }

    /// UUID display/parse round trip.
    #[test]
    fn uuid_round_trips(bytes: [u8; 16]) {
        let uuid = Uuid::from_bytes(bytes);
        let parsed: Uuid = uuid.to_string().parse().expect("canonical form parses");
        prop_assert_eq!(parsed, uuid);
    }

    /// The UUID parser never panics.
    #[test]
    fn uuid_parser_never_panics(input in "\\PC{0,64}") {
        let _ = input.parse::<Uuid>();
    }

    /// URI display → parse round trip over structured inputs.
    #[test]
    fn uri_round_trips(
        driver in "[a-z][a-z0-9]{0,8}",
        transport in proptest::option::of(prop_oneof![
            Just("unix"), Just("tcp"), Just("tls"), Just("memory")
        ]),
        user in proptest::option::of("[a-z]{1,8}"),
        host in proptest::option::of("[a-z][a-z0-9.-]{0,15}"),
        port in proptest::option::of(1u16..),
        path in prop_oneof![Just(String::new()), Just("/system".to_string()), Just("/a/b".to_string())],
    ) {
        // Ports and users require a host in the canonical form.
        let host_part = host.clone().unwrap_or_default();
        let mut text = driver.clone();
        if let Some(t) = transport { text.push('+'); text.push_str(t); }
        text.push_str("://");
        if let (Some(u), false) = (&user, host_part.is_empty()) {
            text.push_str(u);
            text.push('@');
        }
        text.push_str(&host_part);
        if let (Some(p), false) = (port, host_part.is_empty()) {
            text.push_str(&format!(":{p}"));
        }
        text.push_str(&path);

        let parsed: ConnectUri = text.parse().expect("constructed uri parses");
        prop_assert_eq!(parsed.to_string(), text.clone());
        // Reparse of the display form is stable.
        let reparsed: ConnectUri = text.parse().expect("display form parses");
        prop_assert_eq!(reparsed, parsed);
    }

    /// The URI parser never panics.
    #[test]
    fn uri_parser_never_panics(input in "\\PC{0,100}") {
        let _ = input.parse::<ConnectUri>();
    }

    /// Typed parameter lists round-trip XDR for every value type.
    #[test]
    fn typed_params_round_trip(
        params in proptest::collection::vec(
            (name_strategy(), prop_oneof![
                any::<i32>().prop_map(ParamValue::Int),
                any::<u32>().prop_map(ParamValue::UInt),
                any::<i64>().prop_map(ParamValue::LLong),
                any::<u64>().prop_map(ParamValue::ULLong),
                proptest::num::f64::NORMAL.prop_map(ParamValue::Double),
                any::<bool>().prop_map(ParamValue::Boolean),
                "\\PC{0,20}".prop_map(ParamValue::Str),
            ]),
            0..8,
        )
    ) {
        let list = TypedParamList(
            params.into_iter().map(|(f, v)| TypedParam::new(f, v)).collect(),
        );
        let decoded = TypedParamList::from_xdr(&list.to_xdr()).expect("decode");
        prop_assert_eq!(decoded, list);
    }

    /// Wire domain records survive encoding regardless of field values.
    #[test]
    fn wire_domain_round_trips(
        name in "\\PC{0,40}",
        uuid: [u8; 16],
        id in -1i64..100_000,
        state in 0u32..5,
        memory: u64,
        vcpus: u32,
        persistent: bool,
        autostart: bool,
    ) {
        let wire = WireDomain {
            name,
            uuid,
            id,
            state,
            memory_mib: memory,
            max_memory_mib: memory,
            vcpus,
            persistent,
            has_managed_save: false,
            autostart,
            cpu_time_ns: 0,
        };
        let decoded = WireDomain::from_xdr(&wire.to_xdr()).expect("decode");
        prop_assert_eq!(decoded, wire);
    }
}

//! Release perf guard for the group-commit statestore pipeline.
//!
//! Asserts the coalescing contract F12 depends on: a burst of K
//! back-to-back status writes to one domain must collapse into at most
//! two fsync cycles (one may already be in flight when the burst
//! starts), with essentially every record coalesced away. This is a
//! counter-based structural check, not a timing measurement, so it is
//! stable on shared CI hardware — `expt_f12_statestore` measures the
//! actual latency win.
//!
//! Debug builds time the window differently enough to flake, so the
//! guard only arms under `--release` (like the other perf guards wired
//! into scripts/ci.sh).

use std::time::Duration;

use virt_core::statestore::{ObjectKind, StateStore, StoreOptions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!(
        "statestore-perf-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

#[test]
fn status_write_burst_collapses_into_at_most_two_fsync_cycles() {
    if cfg!(debug_assertions) {
        eprintln!("skipping: perf guard is release-only");
        return;
    }
    const BURST: usize = 200;
    let dir = temp_dir("burst");
    let store = StateStore::open_with_options(
        &dir,
        StoreOptions {
            // Generous window: the whole burst lands well inside it, so
            // any extra cycles would come from the pipeline itself.
            coalesce_window: Duration::from_millis(200),
            ..StoreOptions::default()
        },
    )
    .expect("store opens");

    for i in 0..BURST {
        store.put_behind(
            ObjectKind::DomainStatus,
            "qemu",
            "burst-target",
            &format!("<domstatus frame='{i}'/>"),
        );
    }
    store.flush().expect("drain succeeds");

    let cycles = store.group_commits_total();
    let coalesced = store.coalesced_total();
    assert!(
        cycles <= 2,
        "{BURST} back-to-back status writes took {cycles} fsync cycles (want <= 2)"
    );
    assert!(
        coalesced >= (BURST - 2) as u64,
        "only {coalesced} of {BURST} records coalesced"
    );

    // Last-writer-wins: the surviving frame is the final one.
    let frame = store
        .get(ObjectKind::DomainStatus, "qemu", "burst-target")
        .expect("read back")
        .expect("record present");
    assert!(frame.contains(&format!("frame='{}'", BURST - 1)), "{frame}");

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_durable_writers_share_fsync_cycles() {
    if cfg!(debug_assertions) {
        eprintln!("skipping: perf guard is release-only");
        return;
    }
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 20;
    let dir = temp_dir("shared");
    let store = StateStore::open(&dir).expect("store opens");

    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    store
                        .put(
                            ObjectKind::Domain,
                            "qemu",
                            &format!("dom-{t}-{i}"),
                            "<domain/>",
                        )
                        .expect("durable put");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer thread");
    }

    let total_ops = (WRITERS * PER_WRITER) as u64;
    let cycles = store.group_commits_total();
    // Perfect batching would be PER_WRITER cycles; per-op fsync would be
    // total_ops. Require at least 2x sharing with headroom for scheduler
    // jitter on loaded CI machines.
    assert!(
        cycles <= total_ops / 2,
        "{total_ops} durable puts from {WRITERS} writers took {cycles} fsync cycles \
         (want <= {})",
        total_ops / 2
    );

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

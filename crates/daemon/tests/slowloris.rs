//! Slowloris-style abuse tests for the event-driven server core.
//!
//! Three hostile client shapes, all over real TCP sockets:
//!
//! 1. a client trickling one framed request a single byte per write —
//!    the incremental frame reader must reassemble it and answer;
//! 2. a client that floods requests but never reads replies — write
//!    backpressure must pause its reads and bound the queued memory
//!    while the server keeps serving well-behaved clients;
//! 3. one hundred idle connections sitting through several keepalive
//!    cycles — nothing may be dropped, and every connection must still
//!    answer a real call afterwards.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use virt_core::{Connect, KeepaliveConfig};
use virt_metrics::MetricValue;
use virt_rpc::keepalive::{is_pong, ping_packet};
use virt_rpc::transport::TcpSocketListener;
use virt_rpc::Packet;
use virtd::Virtd;

fn unique(tag: &str) -> String {
    static N: AtomicUsize = AtomicUsize::new(0);
    format!(
        "{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    )
}

fn start_tcp_daemon(tag: &str) -> (Virtd, String) {
    let daemon = Virtd::builder(unique(tag))
        .with_quiet_hosts()
        .build()
        .unwrap();
    let listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().to_string();
    daemon.serve(Box::new(listener));
    (daemon, addr)
}

/// Reads one metric (counter or gauge) from the daemon registry.
fn metric(daemon: &Virtd, name: &str) -> u64 {
    daemon
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram(_) => panic!("{name} is a histogram"),
        })
        .unwrap_or_else(|| panic!("metric {name} not registered"))
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn read_frame(sock: &mut TcpStream) -> Packet {
    let mut prefix = [0u8; 4];
    sock.read_exact(&mut prefix).unwrap();
    let len = u32::from_be_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    sock.read_exact(&mut body).unwrap();
    Packet::from_body(&body).unwrap()
}

#[test]
fn trickled_frame_is_reassembled_and_answered() {
    let (daemon, addr) = start_tcp_daemon("trickle");

    let mut sock = TcpStream::connect(&addr).unwrap();
    sock.set_nodelay(true).ok();
    let frame = ping_packet().to_frame();
    // One byte per write: every segment arrives as its own readiness
    // event, so the frame reader must hold partial state across dozens
    // of epoll round trips without ever blocking an event thread.
    for &byte in &frame {
        sock.write_all(&[byte]).unwrap();
        sock.flush().ok();
        std::thread::sleep(Duration::from_millis(1));
    }

    let reply = read_frame(&mut sock);
    assert!(is_pong(&reply), "trickled ping got {:?}", reply.header);

    drop(sock);
    daemon.shutdown();
}

#[test]
fn never_reading_client_is_paused_not_unbounded() {
    let (daemon, addr) = start_tcp_daemon("noread");
    let paused_metric = "server.virtd.event_loop.reads_paused";
    let queue_metric = "server.virtd.event_loop.write_queue_bytes";

    let mut sock = TcpStream::connect(&addr).unwrap();
    sock.set_nonblocking(true).unwrap();

    // ~1k pings per write; the server answers each with a pong that the
    // client never reads, so replies pile up behind its stalled socket.
    let ping = ping_packet().to_frame();
    let mut chunk = Vec::with_capacity(ping.len() * 1024);
    for _ in 0..1024 {
        chunk.extend_from_slice(&ping);
    }

    let end = Instant::now() + Duration::from_secs(30);
    let mut triggered = false;
    let mut wrote = 0u64;
    'flood: while Instant::now() < end {
        let mut off = 0;
        while off < chunk.len() {
            match sock.write(&chunk[off..]) {
                Ok(0) => break 'flood,
                Ok(n) => {
                    off += n;
                    wrote += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Our own send buffer is full — the server stopped
                    // reading. Confirm via the metric and stop flooding.
                    std::thread::sleep(Duration::from_millis(5));
                    if metric(&daemon, paused_metric) > 0 {
                        triggered = true;
                        break 'flood;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // A reset is the hard-cap close — also a bounded outcome.
                Err(_) => break 'flood,
            }
        }
        if metric(&daemon, paused_metric) > 0 {
            triggered = true;
            break;
        }
    }
    let hard_closes = metric(&daemon, "server.virtd.event_loop.backpressure_closes");
    assert!(
        triggered || hard_closes > 0,
        "wrote {wrote} bytes without triggering read-pause or hard-cap close"
    );

    // Queued replies stay bounded: soft cap (256 KiB) plus one frame of
    // slack, never the unbounded per-connection buffers of the old core.
    let queued = metric(&daemon, queue_metric);
    assert!(
        queued <= 512 * 1024,
        "write queue unbounded: {queued} bytes"
    );

    // The stalled client must not take the server down with it.
    let (host, port) = addr.rsplit_once(':').unwrap();
    let conn = Connect::builder(format!("qemu+tcp://{host}:{port}/system"))
        .open()
        .unwrap();
    assert!(conn.hostname().is_ok());
    conn.close();

    // Dropping the stalled client frees every queued reply buffer.
    drop(sock);
    wait_until(
        "queued reply bytes to drain",
        Duration::from_secs(5),
        || metric(&daemon, queue_metric) == 0,
    );
    daemon.shutdown();
}

#[test]
fn hundred_idle_connections_survive_keepalive_cycles() {
    let (daemon, addr) = start_tcp_daemon("idle100");
    let (host, port) = addr.rsplit_once(':').unwrap();
    let uri = format!("qemu+tcp://{host}:{port}/system");

    let conns: Vec<_> = (0..100)
        .map(|_| {
            Connect::builder(&uri)
                .keepalive(KeepaliveConfig {
                    interval: Duration::from_millis(100),
                    count: 3,
                })
                .open()
                .unwrap()
        })
        .collect();
    wait_until("100 registered connections", Duration::from_secs(5), || {
        metric(&daemon, "server.virtd.event_loop.registered_fds") == 100
    });

    // Sit through several keepalive cycles: every idle client pings,
    // the event loops must answer each inline or the clients declare
    // the server dead and hang up.
    wait_until(
        "keepalive traffic from idle clients",
        Duration::from_secs(10),
        || metric(&daemon, "server.virtd.keepalive_pings") >= 300,
    );

    assert_eq!(
        metric(&daemon, "server.virtd.event_loop.registered_fds"),
        100,
        "idle connections were dropped during keepalive cycles"
    );
    for conn in &conns {
        assert!(conn.hostname().is_ok());
    }

    for conn in conns {
        conn.close();
    }
    wait_until("connections to drain", Duration::from_secs(5), || {
        metric(&daemon, "server.virtd.event_loop.registered_fds") == 0
    });
    daemon.shutdown();
}

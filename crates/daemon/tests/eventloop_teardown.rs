//! Mid-frame client death must not leak the pooled receive buffer or
//! the registered fd.
//!
//! This is the regression suite for the event-loop teardown path: a
//! client that dies after sending a length prefix and a partial body
//! has already caused the loop to check a buffer out of the global
//! [`virt_rpc::BufferPool`]. Teardown must return that buffer to the
//! pool and drop the fd from the epoll set, every time.
//!
//! Kept in its own test binary on purpose: the buffer pool is
//! process-global, and the hit/miss deltas asserted here would be
//! meaningless with unrelated tests churning the pool concurrently.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use virt_metrics::MetricValue;
use virt_rpc::keepalive::ping_packet;
use virt_rpc::transport::TcpSocketListener;
use virt_rpc::BufferPool;
use virtd::Virtd;

fn metric(daemon: &Virtd, name: &str) -> u64 {
    daemon
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram(_) => panic!("{name} is a histogram"),
        })
        .unwrap_or_else(|| panic!("metric {name} not registered"))
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn mid_frame_death_releases_fd_and_pooled_buffer() {
    let daemon = Virtd::builder(format!("teardown-{}", std::process::id()))
        .with_quiet_hosts()
        .build()
        .unwrap();
    let listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().to_string();
    daemon.serve(Box::new(listener));
    let fds = "server.virtd.event_loop.registered_fds";

    // Warm the pool with one clean round trip so later acquisitions can
    // be freelist hits rather than fresh allocations.
    {
        let mut sock = TcpStream::connect(&addr).unwrap();
        sock.write_all(&ping_packet().to_frame()).unwrap();
        let mut reply = [0u8; 4];
        std::io::Read::read_exact(&mut sock, &mut reply).unwrap();
    }
    wait_until("warm client to drain", Duration::from_secs(5), || {
        metric(&daemon, fds) == 0
    });

    let pool = BufferPool::global();
    let (_, misses_before, _) = pool.stats();

    const CYCLES: usize = 32;
    const PROMISED_LEN: u32 = 4096;
    for _ in 0..CYCLES {
        let mut sock = TcpStream::connect(&addr).unwrap();
        // A length prefix promising 4 KiB, then only 100 bytes: the loop
        // has checked a pooled buffer out and is mid-frame when the
        // socket dies.
        sock.write_all(&PROMISED_LEN.to_be_bytes()).unwrap();
        sock.write_all(&[0u8; 100]).unwrap();
        sock.flush().ok();
        wait_until("connection to register", Duration::from_secs(5), || {
            metric(&daemon, fds) == 1
        });
        // Give the loop a beat to consume the partial body, then die.
        std::thread::sleep(Duration::from_millis(10));
        drop(sock);
        wait_until(
            "fd to deregister after death",
            Duration::from_secs(5),
            || metric(&daemon, fds) == 0,
        );
    }

    let (_, misses_after, resident) = pool.stats();
    assert!(
        resident >= u64::from(PROMISED_LEN),
        "no pooled capacity parked after teardown: {resident} bytes resident"
    );
    // Every cycle checked a buffer out of the pool; if teardown leaked
    // them, each cycle would allocate fresh and misses would grow by
    // one per death. A recycled pool stays nearly flat.
    let fresh = misses_after - misses_before;
    assert!(
        fresh <= CYCLES as u64 / 8,
        "pooled read buffers leaked: {fresh} fresh allocations across {CYCLES} mid-frame deaths"
    );
    assert_eq!(
        metric(&daemon, "server.virtd.clients_connected"),
        0,
        "client table entries leaked"
    );

    daemon.shutdown();
}

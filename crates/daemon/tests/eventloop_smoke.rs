//! Release-mode capacity smoke for the event-driven core, run by
//! `scripts/ci.sh`: one daemon holds 1000 idle TCP connections with a
//! flat thread count, bounded memory growth, and bounded accept
//! latency. Under the old thread-per-connection core this spawned 1000
//! reader threads; the event loops must hold the same load with a
//! fixed handful.
//!
//! Ignored by default — it wants release codegen and ~2000 fds, both
//! of which `scripts/ci.sh` arranges explicitly.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use virt_metrics::MetricValue;
use virt_rpc::poll::raise_nofile_limit;
use virt_rpc::transport::TcpSocketListener;
use virtd::{Virtd, VirtdConfig};

const CONNS: usize = 1000;

fn metric(daemon: &Virtd, name: &str) -> u64 {
    daemon
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram(_) => panic!("{name} is a histogram"),
        })
        .unwrap_or_else(|| panic!("metric {name} not registered"))
}

/// Reads a numeric field (kB for Vm*, plain for Threads) out of
/// /proc/self/status.
fn proc_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .and_then(|rest| {
            rest.trim_start_matches(':')
                .split_whitespace()
                .next()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| panic!("{field} not in /proc/self/status"))
}

#[test]
#[ignore = "capacity smoke — run in release via scripts/ci.sh"]
fn thousand_idle_connections_flat_rss_bounded_accept() {
    raise_nofile_limit(16 * 1024);

    // The stock limit is libvirtd's 120 clients; this smoke is about
    // transport capacity, so raise it out of the way.
    let daemon = Virtd::builder(format!("smoke-{}", std::process::id()))
        .config(VirtdConfig::new().max_clients(CONNS as u32 * 2))
        .with_quiet_hosts()
        .build()
        .unwrap();
    let listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().to_string();
    daemon.serve(Box::new(listener));

    let threads_before = proc_status("Threads");
    let rss_before_kb = proc_status("VmRSS");

    let mut socks = Vec::with_capacity(CONNS);
    let mut accept_latency = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        let started = Instant::now();
        let sock = TcpStream::connect(&addr).expect("connect refused under idle load");
        accept_latency.push(started.elapsed());
        socks.push(sock);
    }

    let fds = "server.virtd.event_loop.registered_fds";
    let end = Instant::now() + Duration::from_secs(10);
    while metric(&daemon, fds) < CONNS as u64 {
        assert!(
            Instant::now() < end,
            "only {} of {CONNS} connections registered",
            metric(&daemon, fds)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let threads_grown = proc_status("Threads").saturating_sub(threads_before);
    let rss_grown_kb = proc_status("VmRSS").saturating_sub(rss_before_kb);

    // Thread-per-connection would add ~1000 here; the event core adds
    // none (its loops started with the daemon).
    assert!(
        threads_grown <= 8,
        "thread count grew by {threads_grown} for {CONNS} idle connections"
    );
    // Flat per-connection memory: the budget is ~16 KiB per idle
    // connection (client-side sockets included), far under the stack +
    // buffer cost of a reader thread each.
    assert!(
        rss_grown_kb <= (CONNS as u64) * 16,
        "RSS grew {rss_grown_kb} kB across {CONNS} idle connections"
    );
    // Bound the accept-latency distribution, not the single worst
    // sample: one stray kernel SYN retransmit (1 s RTO) on a loaded
    // box is noise, a shifted p99 is a collapsed accept path.
    accept_latency.sort();
    let p99 = accept_latency[CONNS * 99 / 100];
    let worst = *accept_latency.last().unwrap();
    assert!(
        p99 < Duration::from_millis(250),
        "accept latency collapsed: p99 connect took {p99:?}"
    );
    assert!(
        worst < Duration::from_secs(3),
        "accept latency collapsed: worst connect took {worst:?}"
    );

    drop(socks);
    let end = Instant::now() + Duration::from_secs(15);
    while metric(&daemon, fds) > 0 {
        assert!(
            Instant::now() < end,
            "{} fds still registered after hangup",
            metric(&daemon, fds)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.shutdown();
}

//! Lifecycle tests for [`virtd::ServeHandle`]: shutdown is idempotent,
//! join after shutdown returns promptly, and dropping a handle without
//! shutting it down neither hangs nor stops the service.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use virt_core::Connect;
use virt_rpc::transport::{TcpSocketListener, UnixSocketListener};
use virtd::Virtd;

fn unique(name: &str) -> String {
    static N: AtomicU64 = AtomicU64::new(0);
    format!(
        "{name}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    )
}

fn quiet(tag: &str) -> Virtd {
    Virtd::builder(unique(tag))
        .with_quiet_hosts()
        .build()
        .unwrap()
}

/// Runs `work` on a helper thread and asserts it finishes within 10 s —
/// turns a would-be deadlock into a test failure.
fn must_finish(what: &str, work: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        work();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .unwrap_or_else(|_| panic!("{what} did not finish within 10s"));
}

#[test]
fn double_shutdown_is_idempotent() {
    let daemon = quiet("sh-idem");
    let path = format!("/tmp/{}.sock", unique("sh-idem"));
    let handle = daemon
        .main_server()
        .serve(Box::new(UnixSocketListener::bind(&path).unwrap()));

    // The service accepts while the handle is live.
    let conn = Connect::builder(format!("qemu+unix:///system?socket={path}"))
        .open()
        .unwrap();
    assert!(conn.hostname().unwrap().ends_with("-qemu"));
    conn.close();

    handle.shutdown();
    handle.shutdown(); // second call is a no-op, not a panic or error

    // New connections are refused once the accept loop is closed.
    let refused = Connect::builder(format!("qemu+unix:///system?socket={path}"))
        .reconnect(false)
        .open();
    assert!(refused.is_err(), "listener still accepting after shutdown");

    must_finish("join after double shutdown", move || handle.join());
    daemon.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn join_after_shutdown_returns_cleanly() {
    let daemon = quiet("sh-join");
    let listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
    let handle = daemon.main_server().serve(Box::new(listener));

    handle.shutdown();
    let started = Instant::now();
    must_finish("join after shutdown", move || handle.join());
    // The accept thread observes the closed listener promptly; this is
    // a liveness bound, not a perf assertion.
    assert!(started.elapsed() < Duration::from_secs(10));
    daemon.shutdown();
}

#[test]
fn drop_without_shutdown_neither_hangs_nor_stops_the_service() {
    let daemon = quiet("sh-drop");
    let path = format!("/tmp/{}.sock", unique("sh-drop"));
    let handle = daemon
        .main_server()
        .serve(Box::new(UnixSocketListener::bind(&path).unwrap()));

    must_finish("dropping a live handle", move || drop(handle));

    // Dropping the handle does not stop the service: the server still
    // owns the accept loop and closes it at full shutdown.
    let conn = Connect::builder(format!("qemu+unix:///system?socket={path}"))
        .open()
        .unwrap();
    assert!(conn.hostname().unwrap().ends_with("-qemu"));
    conn.close();

    must_finish("daemon shutdown reaps the dropped service", move || {
        daemon.shutdown()
    });
    let _ = std::fs::remove_file(&path);
}

//! The event-driven connection core: a small fixed set of epoll loop
//! threads owning every ready-capable client connection.
//!
//! Thread-per-connection caps a daemon at thread-spawn cost: 5k idle
//! monitoring clients would pin 5k stacks. Instead, each accepted
//! transport that exposes a readiness surface ([`Readiness::Fd`] for
//! sockets, [`Readiness::Notify`] for in-process channels) is handed to
//! one of N loop threads, which multiplex all of them over a single
//! [`Poller`]:
//!
//! - **Reads** are nonblocking and incremental: a per-connection
//!   [`FrameReader`] accumulates the 4-byte length prefix and then the
//!   body into a pooled buffer, surviving any split across reads. A
//!   complete frame is handed to the server (keepalive and high-priority
//!   procedures run inline on the loop thread; everything else goes to
//!   the worker pool).
//! - **Writes** go through a per-connection [`ConnSink`]: worker threads
//!   try a direct nonblocking write, and only when the socket pushes
//!   back does the remainder spill into a bounded queue drained on
//!   `EPOLLOUT`. Past a soft cap the loop stops *reading* from that
//!   client (natural backpressure); past a hard cap the client is
//!   disconnected rather than allowed to balloon daemon memory.
//! - **Teardown** is single-owner: whichever event notices the death
//!   (read EOF, write error, hangup) removes the connection exactly
//!   once, deregistering the fd and dropping the pooled read buffer back
//!   to the freelist.
//!
//! Transports with no readiness surface ([`Readiness::Blocking`], e.g.
//! the simulated-TLS transport) keep the legacy dedicated reader thread
//! — the server falls back per connection, not globally.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use virt_metrics::{Counter, Gauge, Registry};
use virt_rpc::message::MAX_PACKET_LEN;
use virt_rpc::poll::{PollEvent, Poller, WAKE_TOKEN};
use virt_rpc::transport::{Readiness, Transport};
use virt_rpc::{BufferPool, PooledBuf};

use crate::server::ClientHandle;

/// Frames processed per connection per readiness event before yielding.
/// Level-triggered epoll re-reports leftover data on the next wait, so
/// capping the batch keeps one flooding client from starving the rest of
/// the loop without losing any frames.
const MAX_FRAMES_PER_EVENT: usize = 32;

/// Tuning for the event loops of one server.
#[derive(Debug, Clone)]
pub struct EventLoopOptions {
    /// Number of loop threads. Connections are assigned round-robin.
    pub event_threads: usize,
    /// Queued-write bytes above which the loop stops reading from the
    /// connection until the queue drains (per connection).
    pub write_soft_cap: usize,
    /// Queued-write bytes below which a paused connection resumes reads.
    pub write_resume_mark: usize,
    /// Queued-write bytes above which the connection is disconnected —
    /// a client that never reads replies cannot hold daemon memory.
    pub write_hard_cap: usize,
}

impl Default for EventLoopOptions {
    fn default() -> Self {
        EventLoopOptions {
            event_threads: 2,
            write_soft_cap: 256 * 1024,
            write_resume_mark: 64 * 1024,
            write_hard_cap: 4 * 1024 * 1024,
        }
    }
}

/// `server.{name}.event_loop.*` instrumentation, shared across all loop
/// threads of one server.
#[derive(Debug)]
pub(crate) struct EventLoopMetrics {
    /// Connections currently owned by the loops (fd-backed and channel).
    pub registered_fds: Arc<Gauge>,
    /// Times a loop thread woke from `epoll_wait`.
    pub wakeups: Arc<Counter>,
    /// Readiness events delivered across all wakeups.
    pub ready_events: Arc<Counter>,
    /// Bytes currently queued for write across all connections.
    pub write_queue_bytes: Arc<Gauge>,
    /// Times a connection's reads were paused by the write soft cap.
    pub reads_paused: Arc<Counter>,
    /// Connections dropped for exceeding the write hard cap.
    pub backpressure_closes: Arc<Counter>,
}

impl EventLoopMetrics {
    pub(crate) fn new() -> Arc<EventLoopMetrics> {
        Arc::new(EventLoopMetrics {
            registered_fds: Arc::new(Gauge::new()),
            wakeups: Arc::new(Counter::new()),
            ready_events: Arc::new(Counter::new()),
            write_queue_bytes: Arc::new(Gauge::new()),
            reads_paused: Arc::new(Counter::new()),
            backpressure_closes: Arc::new(Counter::new()),
        })
    }

    pub(crate) fn publish(&self, registry: &Registry, server_name: &str) {
        let n = server_name;
        let _ = registry.register_gauge(
            &format!("server.{n}.event_loop.registered_fds"),
            "Connections owned by the event loops (sockets and in-process channels)",
            Arc::clone(&self.registered_fds),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.event_loop.wakeups"),
            "Event-loop thread wakeups from epoll_wait",
            Arc::clone(&self.wakeups),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.event_loop.ready_events"),
            "Readiness events delivered to the event loops",
            Arc::clone(&self.ready_events),
        );
        let _ = registry.register_gauge(
            &format!("server.{n}.event_loop.write_queue_bytes"),
            "Reply bytes queued for write across all connections",
            Arc::clone(&self.write_queue_bytes),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.event_loop.reads_paused"),
            "Times a connection's reads were paused by write backpressure",
            Arc::clone(&self.reads_paused),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.event_loop.backpressure_closes"),
            "Connections dropped for exceeding the write-queue hard cap",
            Arc::clone(&self.backpressure_closes),
        );
    }
}

/// The server-side callbacks a loop fires. Implemented by `Server` (via
/// a weak reference, so the core never keeps its server alive).
pub(crate) trait ConnEvents: Send + Sync + 'static {
    /// A complete frame body arrived. Runs on the loop thread; returns
    /// whether to keep the connection (protocol garbage drops it).
    fn on_frame(&self, client: &Arc<ClientHandle>, body: &[u8]) -> bool;

    /// The connection is gone; the transport is already shut down.
    fn on_closed(&self, client: &Arc<ClientHandle>);

    /// A loop thread's poller failed fatally: the loop is going down and
    /// every connection it owned is being torn down. For diagnostics —
    /// the teardown itself already happened by way of `on_closed`.
    fn on_loop_error(&self, _error: &io::Error) {}
}

/// Incremental frame parser: 4-byte big-endian length prefix, then the
/// body, accumulated across arbitrarily small reads into a pooled
/// buffer. Dropping the reader returns the buffer to the pool — the
/// teardown path leaks nothing even when a client dies mid-frame.
struct FrameReader {
    prefix: [u8; 4],
    prefix_have: usize,
    body: PooledBuf,
    body_have: usize,
    body_len: usize,
    in_body: bool,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            prefix: [0; 4],
            prefix_have: 0,
            body: BufferPool::global().get(),
            body_have: 0,
            body_len: 0,
            in_body: false,
        }
    }
}

/// One queued (possibly partially written) wire frame.
struct QueuedFrame {
    buf: PooledBuf,
    off: usize,
}

struct SinkState {
    queue: VecDeque<QueuedFrame>,
    /// Total unwritten bytes across `queue`.
    queued: usize,
    /// EPOLLOUT interest is armed.
    want_write: bool,
    /// EPOLLIN interest is dropped (write soft cap exceeded).
    paused_reads: bool,
    closed: bool,
}

enum SinkRoute {
    /// The transport's own send never blocks (in-process channels) —
    /// frames go straight through.
    Direct,
    /// Nonblocking fd: direct-write fast path with spillover queue
    /// drained by the owning loop on `EPOLLOUT`.
    Queued {
        fd: i32,
        token: u64,
        poller: Arc<Poller>,
        state: Mutex<SinkState>,
        soft_cap: usize,
        resume_mark: usize,
        hard_cap: usize,
    },
}

/// The write side of one event-loop connection. Shared between the loop
/// (flushing on `EPOLLOUT`) and worker threads (`ClientHandle::send`).
pub(crate) struct ConnSink {
    transport: Arc<dyn Transport>,
    route: SinkRoute,
    metrics: Arc<EventLoopMetrics>,
    bytes_out: Arc<Counter>,
}

impl ConnSink {
    /// Sends one complete wire frame (length prefix included, as laid
    /// out by `Packet::encode_frame_into`).
    pub(crate) fn send_wire(&self, wire: &[u8]) -> io::Result<()> {
        match &self.route {
            SinkRoute::Direct => {
                self.transport.send_framed(wire)?;
                self.bytes_out.add(wire.len().saturating_sub(4) as u64);
                Ok(())
            }
            SinkRoute::Queued { .. } => self.send_queued(wire),
        }
    }

    fn send_queued(&self, wire: &[u8]) -> io::Result<()> {
        let SinkRoute::Queued {
            state,
            soft_cap,
            hard_cap,
            ..
        } = &self.route
        else {
            unreachable!()
        };
        let mut st = state.lock();
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection closed",
            ));
        }
        let mut off = 0;
        if st.queue.is_empty() {
            // Fast path: the socket usually accepts the whole frame and
            // no queuing (or loop involvement) happens at all.
            loop {
                match self.transport.try_write(&wire[off..]) {
                    Ok(0) => {
                        self.close_locked(&mut st);
                        return Err(io::ErrorKind::WriteZero.into());
                    }
                    Ok(n) => {
                        off += n;
                        if off == wire.len() {
                            self.bytes_out.add(wire.len().saturating_sub(4) as u64);
                            return Ok(());
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.close_locked(&mut st);
                        return Err(e);
                    }
                }
            }
        }
        // Spill the remainder (or, with a backlog, the whole frame —
        // ordering must hold) into the queue and arm EPOLLOUT.
        let mut buf = BufferPool::global().get();
        buf.extend_from_slice(&wire[off..]);
        let add = buf.len();
        st.queue.push_back(QueuedFrame { buf, off: 0 });
        st.queued += add;
        self.metrics.write_queue_bytes.add(add as u64);
        self.bytes_out.add(wire.len().saturating_sub(4) as u64);
        if st.queued > *hard_cap {
            // The client is not reading replies; cut it loose instead of
            // letting its backlog grow without bound.
            self.metrics.backpressure_closes.inc();
            self.close_locked(&mut st);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "write queue overflow",
            ));
        }
        let mut update = false;
        if !st.want_write {
            st.want_write = true;
            update = true;
        }
        if st.queued > *soft_cap && !st.paused_reads {
            st.paused_reads = true;
            self.metrics.reads_paused.inc();
            update = true;
        }
        if update {
            self.update_interest_locked(&st);
        }
        Ok(())
    }

    /// Drains as much of the queue as the socket accepts. Called by the
    /// loop on `EPOLLOUT`; returns whether the connection survives.
    fn flush(&self) -> bool {
        let SinkRoute::Queued {
            state, resume_mark, ..
        } = &self.route
        else {
            return true;
        };
        let mut st = state.lock();
        if st.closed {
            return false;
        }
        while let Some(front) = st.queue.front_mut() {
            match self.transport.try_write(&front.buf[front.off..]) {
                Ok(0) => {
                    self.close_locked(&mut st);
                    return false;
                }
                Ok(n) => {
                    front.off += n;
                    let done = front.off == front.buf.len();
                    st.queued -= n;
                    self.metrics.write_queue_bytes.sub(n as u64);
                    if done {
                        st.queue.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_locked(&mut st);
                    return false;
                }
            }
        }
        let mut update = false;
        if st.queue.is_empty() && st.want_write {
            st.want_write = false;
            update = true;
        }
        if st.paused_reads && st.queued <= *resume_mark {
            st.paused_reads = false;
            update = true;
        }
        if update {
            self.update_interest_locked(&st);
        }
        true
    }

    /// Whether backpressure currently pauses reads from this connection.
    fn reads_paused(&self) -> bool {
        match &self.route {
            SinkRoute::Direct => false,
            SinkRoute::Queued { state, .. } => state.lock().paused_reads,
        }
    }

    /// Unwritten reply bytes queued on this connection.
    fn queued_bytes(&self) -> usize {
        match &self.route {
            SinkRoute::Direct => 0,
            SinkRoute::Queued { state, .. } => state.lock().queued,
        }
    }

    /// Marks the sink dead, releases the queue, and shuts the transport
    /// down (which surfaces as a hangup on the owning loop).
    fn close(&self) {
        if let SinkRoute::Queued { state, .. } = &self.route {
            let mut st = state.lock();
            if !st.closed {
                self.close_locked(&mut st);
                return;
            }
        }
        let _ = self.transport.shutdown();
    }

    fn close_locked(&self, st: &mut SinkState) {
        st.closed = true;
        self.metrics.write_queue_bytes.sub(st.queued as u64);
        st.queued = 0;
        st.queue.clear();
        // Waking the peer: shutdown makes the fd readable-with-EOF, so
        // the owning loop notices and runs the teardown path. EPOLLERR
        // and EPOLLHUP are always delivered regardless of interest.
        let _ = self.transport.shutdown();
    }

    fn update_interest_locked(&self, st: &SinkState) {
        if let SinkRoute::Queued {
            fd, token, poller, ..
        } = &self.route
        {
            let _ = poller.modify(*fd, *token, !st.paused_reads, st.want_write);
        }
    }
}

enum ConnKind {
    Fd(i32),
    Channel,
}

/// One event-loop-owned connection: the read state machine plus the
/// write sink, keyed by the client id (which doubles as the epoll
/// token).
struct Conn {
    id: u64,
    client: Arc<ClientHandle>,
    kind: ConnKind,
    reader: Mutex<FrameReader>,
    sink: Arc<ConnSink>,
    /// Channel conns: set by the notifier, cleared by the drain — one
    /// queued wakeup at a time no matter how many frames arrive.
    notify_pending: Arc<AtomicBool>,
    /// First closer wins; everything else becomes a no-op.
    closing: AtomicBool,
}

struct LoopShared {
    poller: Arc<Poller>,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    /// Channel connections flagged ready since the last drain.
    ready_channels: Mutex<Vec<u64>>,
    shutdown: AtomicBool,
    /// Set when the loop thread dies on a poller error: `register`
    /// skips dead loops so new connections never land on a poller
    /// nothing waits on.
    dead: AtomicBool,
    events: Arc<dyn ConnEvents>,
    metrics: Arc<EventLoopMetrics>,
}

/// The event cores of one server: N loop threads, each with its own
/// poller and connection map.
pub(crate) struct EventCore {
    loops: Vec<Arc<LoopShared>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_loop: AtomicUsize,
    options: EventLoopOptions,
    metrics: Arc<EventLoopMetrics>,
}

impl EventCore {
    /// Starts the loop threads. Fails where epoll is unavailable — the
    /// server then serves every connection on legacy reader threads.
    pub(crate) fn start(
        server_name: &str,
        options: EventLoopOptions,
        events: Arc<dyn ConnEvents>,
        metrics: Arc<EventLoopMetrics>,
    ) -> io::Result<EventCore> {
        let threads_wanted = options.event_threads.max(1);
        let mut loops = Vec::with_capacity(threads_wanted);
        let mut handles = Vec::with_capacity(threads_wanted);
        for i in 0..threads_wanted {
            let shared = Arc::new(LoopShared {
                poller: Arc::new(Poller::new()?),
                conns: Mutex::new(HashMap::new()),
                ready_channels: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                dead: AtomicBool::new(false),
                events: Arc::clone(&events),
                metrics: Arc::clone(&metrics),
            });
            let run_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("{server_name}-evloop-{i}"))
                .spawn(move || Self::run(&run_shared))
                .map_err(|e| io::Error::other(format!("spawning event loop: {e}")))?;
            loops.push(shared);
            handles.push(handle);
        }
        Ok(EventCore {
            loops,
            threads: Mutex::new(handles),
            next_loop: AtomicUsize::new(0),
            options,
            metrics,
        })
    }

    /// Hands a freshly admitted client to one of the loops. On success
    /// the client's sink is installed and all its frames flow through
    /// the event core; on error the caller owns the fallback.
    pub(crate) fn register(
        &self,
        client: &Arc<ClientHandle>,
        bytes_out: Arc<Counter>,
    ) -> io::Result<()> {
        // Round-robin across loops that are still alive: a loop whose
        // poller failed is marked dead and skipped, so new connections
        // never land on a poller no thread waits on.
        let start = self.next_loop.fetch_add(1, Ordering::Relaxed);
        let shared = (0..self.loops.len())
            .map(|i| &self.loops[(start + i) % self.loops.len()])
            .find(|l| !l.shutdown.load(Ordering::Acquire) && !l.dead.load(Ordering::Acquire))
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "event core stopped"))?;
        let transport = Arc::clone(&client.transport);
        let id = client.id;
        match transport.readiness() {
            Readiness::Fd(fd) => {
                transport.set_nonblocking(true)?;
                let sink = Arc::new(ConnSink {
                    transport: Arc::clone(&transport),
                    route: SinkRoute::Queued {
                        fd,
                        token: id,
                        poller: Arc::clone(&shared.poller),
                        state: Mutex::new(SinkState {
                            queue: VecDeque::new(),
                            queued: 0,
                            want_write: false,
                            paused_reads: false,
                            closed: false,
                        }),
                        soft_cap: self.options.write_soft_cap,
                        resume_mark: self.options.write_resume_mark,
                        hard_cap: self.options.write_hard_cap,
                    },
                    metrics: Arc::clone(&self.metrics),
                    bytes_out,
                });
                // Register the fd *before* installing the sink or
                // publishing the conn: if epoll_ctl fails, the client
                // keeps an unset sink and the fallback reader thread
                // writes through the blocking transport directly —
                // nothing ever routes into a queue no loop drains. The
                // loop cannot act on this fd in between, because it
                // skips tokens absent from its conn map and
                // level-triggered epoll re-reports the readiness on the
                // next wait.
                if let Err(e) = shared.poller.register(fd, id, true, false) {
                    let _ = transport.set_nonblocking(false);
                    return Err(e);
                }
                client.install_sink(Arc::clone(&sink));
                let conn = Arc::new(Conn {
                    id,
                    client: Arc::clone(client),
                    kind: ConnKind::Fd(fd),
                    reader: Mutex::new(FrameReader::new()),
                    sink,
                    notify_pending: Arc::new(AtomicBool::new(false)),
                    closing: AtomicBool::new(false),
                });
                shared.conns.lock().insert(id, conn);
                self.metrics.registered_fds.inc();
            }
            Readiness::Notify => {
                let sink = Arc::new(ConnSink {
                    transport: Arc::clone(&transport),
                    route: SinkRoute::Direct,
                    metrics: Arc::clone(&self.metrics),
                    bytes_out,
                });
                client.install_sink(Arc::clone(&sink));
                let conn = Arc::new(Conn {
                    id,
                    client: Arc::clone(client),
                    kind: ConnKind::Channel,
                    reader: Mutex::new(FrameReader::new()),
                    sink,
                    notify_pending: Arc::new(AtomicBool::new(false)),
                    closing: AtomicBool::new(false),
                });
                shared.conns.lock().insert(id, Arc::clone(&conn));
                self.metrics.registered_fds.inc();
                let flag = Arc::clone(&conn.notify_pending);
                let weak: Weak<LoopShared> = Arc::downgrade(shared);
                // The notifier fires immediately if frames are already
                // waiting, so registration cannot miss a wakeup.
                transport.set_ready_notifier(Some(Arc::new(move || {
                    if !flag.swap(true, Ordering::AcqRel) {
                        if let Some(shared) = weak.upgrade() {
                            shared.ready_channels.lock().push(id);
                            shared.poller.wake();
                        }
                    }
                })));
            }
            Readiness::Blocking => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "transport has no readiness surface",
                ));
            }
        }
        Ok(())
    }

    /// Blocks until every connection's write queue is empty or the
    /// timeout passes — the graceful half of shutdown: in-flight replies
    /// reach the wire before the loops stop.
    pub(crate) fn drain(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let pending: usize = self
                .loops
                .iter()
                .flat_map(|l| l.conns.lock().values().cloned().collect::<Vec<_>>())
                .map(|c| c.sink.queued_bytes())
                .sum();
            if pending == 0 || Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops the loop threads and tears down every remaining connection
    /// (firing `on_closed` for each).
    pub(crate) fn stop(&self) {
        for shared in &self.loops {
            shared.shutdown.store(true, Ordering::Release);
            shared.poller.wake();
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
        for shared in &self.loops {
            let conns: Vec<Arc<Conn>> = shared.conns.lock().values().cloned().collect();
            for conn in conns {
                Self::teardown(shared, &conn);
            }
        }
    }

    fn run(shared: &Arc<LoopShared>) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(256);
        loop {
            events.clear();
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Err(e) = shared.poller.wait(&mut events, None) {
                // A broken poller strands every connection this loop
                // owns. Mark the loop dead first (register() skips dead
                // loops), surface the error, then tear the connections
                // down so clients see a close instead of a black hole.
                shared.dead.store(true, Ordering::Release);
                if !shared.shutdown.load(Ordering::Acquire) {
                    shared.events.on_loop_error(&e);
                }
                let conns: Vec<Arc<Conn>> = shared.conns.lock().values().cloned().collect();
                for conn in &conns {
                    Self::teardown(shared, conn);
                }
                return;
            }
            shared.metrics.wakeups.inc();
            shared.metrics.ready_events.add(events.len() as u64);
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    Self::drain_channels(shared);
                    continue;
                }
                let conn = shared.conns.lock().get(&ev.token).cloned();
                let Some(conn) = conn else { continue };
                let mut keep = true;
                if ev.writable {
                    keep = conn.sink.flush();
                }
                if keep && (ev.readable || ev.hangup) {
                    keep = Self::handle_readable(shared, &conn);
                }
                if !keep {
                    Self::teardown(shared, &conn);
                }
            }
        }
    }

    /// Reads until the socket would block, a frame budget is spent, or
    /// the connection dies. Returns whether it survives.
    fn handle_readable(shared: &Arc<LoopShared>, conn: &Arc<Conn>) -> bool {
        let transport = &conn.client.transport;
        let mut r = conn.reader.lock();
        let mut frames = 0;
        loop {
            if !r.in_body {
                let have = r.prefix_have;
                match transport.try_read(&mut r.prefix[have..]) {
                    Ok(0) => return false, // EOF
                    Ok(n) => {
                        r.prefix_have += n;
                        if r.prefix_have == 4 {
                            let len = u32::from_be_bytes(r.prefix);
                            if len == 0 || len > MAX_PACKET_LEN {
                                return false; // protocol garbage
                            }
                            r.body_len = len as usize;
                            r.body_have = 0;
                            r.body.clear();
                            r.body.resize(len as usize, 0);
                            r.in_body = true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            } else {
                let (have, len) = (r.body_have, r.body_len);
                match transport.try_read(&mut r.body[have..len]) {
                    Ok(0) => return false, // died mid-frame
                    Ok(n) => {
                        r.body_have += n;
                        if r.body_have == r.body_len {
                            r.in_body = false;
                            r.prefix_have = 0;
                            let body_len = r.body_len;
                            if !shared.events.on_frame(&conn.client, &r.body[..body_len]) {
                                return false;
                            }
                            frames += 1;
                            // Backpressure: once replies queue past the
                            // soft cap, stop pulling new requests.
                            if frames >= MAX_FRAMES_PER_EVENT || conn.sink.reads_paused() {
                                return true;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
    }

    fn drain_channels(shared: &Arc<LoopShared>) {
        loop {
            let ids: Vec<u64> = std::mem::take(&mut *shared.ready_channels.lock());
            if ids.is_empty() {
                return;
            }
            for id in ids {
                let conn = shared.conns.lock().get(&id).cloned();
                let Some(conn) = conn else { continue };
                // Clear before draining: a frame arriving mid-drain
                // re-flags and re-queues rather than getting lost.
                conn.notify_pending.store(false, Ordering::Release);
                if !Self::drain_one_channel(shared, &conn) {
                    Self::teardown(shared, &conn);
                }
            }
        }
    }

    fn drain_one_channel(shared: &Arc<LoopShared>, conn: &Arc<Conn>) -> bool {
        for _ in 0..MAX_FRAMES_PER_EVENT {
            match conn.client.transport.try_recv_frame() {
                Ok(Some(body)) => {
                    if !shared.events.on_frame(&conn.client, &body) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(_) => return false, // peer closed
            }
        }
        // Budget spent with frames still queued: self-requeue so other
        // connections get a turn first.
        if !conn.notify_pending.swap(true, Ordering::AcqRel) {
            shared.ready_channels.lock().push(conn.id);
            shared.poller.wake();
        }
        true
    }

    fn teardown(shared: &Arc<LoopShared>, conn: &Arc<Conn>) {
        if conn.closing.swap(true, Ordering::AcqRel) {
            return;
        }
        shared.conns.lock().remove(&conn.id);
        if let ConnKind::Fd(fd) = conn.kind {
            shared.poller.deregister(fd);
        }
        conn.client.transport.set_ready_notifier(None);
        conn.sink.close();
        shared.metrics.registered_fds.dec();
        shared.events.on_closed(&conn.client);
        // Dropping the last Conn reference returns the FrameReader's
        // pooled buffer to the freelist — even mid-frame.
    }
}

impl Drop for EventCore {
    fn drop(&mut self) {
        self.stop();
    }
}

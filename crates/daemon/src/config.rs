//! Daemon configuration.
//!
//! This is the equivalent of `libvirtd.conf`: the *persistent* settings a
//! daemon starts with. The admin interface can change the runtime values
//! afterwards — that distinction (persistent file vs runtime state) is
//! exactly why the admin interface exists.

use virt_rpc::retry::BackoffSchedule;
use virt_rpc::PoolLimits;

use virt_core::log::LogSettings;
use virt_core::StoreOptions;

/// Startup configuration of a daemon.
#[derive(Debug, Clone)]
pub struct VirtdConfig {
    /// Maximum simultaneously connected clients per server.
    pub max_clients: u32,
    /// Worker pool limits of the main server.
    pub pool_limits: PoolLimits,
    /// Worker pool limits of the admin server (smaller by default).
    pub admin_pool_limits: PoolLimits,
    /// Initial logging settings.
    pub log: LogSettings,
    /// When set, clients must AUTH with one of these `(user, password)`
    /// pairs before OPEN succeeds. `None` disables authentication.
    pub credentials: Option<Vec<(String, String)>>,
    /// When set, persistent object definitions and live-status records
    /// are kept crash-safe under this directory (the `/etc/libvirt` +
    /// `/run/libvirt` split), and startup runs a recovery pass against
    /// it. `None` keeps all state in memory.
    pub statedir: Option<std::path::PathBuf>,
    /// Event-loop threads of the main server. Each multiplexes its
    /// share of the connections over one epoll instance; requests still
    /// execute on the worker pool, so a handful is enough even at
    /// thousands of clients.
    pub event_threads: usize,
    /// Restart-backoff ladder used by the guard engine for `keep-running`
    /// policies. `None` keeps the engine's built-in default.
    pub guard_backoff: Option<BackoffSchedule>,
    /// Tuning of the statestore's group-commit pipeline (coalesce
    /// window, synchronous-write fallback). Only meaningful when
    /// `statedir` is set.
    pub statestore: StoreOptions,
}

impl VirtdConfig {
    /// libvirtd-like defaults: 120 clients, 5–20 workers + 5 priority.
    pub fn new() -> Self {
        VirtdConfig {
            max_clients: 120,
            pool_limits: PoolLimits::new(),
            admin_pool_limits: PoolLimits {
                min_workers: 1,
                max_workers: 5,
                priority_workers: 1,
            },
            log: LogSettings::new(),
            credentials: None,
            statedir: None,
            event_threads: 2,
            guard_backoff: None,
            statestore: StoreOptions::default(),
        }
    }

    /// Persists state under `dir` and recovers from it at startup.
    pub fn statedir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.statedir = Some(dir.into());
        self
    }

    /// Requires authentication with the given credential set.
    pub fn credentials(mut self, creds: Vec<(String, String)>) -> Self {
        self.credentials = Some(creds);
        self
    }

    /// Overrides the client limit.
    pub fn max_clients(mut self, max: u32) -> Self {
        self.max_clients = max;
        self
    }

    /// Overrides the main pool limits.
    pub fn pool_limits(mut self, limits: PoolLimits) -> Self {
        self.pool_limits = limits;
        self
    }

    /// Overrides the event-loop thread count of the main server.
    pub fn event_threads(mut self, threads: usize) -> Self {
        self.event_threads = threads.max(1);
        self
    }

    /// Overrides the guard engine's restart-backoff ladder.
    pub fn guard_backoff(mut self, schedule: BackoffSchedule) -> Self {
        self.guard_backoff = Some(schedule);
        self
    }

    /// Overrides the statestore pipeline tuning.
    pub fn statestore(mut self, options: StoreOptions) -> Self {
        self.statestore = options;
        self
    }
}

impl Default for VirtdConfig {
    fn default() -> Self {
        VirtdConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_libvirtd() {
        let config = VirtdConfig::new();
        assert_eq!(config.max_clients, 120);
        assert_eq!(config.pool_limits.min_workers, 5);
        assert_eq!(config.pool_limits.max_workers, 20);
        assert_eq!(config.pool_limits.priority_workers, 5);
        assert!(config.admin_pool_limits.max_workers < config.pool_limits.max_workers);
    }

    #[test]
    fn builder_overrides() {
        let config = VirtdConfig::new().max_clients(10).pool_limits(PoolLimits {
            min_workers: 1,
            max_workers: 2,
            priority_workers: 1,
        });
        assert_eq!(config.max_clients, 10);
        assert_eq!(config.pool_limits.max_workers, 2);
    }
}

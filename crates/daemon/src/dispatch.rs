//! The remote-program procedure table.
//!
//! Decodes each call's XDR arguments, executes it against the daemon's
//! local driver for the URI the client opened, and encodes the reply —
//! the exact mirror of the client-side remote driver. Because both sides
//! re-enter the same [`HypervisorConnection`] trait, a remote call is
//! *semantically identical* to a local one; only latency differs. That
//! equivalence is what the differential tests in `tests/` assert.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use virt_core::driver::HypervisorConnection;
use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::error::{ErrorCode, VirtError, VirtResult};
use virt_core::event::CallbackId;
use virt_core::log::Logger;
use virt_core::metrics::recorder::FlightRecorder;
use virt_core::metrics::span;
use virt_core::metrics::trace::{self, RequestId};
use virt_core::metrics::{Counter, Histogram, Registry};
use virt_core::protocol::{self, proc};
use virt_core::uri::ConnectUri;
use virt_rpc::message::{Header, Packet, REMOTE_PROGRAM};
use virt_rpc::xdr::XdrEncode;

use crate::server::{ClientHandle, ProgramDispatcher};

struct ClientSession {
    conn: Arc<EmbeddedConnection>,
    event_callback: Option<CallbackId>,
    readonly: bool,
}

/// Per-procedure instrumentation: one latency histogram plus an error
/// counter per known procedure number.
#[derive(Debug)]
struct ProcMetrics {
    latency_us: Arc<Histogram>,
    errors: Arc<Counter>,
}

impl ProcMetrics {
    fn new() -> Self {
        ProcMetrics {
            latency_us: Arc::new(Histogram::new()),
            errors: Arc::new(Counter::new()),
        }
    }
}

/// Dispatch-layer metrics. The per-procedure map is built once at
/// construction from [`proc::ALL`] and never mutated, so the record path
/// is a plain `HashMap` lookup plus relaxed atomics — no locks.
#[derive(Debug)]
struct DispatchMetrics {
    per_proc: HashMap<u32, ProcMetrics>,
    /// Catch-all for procedure numbers not in [`proc::ALL`].
    unknown: ProcMetrics,
    /// Total calls dispatched.
    calls: Arc<Counter>,
    /// Total calls that returned an error.
    errors: Arc<Counter>,
    /// Failed AUTH attempts.
    auth_failures: Arc<Counter>,
}

impl DispatchMetrics {
    fn new() -> Self {
        DispatchMetrics {
            per_proc: proc::ALL
                .iter()
                .map(|(num, _)| (*num, ProcMetrics::new()))
                .collect(),
            unknown: ProcMetrics::new(),
            calls: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
            auth_failures: Arc::new(Counter::new()),
        }
    }

    fn for_proc(&self, procedure: u32) -> &ProcMetrics {
        self.per_proc.get(&procedure).unwrap_or(&self.unknown)
    }
}

/// Dispatcher for [`REMOTE_PROGRAM`].
pub struct RemoteDispatcher {
    /// scheme → local driver connection (`qemu`, `xen`, `lxc`, ...).
    drivers: HashMap<String, Arc<EmbeddedConnection>>,
    sessions: Mutex<HashMap<u64, ClientSession>>,
    logger: Arc<Logger>,
    /// `(user, password)` pairs; `None` disables authentication.
    credentials: Option<Vec<(String, String)>>,
    /// Client ids that have passed AUTH (only tracked when required).
    authenticated: Mutex<std::collections::HashSet<u64>>,
    metrics: DispatchMetrics,
}

impl RemoteDispatcher {
    /// Creates a dispatcher over the daemon's local drivers.
    pub fn new(
        drivers: HashMap<String, Arc<EmbeddedConnection>>,
        logger: Arc<Logger>,
        credentials: Option<Vec<(String, String)>>,
    ) -> Arc<Self> {
        Arc::new(RemoteDispatcher {
            drivers,
            sessions: Mutex::new(HashMap::new()),
            logger,
            credentials,
            authenticated: Mutex::new(std::collections::HashSet::new()),
            metrics: DispatchMetrics::new(),
        })
    }

    /// Publishes the dispatcher's metrics into `registry`: per-procedure
    /// latency histograms and error counters as `rpc.proc.{num}.*` (the
    /// help text carries the symbolic name), plus `rpc.calls`,
    /// `rpc.errors` and `rpc.auth_failures` totals.
    pub fn publish_metrics(&self, registry: &Registry) {
        for (num, name) in proc::ALL {
            let pm = self.metrics.for_proc(*num);
            let _ = registry.register_histogram(
                &format!("rpc.proc.{num}.latency_us"),
                &format!("Dispatch latency of {name} (procedure {num})"),
                Arc::clone(&pm.latency_us),
            );
            let _ = registry.register_counter(
                &format!("rpc.proc.{num}.errors"),
                &format!("Error replies from {name} (procedure {num})"),
                Arc::clone(&pm.errors),
            );
        }
        let _ = registry.register_histogram(
            "rpc.proc.unknown.latency_us",
            "Dispatch latency of calls to unknown procedure numbers",
            Arc::clone(&self.metrics.unknown.latency_us),
        );
        let _ = registry.register_counter(
            "rpc.proc.unknown.errors",
            "Error replies for unknown procedure numbers",
            Arc::clone(&self.metrics.unknown.errors),
        );
        let _ = registry.register_counter(
            "rpc.calls",
            "Total RPC calls dispatched",
            Arc::clone(&self.metrics.calls),
        );
        let _ = registry.register_counter(
            "rpc.errors",
            "Total RPC calls that returned an error",
            Arc::clone(&self.metrics.errors),
        );
        let _ = registry.register_counter(
            "rpc.auth_failures",
            "Failed AUTH attempts",
            Arc::clone(&self.metrics.auth_failures),
        );
    }

    fn session_conn(&self, client_id: u64) -> VirtResult<Arc<EmbeddedConnection>> {
        self.sessions
            .lock()
            .get(&client_id)
            .map(|s| Arc::clone(&s.conn))
            .ok_or_else(|| VirtError::new(ErrorCode::ConnectInvalid, "no connection opened"))
    }

    fn handle(
        &self,
        client: &Arc<ClientHandle>,
        header: Header,
        payload: &[u8],
    ) -> VirtResult<Vec<u8>> {
        // AUTH may precede OPEN on daemons requiring credentials.
        if header.procedure == proc::AUTH {
            let args: protocol::AuthArgs = decode(payload)?;
            let Some(credentials) = &self.credentials else {
                // No authentication configured: accept and record the name.
                client.identity.lock().username = Some(args.username);
                return Ok(().to_xdr());
            };
            let valid = credentials
                .iter()
                .any(|(user, pass)| *user == args.username && *pass == args.password);
            if !valid {
                self.logger.warning(
                    "daemon.rpc",
                    &format!(
                        "client {} failed authentication as '{}'",
                        client.id, args.username
                    ),
                );
                return Err(VirtError::new(
                    ErrorCode::AuthFailed,
                    format!("invalid credentials for '{}'", args.username),
                ));
            }
            self.authenticated.lock().insert(client.id);
            client.identity.lock().username = Some(args.username);
            return Ok(().to_xdr());
        }

        // OPEN establishes the session; everything else requires one.
        if header.procedure == proc::OPEN {
            // One connection, one session: a second OPEN would let a
            // read-only client replace its session with a writable one.
            if self.sessions.lock().contains_key(&client.id) {
                return Err(VirtError::new(
                    ErrorCode::OperationInvalid,
                    "connection already open",
                ));
            }
            if self.credentials.is_some() && !self.authenticated.lock().contains(&client.id) {
                return Err(VirtError::new(
                    ErrorCode::AuthFailed,
                    "authentication required before open",
                ));
            }
            let args: protocol::OpenArgs = decode(payload)?;
            let uri: ConnectUri = args.uri.parse()?;
            let conn = self
                .drivers
                .get(uri.driver())
                .ok_or_else(|| {
                    VirtError::new(
                        ErrorCode::NoConnect,
                        format!("daemon has no driver for scheme '{}'", uri.driver()),
                    )
                })?
                .clone();
            self.logger.info(
                "daemon.rpc",
                &format!(
                    "client {} opened {}{}",
                    client.id,
                    args.uri,
                    if args.readonly { " (read-only)" } else { "" }
                ),
            );
            client.identity.lock().readonly = args.readonly;
            self.sessions.lock().insert(
                client.id,
                ClientSession {
                    conn,
                    event_callback: None,
                    readonly: args.readonly,
                },
            );
            return Ok(().to_xdr());
        }

        // Read-only sessions may only call read-only-safe procedures.
        {
            let sessions = self.sessions.lock();
            if let Some(session) = sessions.get(&client.id) {
                if session.readonly && !protocol::is_readonly_safe(header.procedure) {
                    return Err(VirtError::new(
                        ErrorCode::AccessDenied,
                        format!(
                            "procedure {} forbidden on a read-only connection",
                            header.procedure
                        ),
                    ));
                }
            }
        }

        let conn = self.session_conn(client.id)?;
        let c: &dyn HypervisorConnection = conn.as_ref();

        let reply: Vec<u8> = match header.procedure {
            proc::CLOSE => {
                self.cleanup_session(client.id);
                ().to_xdr()
            }
            proc::GET_HOSTNAME => c.hostname()?.to_xdr(),
            proc::GET_CAPABILITIES => c.capabilities()?.to_xml_string().to_xdr(),
            proc::NODE_INFO => protocol::WireNodeInfo::from(&c.node_info()?).to_xdr(),

            proc::LIST_DOMAINS => {
                let records = c.list_domains()?;
                protocol::WireDomainList(records.iter().map(protocol::WireDomain::from).collect())
                    .to_xdr()
            }
            proc::DOMAIN_LOOKUP_NAME => {
                let args: protocol::NameArgs = decode(payload)?;
                domain_reply(c.lookup_domain_by_name(&args.name)?)
            }
            proc::DOMAIN_LOOKUP_ID => {
                let args: protocol::NameU32Args = decode(payload)?;
                domain_reply(c.lookup_domain_by_id(args.value)?)
            }
            proc::DOMAIN_LOOKUP_UUID => {
                let uuid: [u8; 16] = decode(payload)?;
                domain_reply(c.lookup_domain_by_uuid(virt_core::Uuid::from_bytes(uuid))?)
            }
            proc::DOMAIN_DEFINE_XML => {
                let args: protocol::XmlArgs = decode(payload)?;
                domain_reply(c.define_domain_xml(&args.xml)?)
            }
            proc::DOMAIN_CREATE_XML => {
                let args: protocol::XmlArgs = decode(payload)?;
                domain_reply(c.create_domain_xml(&args.xml)?)
            }
            proc::DOMAIN_UNDEFINE => {
                let args: protocol::NameArgs = decode(payload)?;
                c.undefine_domain(&args.name)?;
                ().to_xdr()
            }
            proc::DOMAIN_START => name_op(payload, |n| c.start_domain(n))?,
            proc::DOMAIN_SHUTDOWN => name_op(payload, |n| c.shutdown_domain(n))?,
            proc::DOMAIN_REBOOT => name_op(payload, |n| c.reboot_domain(n))?,
            proc::DOMAIN_DESTROY => name_op(payload, |n| c.destroy_domain(n))?,
            proc::DOMAIN_SUSPEND => name_op(payload, |n| c.suspend_domain(n))?,
            proc::DOMAIN_RESUME => name_op(payload, |n| c.resume_domain(n))?,
            proc::DOMAIN_SAVE => name_op(payload, |n| c.save_domain(n))?,
            proc::DOMAIN_RESTORE => name_op(payload, |n| c.restore_domain(n))?,
            proc::DOMAIN_SET_MEMORY => {
                let args: protocol::NameU64Args = decode(payload)?;
                domain_reply(c.set_domain_memory(&args.name, args.value)?)
            }
            proc::DOMAIN_SET_VCPUS => {
                let args: protocol::NameU32Args = decode(payload)?;
                domain_reply(c.set_domain_vcpus(&args.name, args.value)?)
            }
            proc::DOMAIN_ATTACH_DEVICE => {
                let args: protocol::NameStringArgs = decode(payload)?;
                domain_reply(c.attach_device(&args.name, &args.value)?)
            }
            proc::DOMAIN_DETACH_DEVICE => {
                let args: protocol::NameStringArgs = decode(payload)?;
                domain_reply(c.detach_device(&args.name, &args.value)?)
            }
            proc::DOMAIN_SNAPSHOT => {
                let args: protocol::NameStringArgs = decode(payload)?;
                domain_reply(c.snapshot_domain(&args.name, &args.value)?)
            }
            proc::DOMAIN_SNAPSHOT_REVERT => {
                let args: protocol::NameStringArgs = decode(payload)?;
                domain_reply(c.revert_snapshot(&args.name, &args.value)?)
            }
            proc::DOMAIN_SNAPSHOT_DELETE => {
                let args: protocol::NameStringArgs = decode(payload)?;
                c.delete_snapshot(&args.name, &args.value)?;
                ().to_xdr()
            }
            proc::DOMAIN_LIST_SNAPSHOTS => {
                let args: protocol::NameArgs = decode(payload)?;
                c.list_snapshots(&args.name)?.to_xdr()
            }
            proc::DOMAIN_SET_AUTOSTART => {
                let args: protocol::NameBoolArgs = decode(payload)?;
                c.set_autostart(&args.name, args.value)?;
                ().to_xdr()
            }
            proc::DOMAIN_GET_AUTOSTART => {
                let args: protocol::NameArgs = decode(payload)?;
                c.get_autostart(&args.name)?.to_xdr()
            }
            proc::DOMAIN_DUMP_XML => {
                let args: protocol::NameArgs = decode(payload)?;
                c.dump_domain_xml(&args.name)?.to_xdr()
            }
            proc::DOMAIN_CRASH => {
                let args: protocol::NameArgs = decode(payload)?;
                domain_reply(c.crash_domain(&args.name)?)
            }

            proc::GUARD_SET => {
                let args: protocol::GuardSetArgs = decode(payload)?;
                let policy = args.to_policy().ok_or_else(|| {
                    VirtError::new(
                        ErrorCode::InvalidArg,
                        format!("unknown guard policy kind {}", args.kind),
                    )
                })?;
                c.guard_set(&args.name, &policy)?;
                ().to_xdr()
            }
            proc::GUARD_REMOVE => {
                let args: protocol::NameArgs = decode(payload)?;
                c.guard_remove(&args.name)?;
                ().to_xdr()
            }
            proc::GUARD_LIST => {
                let statuses = c.guard_list()?;
                protocol::WireGuardStatusList(
                    statuses
                        .iter()
                        .map(protocol::WireGuardStatus::from)
                        .collect(),
                )
                .to_xdr()
            }
            proc::GUARD_STATUS => {
                let args: protocol::NameArgs = decode(payload)?;
                protocol::WireGuardStatus::from(&c.guard_status(&args.name)?).to_xdr()
            }

            proc::MIGRATE_BEGIN => {
                let args: protocol::NameArgs = decode(payload)?;
                c.migrate_begin(&args.name)?.to_xdr()
            }
            proc::MIGRATE_PREPARE => {
                let args: protocol::XmlArgs = decode(payload)?;
                c.migrate_prepare(&args.xml)?;
                ().to_xdr()
            }
            proc::MIGRATE_PERFORM => {
                let args: protocol::MigratePerformArgs = decode(payload)?;
                let report = c.migrate_perform(&args.name, &args.to_options())?;
                protocol::WireMigrationReport::from(&report).to_xdr()
            }
            proc::MIGRATE_FINISH => {
                let args: protocol::XmlArgs = decode(payload)?;
                domain_reply(c.migrate_finish(&args.xml)?)
            }
            proc::MIGRATE_CONFIRM => {
                let args: protocol::NameArgs = decode(payload)?;
                c.migrate_confirm(&args.name)?;
                ().to_xdr()
            }
            proc::MIGRATE_ABORT => {
                let args: protocol::NameArgs = decode(payload)?;
                c.migrate_abort(&args.name)?;
                ().to_xdr()
            }

            proc::DOMAIN_GET_JOB_STATS => {
                let args: protocol::NameArgs = decode(payload)?;
                protocol::WireJobStats::from(&c.domain_job_stats(&args.name)?).to_xdr()
            }
            proc::DOMAIN_ABORT_JOB => {
                let args: protocol::NameArgs = decode(payload)?;
                c.abort_domain_job(&args.name)?;
                ().to_xdr()
            }
            proc::CONNECT_GET_ALL_DOMAIN_STATS => {
                let records = c.get_all_domain_stats()?;
                protocol::WireDomainStatsList(
                    records
                        .into_iter()
                        .map(|r| protocol::WireDomainStatsRecord {
                            name: r.name,
                            params: virt_core::typedparam::TypedParamList(r.params),
                        })
                        .collect(),
                )
                .to_xdr()
            }

            proc::LIST_POOLS => c.list_pools()?.to_xdr(),
            proc::POOL_INFO => {
                let args: protocol::NameArgs = decode(payload)?;
                protocol::WirePool::from(&c.pool_info(&args.name)?).to_xdr()
            }
            proc::POOL_DEFINE_XML => {
                let args: protocol::XmlArgs = decode(payload)?;
                protocol::WirePool::from(&c.define_pool_xml(&args.xml)?).to_xdr()
            }
            proc::POOL_START => {
                let args: protocol::NameArgs = decode(payload)?;
                c.start_pool(&args.name)?;
                ().to_xdr()
            }
            proc::POOL_STOP => {
                let args: protocol::NameArgs = decode(payload)?;
                c.stop_pool(&args.name)?;
                ().to_xdr()
            }
            proc::POOL_UNDEFINE => {
                let args: protocol::NameArgs = decode(payload)?;
                c.undefine_pool(&args.name)?;
                ().to_xdr()
            }
            proc::LIST_VOLUMES => {
                let args: protocol::NameArgs = decode(payload)?;
                c.list_volumes(&args.name)?.to_xdr()
            }
            proc::VOLUME_INFO => {
                let args: protocol::PoolVolArgs = decode(payload)?;
                protocol::WireVolume::from(&c.volume_info(&args.pool, &args.name)?).to_xdr()
            }
            proc::VOLUME_CREATE_XML => {
                let args: protocol::PoolXmlArgs = decode(payload)?;
                protocol::WireVolume::from(&c.create_volume_xml(&args.pool, &args.xml)?).to_xdr()
            }
            proc::VOLUME_DELETE => {
                let args: protocol::PoolVolArgs = decode(payload)?;
                c.delete_volume(&args.pool, &args.name)?;
                ().to_xdr()
            }
            proc::VOLUME_RESIZE => {
                let args: protocol::VolResizeArgs = decode(payload)?;
                c.resize_volume(&args.pool, &args.name, args.capacity_mib)?;
                ().to_xdr()
            }
            proc::VOLUME_CLONE => {
                let args: protocol::VolCloneArgs = decode(payload)?;
                protocol::WireVolume::from(&c.clone_volume(
                    &args.pool,
                    &args.source,
                    &args.new_name,
                )?)
                .to_xdr()
            }

            proc::LIST_NETWORKS => c.list_networks()?.to_xdr(),
            proc::NETWORK_INFO => {
                let args: protocol::NameArgs = decode(payload)?;
                protocol::WireNetwork::from(&c.network_info(&args.name)?).to_xdr()
            }
            proc::NETWORK_DEFINE_XML => {
                let args: protocol::XmlArgs = decode(payload)?;
                protocol::WireNetwork::from(&c.define_network_xml(&args.xml)?).to_xdr()
            }
            proc::NETWORK_START => {
                let args: protocol::NameArgs = decode(payload)?;
                c.start_network(&args.name)?;
                ().to_xdr()
            }
            proc::NETWORK_STOP => {
                let args: protocol::NameArgs = decode(payload)?;
                c.stop_network(&args.name)?;
                ().to_xdr()
            }
            proc::NETWORK_UNDEFINE => {
                let args: protocol::NameArgs = decode(payload)?;
                c.undefine_network(&args.name)?;
                ().to_xdr()
            }

            proc::EVENT_REGISTER => {
                let mut sessions = self.sessions.lock();
                let session = sessions.get_mut(&client.id).ok_or_else(|| {
                    VirtError::new(ErrorCode::ConnectInvalid, "no connection opened")
                })?;
                if session.event_callback.is_none() {
                    let event_client = Arc::clone(client);
                    let id = conn.events().register(Arc::new(move |event| {
                        // Job lifecycle notifications ride their own
                        // procedure so clients can tell the channels apart.
                        let procedure = if event.kind.is_job_event() {
                            proc::EVENT_DOMAIN_JOB
                        } else {
                            proc::EVENT_LIFECYCLE
                        };
                        let packet = Packet::new(
                            Header::event(REMOTE_PROGRAM, procedure),
                            &protocol::WireEvent::from(event),
                        );
                        let _ = event_client.send(&packet);
                    }));
                    session.event_callback = Some(id);
                }
                ().to_xdr()
            }
            proc::EVENT_DEREGISTER => {
                let mut sessions = self.sessions.lock();
                if let Some(session) = sessions.get_mut(&client.id) {
                    if let Some(id) = session.event_callback.take() {
                        conn.events().unregister(id);
                    }
                }
                ().to_xdr()
            }

            other => {
                return Err(VirtError::new(
                    ErrorCode::RpcFailure,
                    format!("unknown procedure {other}"),
                ))
            }
        };
        Ok(reply)
    }

    fn cleanup_session(&self, client_id: u64) {
        self.authenticated.lock().remove(&client_id);
        if let Some(session) = self.sessions.lock().remove(&client_id) {
            if let Some(id) = session.event_callback {
                session.conn.events().unregister(id);
            }
        }
    }
}

fn decode<T: virt_rpc::xdr::XdrDecode>(payload: &[u8]) -> VirtResult<T> {
    T::from_xdr(payload)
        .map_err(|e| VirtError::new(ErrorCode::RpcFailure, format!("bad arguments: {e}")))
}

fn domain_reply(record: virt_core::DomainRecord) -> Vec<u8> {
    protocol::WireDomain::from(&record).to_xdr()
}

fn name_op(
    payload: &[u8],
    op: impl FnOnce(&str) -> VirtResult<virt_core::DomainRecord>,
) -> VirtResult<Vec<u8>> {
    let args: protocol::NameArgs = decode(payload)?;
    Ok(domain_reply(op(&args.name)?))
}

impl ProgramDispatcher for RemoteDispatcher {
    fn program(&self) -> u32 {
        REMOTE_PROGRAM
    }

    fn is_high_priority(&self, procedure: u32) -> bool {
        protocol::is_high_priority(procedure)
    }

    fn dispatch(&self, client: &Arc<ClientHandle>, header: Header, payload: &[u8]) -> Packet {
        // Request id (client id + packet serial) threads through the
        // thread-local trace span so every log record emitted while this
        // call runs can be correlated back to the RPC.
        let _span = trace::enter(RequestId::new(client.id, header.serial));
        let proc_metrics = self.metrics.for_proc(header.procedure);
        self.metrics.calls.inc();
        let timer = proc_metrics.latency_us.start_timer();
        let started = std::time::Instant::now();
        let result = self.handle(client, header, payload);
        drop(timer);
        // Slow-request promotion: when the request ran over the recorder's
        // threshold, its stage breakdown graduates from the in-memory ring
        // into the structured log where it outlives the ring's churn.
        if let Some(report) =
            FlightRecorder::global().slow_report(span::current_trace_id(), started.elapsed())
        {
            self.logger.warning("daemon.trace", &report);
        }
        match result {
            Ok(reply_payload) => Packet {
                header: header.reply_ok(),
                payload: reply_payload,
            },
            Err(err) => {
                self.metrics.errors.inc();
                proc_metrics.errors.inc();
                if err.code() == ErrorCode::AuthFailed {
                    self.metrics.auth_failures.inc();
                }
                self.logger.warning(
                    "daemon.rpc",
                    &format!(
                        "client {} proc {} failed: {err}",
                        client.id, header.procedure
                    ),
                );
                Packet::new(header.reply_error(), &err.to_rpc())
            }
        }
    }

    fn on_disconnect(&self, client_id: u64) {
        self.cleanup_session(client_id);
    }
}

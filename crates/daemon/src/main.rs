//! `virtd` — the management daemon binary.
//!
//! Runs the daemon as a standalone process, serving the remote protocol
//! on Unix and/or TCP sockets and the admin protocol on its own Unix
//! socket, until terminated.
//!
//! ```text
//! virtd [--name NAME] [--unix PATH] [--tcp ADDR] [--admin-unix PATH]
//!       [--max-clients N] [--quiet-hosts] [--slow-migration] [--statedir DIR]
//!       [--statestore-flush-ms MS] [--statestore-sync]
//! ```
//!
//! Defaults: name `virtd`, remote socket `/tmp/virtd.sock`, admin socket
//! `/tmp/virtd-admin.sock`, realistic host latency models, no state
//! directory (all state in memory). With `--statedir`, definitions are
//! persisted crash-safe under `DIR` and recovered at the next start;
//! `--statestore-flush-ms` tunes how long the persister lets volatile
//! write-behind records coalesce before flushing, and
//! `--statestore-sync` disables the pipeline entirely (every write pays
//! its own fsync cycle — the pre-group-commit behavior).

use virt_rpc::transport::{TcpSocketListener, UnixSocketListener};
use virtd::{Virtd, VirtdConfig};

struct Options {
    name: String,
    unix: Option<String>,
    tcp: Option<String>,
    admin_unix: String,
    max_clients: u32,
    quiet_hosts: bool,
    slow_migration: bool,
    statedir: Option<String>,
    statestore_flush_ms: Option<u64>,
    statestore_sync: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        name: "virtd".to_string(),
        unix: Some("/tmp/virtd.sock".to_string()),
        tcp: None,
        admin_unix: "/tmp/virtd-admin.sock".to_string(),
        max_clients: 120,
        quiet_hosts: false,
        slow_migration: false,
        statedir: None,
        statestore_flush_ms: None,
        statestore_sync: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--name" => {
                options.name = value(args, i, "--name")?;
                i += 1;
            }
            "--unix" => {
                options.unix = Some(value(args, i, "--unix")?);
                i += 1;
            }
            "--no-unix" => options.unix = None,
            "--tcp" => {
                options.tcp = Some(value(args, i, "--tcp")?);
                i += 1;
            }
            "--admin-unix" => {
                options.admin_unix = value(args, i, "--admin-unix")?;
                i += 1;
            }
            "--max-clients" => {
                options.max_clients = value(args, i, "--max-clients")?
                    .parse()
                    .map_err(|_| "--max-clients must be a number".to_string())?;
                i += 1;
            }
            "--quiet-hosts" => options.quiet_hosts = true,
            "--slow-migration" => options.slow_migration = true,
            "--statedir" => {
                options.statedir = Some(value(args, i, "--statedir")?);
                i += 1;
            }
            "--statestore-flush-ms" => {
                options.statestore_flush_ms = Some(
                    value(args, i, "--statestore-flush-ms")?
                        .parse()
                        .map_err(|_| "--statestore-flush-ms must be a number".to_string())?,
                );
                i += 1;
            }
            "--statestore-sync" => options.statestore_sync = true,
            "--help" | "-h" => {
                return Err(
                    "usage: virtd [--name NAME] [--unix PATH|--no-unix] [--tcp ADDR] \
                            [--admin-unix PATH] [--max-clients N] [--quiet-hosts] \
                            [--slow-migration] [--statedir DIR] \
                            [--statestore-flush-ms MS] [--statestore-sync]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let mut config = VirtdConfig::new().max_clients(options.max_clients);
    if let Some(dir) = &options.statedir {
        config = config.statedir(dir);
    }
    let mut store_options = virtd::StoreOptions::default();
    if let Some(ms) = options.statestore_flush_ms {
        store_options.coalesce_window = std::time::Duration::from_millis(ms);
    }
    store_options.sync_writes = options.statestore_sync;
    config = config.statestore(store_options);
    let mut builder = Virtd::builder(&options.name).config(config);
    builder = if options.quiet_hosts {
        builder.with_quiet_hosts()
    } else {
        builder.with_default_hosts()
    };
    if options.slow_migration {
        // Chaos-test knob: replaces the qemu host with one whose
        // migration transfer takes real wall time (see
        // VirtdBuilder::with_slow_migration_hosts), so a test can
        // SIGKILL the daemon while a migration is genuinely in flight.
        builder = builder.with_slow_migration_hosts();
    }
    let daemon = match builder.build() {
        Ok(daemon) => daemon,
        Err(err) => {
            eprintln!("virtd: failed to start: {err}");
            std::process::exit(1);
        }
    };

    if let Some(path) = &options.unix {
        match UnixSocketListener::bind(path) {
            Ok(listener) => {
                println!("virtd: remote protocol on unix:{path}");
                daemon.serve(Box::new(listener));
            }
            Err(err) => {
                eprintln!("virtd: cannot bind {path}: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(addr) = &options.tcp {
        match TcpSocketListener::bind(addr) {
            Ok(listener) => {
                println!("virtd: remote protocol on tcp:{}", listener.local_addr());
                daemon.serve(Box::new(listener));
            }
            Err(err) => {
                eprintln!("virtd: cannot bind {addr}: {err}");
                std::process::exit(1);
            }
        }
    }
    match UnixSocketListener::bind(&options.admin_unix) {
        Ok(listener) => {
            println!("virtd: admin protocol on unix:{}", options.admin_unix);
            daemon.serve_admin(Box::new(listener));
        }
        Err(err) => {
            eprintln!(
                "virtd: cannot bind admin socket {}: {err}",
                options.admin_unix
            );
            std::process::exit(1);
        }
    }

    println!("virtd: '{}' ready (drivers: qemu, xen, lxc)", daemon.name());
    // Serve until killed. Accept loops run on their own threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

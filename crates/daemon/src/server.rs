//! The server object: client acceptance, tracking, and request execution.
//!
//! A [`Server`] owns a worker pool, a client table, and an event core.
//! Services (listeners) are attached with [`Server::serve`], which
//! returns a [`ServeHandle`] for graceful shutdown/join. Accepted
//! clients whose transports expose a readiness surface are multiplexed
//! onto a small fixed set of epoll loop threads (see
//! [`crate::eventloop`]); transports without one fall back to a
//! dedicated reader thread. Either way, complete frames are submitted
//! to the pool — high-priority procedures run inline (on the event
//! thread or reader thread), so control-plane queries stay responsive
//! when ordinary workers are wedged on a hung hypervisor call.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use virt_core::log::Logger;
use virt_metrics::span::{self, Stage};
use virt_metrics::{Counter, Gauge, Registry};
use virt_rpc::keepalive;
use virt_rpc::message::{Header, MessageStatus, Packet, RpcError};
use virt_rpc::transport::{Listener, MeteredTransport, Readiness, Transport, TransportKind};
use virt_rpc::{PoolLimits, PoolStats, WorkerPool};

use crate::eventloop::{ConnEvents, ConnSink, EventCore, EventLoopMetrics, EventLoopOptions};

/// Whether an `accept()` failure is transient pressure worth retrying
/// (with backoff) rather than a dead listener. EMFILE/ENFILE have no
/// stable `ErrorKind`, so those are matched by errno — the values are
/// identical across the Unix platforms this builds on.
fn accept_error_is_retryable(e: &std::io::Error) -> bool {
    const ENFILE: i32 = 23;
    const EMFILE: i32 = 24;
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    ) || matches!(e.raw_os_error(), Some(ENFILE) | Some(EMFILE))
}

/// Handles one program's procedures for a server.
pub trait ProgramDispatcher: Send + Sync + 'static {
    /// The program number this dispatcher serves.
    fn program(&self) -> u32;

    /// Whether a procedure may run on priority workers.
    fn is_high_priority(&self, procedure: u32) -> bool;

    /// Executes one call, returning the reply packet. Must not panic.
    fn dispatch(&self, client: &Arc<ClientHandle>, header: Header, payload: &[u8]) -> Packet;

    /// Invoked when a client disconnects (cleanup of per-client state).
    fn on_disconnect(&self, client_id: u64);
}

/// Identity facts a client establishes during its session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientIdentity {
    /// Authenticated username, when the daemon requires authentication.
    pub username: Option<String>,
    /// Whether the session is restricted to read-only procedures.
    pub readonly: bool,
}

/// A connected client, as tracked by its server.
pub struct ClientHandle {
    /// Server-unique id.
    pub id: u64,
    /// The transport this client is connected over.
    pub transport: Arc<dyn Transport>,
    /// Wall-clock connect time, for display only — subject to NTP steps
    /// and manual clock changes.
    pub connected_at: SystemTime,
    /// Monotonic connect time; durations derived from this cannot go
    /// backwards or jump when the wall clock is adjusted.
    pub connected_since: Instant,
    /// Session identity, filled in by the dispatcher (AUTH/OPEN).
    pub identity: Mutex<ClientIdentity>,
    /// When the connection is owned by the event core, the write side
    /// routes through its sink (direct-write fast path + bounded
    /// spillover queue). Legacy reader-thread connections leave this
    /// unset and write straight to the transport.
    sink: OnceLock<Arc<ConnSink>>,
}

impl ClientHandle {
    /// Sends a packet to this client (replies and events).
    ///
    /// # Errors
    ///
    /// Transport failures (client already gone), or the write-queue
    /// hard cap (the client stopped reading and was cut loose).
    pub fn send(&self, packet: &Packet) -> std::io::Result<()> {
        // Frame into a pooled buffer and emit as one write — the reply
        // hot path allocates nothing in steady state.
        let mut frame = virt_rpc::BufferPool::global().get();
        packet.encode_frame_into(&mut frame);
        match self.sink.get() {
            Some(sink) => sink.send_wire(&frame),
            None => self.transport.send_framed(&frame),
        }
    }

    /// Installs the event-core sink; called once at registration.
    pub(crate) fn install_sink(&self, sink: Arc<ConnSink>) {
        let _ = self.sink.set(sink);
    }

    /// The transport flavor.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// Seconds since the Unix epoch at connect time (display only).
    pub fn connected_secs(&self) -> u64 {
        self.connected_at
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_secs()
    }

    /// Seconds this client has been connected, measured on the monotonic
    /// clock — unlike deriving it from [`ClientHandle::connected_at`],
    /// this cannot go negative or jump when the wall clock is stepped.
    pub fn session_secs(&self) -> u64 {
        self.connected_since.elapsed().as_secs()
    }
}

/// A client's externally visible facts (admin `client-list`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSnapshot {
    /// Server-unique id.
    pub id: u64,
    /// Transport name (`memory`, `unix`, `tcp`, `tls`).
    pub transport: String,
    /// Peer description.
    pub peer: String,
    /// Connect time, seconds since epoch (display).
    pub connected_secs: u64,
    /// Session age in seconds, from the monotonic clock.
    pub session_secs: u64,
    /// Authenticated username, empty when unauthenticated.
    pub username: String,
    /// Whether the session is read-only.
    pub readonly: bool,
}

struct ServerState {
    clients: HashMap<u64, Arc<ClientHandle>>,
    max_clients: u32,
    /// Listeners attached via [`Server::serve`], closed at shutdown.
    services: Vec<Arc<dyn Listener>>,
}

/// Per-server admission and transport counters. All atomics, shared with
/// the metrics registry via [`Server::publish_metrics`] so the admin
/// interface observes live values.
#[derive(Debug)]
struct ServerMetrics {
    /// Connections admitted into the client table.
    clients_accepted: Arc<Counter>,
    /// Connections refused because the table was full.
    clients_refused: Arc<Counter>,
    /// Clients connected right now.
    clients_connected: Arc<Gauge>,
    /// Keepalive pings answered inline.
    keepalive_pings: Arc<Counter>,
    /// Frame payload bytes received from all clients.
    bytes_in: Arc<Counter>,
    /// Frame payload bytes sent to all clients.
    bytes_out: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> Self {
        ServerMetrics {
            clients_accepted: Arc::new(Counter::new()),
            clients_refused: Arc::new(Counter::new()),
            clients_connected: Arc::new(Gauge::new()),
            keepalive_pings: Arc::new(Counter::new()),
            bytes_in: Arc::new(Counter::new()),
            bytes_out: Arc::new(Counter::new()),
        }
    }
}

/// A service attached with [`Server::serve`]: the accept loop's handle.
///
/// Unlike the old fire-and-forget accept thread, the handle makes the
/// service's lifecycle explicit: [`ServeHandle::shutdown`] stops
/// accepting (idempotent, callable from any thread) and
/// [`ServeHandle::join`] additionally waits for the accept thread to
/// exit. Dropping the handle does *not* stop the service — the server
/// still closes it during [`Server::shutdown`].
#[must_use = "holding the handle is how a service is shut down and joined; the server only closes it at full shutdown"]
pub struct ServeHandle {
    listener: Arc<dyn Listener>,
    closed: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The listener's local description (socket path, address).
    pub fn local_desc(&self) -> String {
        self.listener.local_desc()
    }

    /// Stops accepting new connections. Existing clients are untouched.
    pub fn shutdown(&self) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            self.listener.close();
        }
    }

    /// Stops accepting and waits for the accept thread to exit.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("listener", &self.listener.local_desc())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

/// A named server: worker pool + client table + attached services.
pub struct Server {
    name: String,
    pool: WorkerPool,
    dispatcher: Arc<dyn ProgramDispatcher>,
    state: Mutex<ServerState>,
    metrics: ServerMetrics,
    eventloop_metrics: Arc<EventLoopMetrics>,
    /// `None` where epoll is unavailable; every connection then runs on
    /// a legacy reader thread.
    event_core: Option<EventCore>,
    next_client_id: AtomicU64,
    running: Arc<AtomicBool>,
    /// Installed by the daemon via [`Server::set_logger`]; server-level
    /// faults (accept failures, dead event loops) fall back to stderr
    /// when unset so they are never swallowed.
    logger: OnceLock<Arc<Logger>>,
}

/// Bridges the event core's callbacks back to the server without a
/// reference cycle (the core is owned by the server).
struct ServerEvents {
    server: Weak<Server>,
}

impl ConnEvents for ServerEvents {
    fn on_frame(&self, client: &Arc<ClientHandle>, body: &[u8]) -> bool {
        let Some(server) = self.server.upgrade() else {
            return false;
        };
        // Frame-level byte accounting: event-core transports are not
        // metered, so partial reads can never double-count.
        server.metrics.bytes_in.add(body.len() as u64);
        server.process_frame(client, body)
    }

    fn on_closed(&self, client: &Arc<ClientHandle>) {
        if let Some(server) = self.server.upgrade() {
            server.remove_client(client.id);
        }
    }

    fn on_loop_error(&self, error: &std::io::Error) {
        if let Some(server) = self.server.upgrade() {
            server.log_error(&format!(
                "event loop poller failed: {error}; its connections were closed and \
                 new connections go to the remaining loops"
            ));
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("name", &self.name)
            .field("clients", &self.state.lock().clients.len())
            .finish()
    }
}

impl Server {
    /// Creates a server with the given pool limits and dispatcher,
    /// using default event-loop tuning.
    ///
    /// # Errors
    ///
    /// Invalid pool limits.
    pub fn new(
        name: impl Into<String>,
        pool_limits: PoolLimits,
        max_clients: u32,
        dispatcher: Arc<dyn ProgramDispatcher>,
    ) -> Result<Arc<Server>, String> {
        Server::with_event_options(
            name,
            pool_limits,
            max_clients,
            dispatcher,
            EventLoopOptions::default(),
        )
    }

    /// Creates a server with explicit event-loop tuning (thread count
    /// and write-queue caps).
    ///
    /// # Errors
    ///
    /// Invalid pool limits.
    pub fn with_event_options(
        name: impl Into<String>,
        pool_limits: PoolLimits,
        max_clients: u32,
        dispatcher: Arc<dyn ProgramDispatcher>,
        event_options: EventLoopOptions,
    ) -> Result<Arc<Server>, String> {
        let name = name.into();
        let pool = WorkerPool::start(pool_limits)?;
        let eventloop_metrics = EventLoopMetrics::new();
        Ok(Arc::new_cyclic(|weak: &Weak<Server>| {
            // Where epoll is unavailable (or the threads cannot spawn)
            // the server still works — every connection just gets a
            // legacy reader thread.
            let event_core = EventCore::start(
                &name,
                event_options,
                Arc::new(ServerEvents {
                    server: weak.clone(),
                }),
                Arc::clone(&eventloop_metrics),
            )
            .ok();
            Server {
                name,
                pool,
                dispatcher,
                state: Mutex::new(ServerState {
                    clients: HashMap::new(),
                    max_clients,
                    services: Vec::new(),
                }),
                metrics: ServerMetrics::new(),
                eventloop_metrics,
                event_core,
                next_client_id: AtomicU64::new(1),
                running: Arc::new(AtomicBool::new(true)),
                logger: OnceLock::new(),
            }
        }))
    }

    /// The server's name (`virtd`, `admin`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Routes server-level fault reporting (accept failures, event-loop
    /// deaths) through the daemon's logger. First call wins; without one
    /// those messages go to stderr.
    pub fn set_logger(&self, logger: Arc<Logger>) {
        let _ = self.logger.set(logger);
    }

    fn log_warning(&self, message: &str) {
        match self.logger.get() {
            Some(logger) => logger.warning(&format!("server.{}", self.name), message),
            None => eprintln!("virtd[server.{}] warning: {message}", self.name),
        }
    }

    fn log_error(&self, message: &str) {
        match self.logger.get() {
            Some(logger) => logger.error(&format!("server.{}", self.name), message),
            None => eprintln!("virtd[server.{}] error: {message}", self.name),
        }
    }

    /// Publishes this server's metrics into `registry`: admission and
    /// transport counters as `server.{name}.*` and the worker pool's
    /// histograms and gauges as `pool.{name}.*`. The registry shares the
    /// server's own atomics, so snapshots are always live.
    pub fn publish_metrics(&self, registry: &Registry) {
        let n = &self.name;
        let m = &self.metrics;
        let _ = registry.register_counter(
            &format!("server.{n}.clients_accepted"),
            "Connections admitted into the client table",
            Arc::clone(&m.clients_accepted),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.clients_refused"),
            "Connections refused because the client limit was reached",
            Arc::clone(&m.clients_refused),
        );
        let _ = registry.register_gauge(
            &format!("server.{n}.clients_connected"),
            "Clients connected right now",
            Arc::clone(&m.clients_connected),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.keepalive_pings"),
            "Keepalive pings answered inline by the reader thread",
            Arc::clone(&m.keepalive_pings),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.bytes_in"),
            "Frame payload bytes received from clients",
            Arc::clone(&m.bytes_in),
        );
        let _ = registry.register_counter(
            &format!("server.{n}.bytes_out"),
            "Frame payload bytes sent to clients",
            Arc::clone(&m.bytes_out),
        );
        self.eventloop_metrics.publish(registry, n);
        self.pool.publish_metrics(registry, n);
    }

    /// Worker pool statistics (admin `srv-threadpool-info`).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Adjusts worker pool limits at runtime (admin `srv-threadpool-set`).
    ///
    /// # Errors
    ///
    /// Invalid limits; the old limits stay in force.
    pub fn set_pool_limits(&self, limits: PoolLimits) -> Result<(), String> {
        self.pool.set_limits(limits)
    }

    /// Jobs completed since start (a thin read of the pool's
    /// registry-backed counter).
    pub fn jobs_completed(&self) -> u64 {
        self.pool.completed()
    }

    /// Current client count.
    pub fn client_count(&self) -> usize {
        self.state.lock().clients.len()
    }

    /// The configured client limit.
    pub fn max_clients(&self) -> u32 {
        self.state.lock().max_clients
    }

    /// Changes the client limit (admin `srv-clients-set`). Existing
    /// clients above a lowered limit stay connected; only new connections
    /// are refused.
    pub fn set_max_clients(&self, max: u32) {
        self.state.lock().max_clients = max;
    }

    /// Count of connections refused due to the client limit (a thin read
    /// of the registry-backed counter).
    pub fn refused_count(&self) -> u64 {
        self.metrics.clients_refused.get()
    }

    /// Snapshots of all connected clients, id-ordered.
    pub fn clients(&self) -> Vec<ClientSnapshot> {
        let state = self.state.lock();
        let mut list: Vec<ClientSnapshot> = state
            .clients
            .values()
            .map(|c| {
                let identity = c.identity.lock().clone();
                ClientSnapshot {
                    id: c.id,
                    transport: c.transport_kind().to_string(),
                    peer: c.transport.peer(),
                    connected_secs: c.connected_secs(),
                    session_secs: c.session_secs(),
                    username: identity.username.unwrap_or_default(),
                    readonly: identity.readonly,
                }
            })
            .collect();
        list.sort_by_key(|c| c.id);
        list
    }

    /// Looks up one client.
    pub fn client(&self, id: u64) -> Option<Arc<ClientHandle>> {
        self.state.lock().clients.get(&id).cloned()
    }

    /// Forcefully closes a client's connection (admin
    /// `client-disconnect`). Returns whether the client existed.
    pub fn disconnect_client(&self, id: u64) -> bool {
        let client = self.state.lock().clients.get(&id).cloned();
        match client {
            Some(client) => {
                // Shutting the transport down unblocks the reader thread,
                // which performs the table cleanup.
                let _ = client.transport.shutdown();
                true
            }
            None => false,
        }
    }

    /// Attaches a listener; accepted clients are served until the
    /// returned handle — or the whole server — is shut down.
    pub fn serve(self: &Arc<Self>, listener: Box<dyn Listener>) -> ServeHandle {
        let listener: Arc<dyn Listener> = Arc::from(listener);
        self.state.lock().services.push(Arc::clone(&listener));
        let closed = Arc::new(AtomicBool::new(false));
        let server = Arc::clone(self);
        let accept_listener = Arc::clone(&listener);
        let accept_closed = Arc::clone(&closed);
        let thread = std::thread::Builder::new()
            .name(format!("{}-accept", self.name))
            .spawn(move || {
                let mut backoff = Duration::from_millis(10);
                loop {
                    if accept_closed.load(Ordering::Acquire)
                        || !server.running.load(Ordering::Acquire)
                    {
                        break;
                    }
                    match accept_listener.accept() {
                        Ok(transport) => {
                            // Socket listeners unblock `accept` on close by
                            // dialing themselves; the flag tells that apart
                            // from a real client.
                            if accept_closed.load(Ordering::Acquire)
                                || !server.running.load(Ordering::Acquire)
                            {
                                let _ = transport.shutdown();
                                break;
                            }
                            backoff = Duration::from_millis(10);
                            server.admit(Arc::from(transport));
                        }
                        Err(e) => {
                            if accept_closed.load(Ordering::Acquire)
                                || !server.running.load(Ordering::Acquire)
                            {
                                break;
                            }
                            if !accept_error_is_retryable(&e) {
                                server.log_error(&format!(
                                    "accept on {} failed: {e}; service stopped",
                                    accept_listener.local_desc()
                                ));
                                break;
                            }
                            // Transient pressure — typically fd exhaustion
                            // at C10K scale (EMFILE/ENFILE) or an aborted
                            // handshake. Back off and keep accepting: the
                            // daemon must not silently stop taking clients
                            // because it briefly ran out of descriptors.
                            server.log_warning(&format!(
                                "accept on {} failed: {e}; retrying in {backoff:?}",
                                accept_listener.local_desc()
                            ));
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_secs(1));
                        }
                    }
                }
            })
            .expect("spawning accept thread");
        ServeHandle {
            listener,
            closed,
            thread: Some(thread),
        }
    }

    /// Admits a single transport directly (bypassing a listener) — used by
    /// tests and by in-process endpoints.
    pub fn admit(self: &Arc<Self>, transport: Arc<dyn Transport>) {
        {
            let state = self.state.lock();
            if state.clients.len() as u32 >= state.max_clients {
                drop(state);
                self.metrics.clients_refused.inc();
                let _ = transport.shutdown();
                return;
            }
        }
        let id = self.next_client_id.fetch_add(1, Ordering::Relaxed);
        let event_capable =
            self.event_core.is_some() && !matches!(transport.readiness(), Readiness::Blocking);
        if event_capable {
            // Event path: the transport stays unwrapped (the loop and
            // sink account whole frames themselves) and the connection
            // is owned by an event thread, not a dedicated reader.
            let client = Arc::new(ClientHandle {
                id,
                transport,
                connected_at: SystemTime::now(),
                connected_since: Instant::now(),
                identity: Mutex::new(ClientIdentity::default()),
                sink: OnceLock::new(),
            });
            self.state.lock().clients.insert(id, Arc::clone(&client));
            self.metrics.clients_accepted.inc();
            self.metrics.clients_connected.inc();
            let core = self.event_core.as_ref().expect("event core checked");
            if core
                .register(&client, Arc::clone(&self.metrics.bytes_out))
                .is_err()
            {
                // Rare (fd pressure, loops stopping): fall back to a
                // dedicated reader thread for this one connection.
                self.spawn_reader(client);
            }
        } else {
            // Legacy path: meter the transport so every frame this
            // client exchanges lands in the server's byte counters.
            let transport: Arc<dyn Transport> = Arc::new(MeteredTransport::new(
                transport,
                Arc::clone(&self.metrics.bytes_in),
                Arc::clone(&self.metrics.bytes_out),
            ));
            let client = Arc::new(ClientHandle {
                id,
                transport,
                connected_at: SystemTime::now(),
                connected_since: Instant::now(),
                identity: Mutex::new(ClientIdentity::default()),
                sink: OnceLock::new(),
            });
            self.state.lock().clients.insert(id, Arc::clone(&client));
            self.metrics.clients_accepted.inc();
            self.metrics.clients_connected.inc();
            self.spawn_reader(client);
        }
    }

    fn spawn_reader(self: &Arc<Self>, client: Arc<ClientHandle>) {
        let server = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("{}-client-{}", self.name, client.id))
            .spawn(move || server.client_loop(client))
            .expect("spawning client thread");
    }

    /// Handles one complete frame body from `client` — keepalive and
    /// high-priority procedures inline, everything else through the
    /// pool. Returns whether to keep the connection (protocol garbage
    /// drops it). Shared by the event loops and legacy reader threads.
    fn process_frame(&self, client: &Arc<ClientHandle>, body: &[u8]) -> bool {
        let packet = match Packet::from_body(body) {
            Ok(packet) => packet,
            Err(_) => return false, // protocol garbage: drop the client
        };

        // Keepalive is answered inline, never queued: liveness probes
        // must not wait behind a busy pool.
        if let Some(pong) = keepalive::respond(&packet) {
            self.metrics.keepalive_pings.inc();
            let _ = client.send(&pong);
            return true;
        }
        if keepalive::is_pong(&packet) || keepalive::is_bye(&packet) {
            // A bye announces the client's own clean shutdown; the
            // connection teardown follows on its own.
            return true;
        }

        if packet.header.program != self.dispatcher.program() {
            let reply = Packet::new(
                packet.header.reply_error(),
                &RpcError::new(
                    virt_core::ErrorCode::RpcFailure.as_u32(),
                    format!("unknown program {:#x}", packet.header.program),
                ),
            );
            let _ = client.send(&reply);
            return true;
        }

        // High-priority procedures are guaranteed to finish without
        // waiting on a hypervisor, so — like keepalive above — they are
        // answered inline on the event (or reader) thread instead of
        // paying two thread handoffs through the pool. The priority
        // workers still exist for pooled paths (and as spare capacity
        // while an inline call is on this thread's stack); everything
        // that can block rides the ordinary pool, keeping the thread
        // free to notice disconnects on its other connections.
        if self.dispatcher.is_high_priority(packet.header.procedure) {
            let _trace = span::server_enter(
                packet.header.trace_id,
                packet.header.parent_span,
                u64::from(packet.header.procedure),
            );
            let reply = self
                .dispatcher
                .dispatch(client, packet.header, &packet.payload);
            debug_assert_eq!(reply.header.serial, packet.header.serial);
            let _write = span::stage(Stage::ReplyWrite);
            let _ = client.send(&reply);
            return true;
        }

        let dispatcher = Arc::clone(&self.dispatcher);
        let job_client = Arc::clone(client);
        let received = Instant::now();
        self.pool.submit(false, move || {
            // Re-enter the wire trace on the worker: the dispatch span
            // becomes a child of the client's stub span, and the time
            // this closure sat in the pool queue is attributed as a
            // queue-wait stage.
            let _trace = span::server_enter(
                packet.header.trace_id,
                packet.header.parent_span,
                u64::from(packet.header.procedure),
            );
            span::record_span(Stage::QueueWait, received.elapsed(), 0);
            let reply = dispatcher.dispatch(&job_client, packet.header, &packet.payload);
            debug_assert_eq!(reply.header.serial, packet.header.serial);
            debug_assert!(matches!(
                reply.header.status,
                MessageStatus::Ok | MessageStatus::Error
            ));
            let _write = span::stage(Stage::ReplyWrite);
            let _ = job_client.send(&reply);
        });
        true
    }

    /// Removes a client from the table, firing the dispatcher's
    /// disconnect callback exactly once (table presence is the guard).
    fn remove_client(&self, id: u64) {
        if self.state.lock().clients.remove(&id).is_some() {
            self.metrics.clients_connected.dec();
            self.dispatcher.on_disconnect(id);
        }
    }

    /// Legacy per-connection reader: blocking framed reads on a
    /// dedicated thread. Kept for transports with no readiness surface
    /// (and as a fallback when event registration fails).
    fn client_loop(self: Arc<Self>, client: Arc<ClientHandle>) {
        // One receive buffer per client connection, refilled in place —
        // after the first frames it has grown to the working size and
        // the read path stops allocating.
        let mut frame = virt_rpc::BufferPool::global().get();
        while self.running.load(Ordering::Acquire) {
            if client.transport.recv_frame_into(&mut frame).is_err() {
                break;
            }
            if !self.process_frame(&client, &frame) {
                break;
            }
        }
        // Cleanup.
        self.remove_client(client.id);
        let _ = client.transport.shutdown();
    }

    /// Stops the server gracefully: stops accepting, lets in-flight
    /// work finish, drains queued replies to the wire, says farewell
    /// (`bye`) to every client — so they can tell an orderly shutdown
    /// apart from a crash — and only then closes connections and stops
    /// the event loops.
    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return; // already shut down
        }
        // 1. Stop accepting new connections.
        let services: Vec<Arc<dyn Listener>> = self.state.lock().services.drain(..).collect();
        for listener in services {
            listener.close();
        }
        // 2. Let running jobs finish; their replies land in the sinks
        //    (queued jobs that never started are dropped).
        self.pool.shutdown();
        // 3. Drain queued replies to the wire while the loops still run.
        if let Some(core) = &self.event_core {
            core.drain(Duration::from_secs(5));
        }
        // 4. Farewell and close.
        let clients: Vec<Arc<ClientHandle>> = self.state.lock().clients.values().cloned().collect();
        let bye = keepalive::bye_packet();
        for client in clients {
            let _ = client.send(&bye);
            let _ = client.transport.shutdown();
        }
        // 5. Flush any byes that queued, then stop the loop threads and
        //    tear down what remains.
        if let Some(core) = &self.event_core {
            core.drain(Duration::from_millis(250));
            core.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use virt_rpc::message::{MessageType, REMOTE_PROGRAM};
    use virt_rpc::transport::memory_pair;
    use virt_rpc::CallClient;

    /// Echo dispatcher: replies with the request payload; procedure 7 is
    /// high priority; procedure 99 blocks until told to stop (a "hung
    /// hypervisor call").
    #[derive(Default)]
    struct EchoDispatcher {
        hang_until: Mutex<Option<std::sync::mpsc::Receiver<()>>>,
        disconnects: Mutex<Vec<u64>>,
    }

    impl ProgramDispatcher for EchoDispatcher {
        fn program(&self) -> u32 {
            REMOTE_PROGRAM
        }

        fn is_high_priority(&self, procedure: u32) -> bool {
            procedure == 7
        }

        fn dispatch(&self, _client: &Arc<ClientHandle>, header: Header, payload: &[u8]) -> Packet {
            if header.procedure == 99 {
                if let Some(rx) = self.hang_until.lock().take() {
                    let _ = rx.recv();
                }
            }
            Packet {
                header: header.reply_ok(),
                payload: payload.to_vec(),
            }
        }

        fn on_disconnect(&self, client_id: u64) {
            self.disconnects.lock().push(client_id);
        }
    }

    fn small_limits() -> PoolLimits {
        PoolLimits {
            min_workers: 1,
            max_workers: 2,
            priority_workers: 1,
        }
    }

    fn connect(server: &Arc<Server>) -> CallClient {
        let (client_side, server_side) = memory_pair();
        server.admit(Arc::new(server_side));
        CallClient::new(client_side)
    }

    fn wait_until(pred: impl Fn() -> bool, what: &str) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn round_trip_through_the_pool() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let client = connect(&server);
        let reply: String = client.call(REMOTE_PROGRAM, 1, &"ping".to_string()).unwrap();
        assert_eq!(reply, "ping");
        assert_eq!(server.client_count(), 1);
        assert_eq!(server.jobs_completed(), 1);
        client.close();
        server.shutdown();
    }

    #[test]
    fn client_limit_refuses_excess_connections() {
        let server =
            Server::new("t", small_limits(), 2, Arc::new(EchoDispatcher::default())).unwrap();
        let c1 = connect(&server);
        let c2 = connect(&server);
        // Both are live.
        let _: String = c1.call(REMOTE_PROGRAM, 1, &"a".to_string()).unwrap();
        let _: String = c2.call(REMOTE_PROGRAM, 1, &"b".to_string()).unwrap();
        // The third connection is refused: its transport gets shut down.
        let c3 = connect(&server);
        let err = c3
            .call::<String>(REMOTE_PROGRAM, 1, &"c".to_string())
            .unwrap_err();
        assert!(matches!(
            err,
            virt_rpc::client::CallError::Disconnected | virt_rpc::client::CallError::Io(_)
        ));
        assert_eq!(server.refused_count(), 1);
        assert_eq!(server.client_count(), 2);
        server.shutdown();
    }

    type ScriptedAccept = std::io::Result<Box<dyn Transport>>;

    /// Listener driven by a script of accept outcomes; once the script
    /// is exhausted, `accept` blocks until `close`.
    struct ScriptedListener {
        rx: Mutex<std::sync::mpsc::Receiver<ScriptedAccept>>,
        tx: Mutex<Option<std::sync::mpsc::Sender<ScriptedAccept>>>,
    }

    impl Listener for ScriptedListener {
        fn accept(&self) -> std::io::Result<Box<dyn Transport>> {
            self.rx
                .lock()
                .recv()
                .unwrap_or_else(|_| Err(std::io::ErrorKind::UnexpectedEof.into()))
        }

        fn local_desc(&self) -> String {
            "scripted".into()
        }

        fn close(&self) {
            self.tx.lock().take();
        }
    }

    #[test]
    fn accept_loop_survives_transient_fd_exhaustion() {
        const EMFILE: i32 = 24;
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        // Script: fd exhaustion first, then a real client — the accept
        // loop must back off and keep accepting, not exit.
        tx.send(Err(std::io::Error::from_raw_os_error(EMFILE)))
            .unwrap();
        let (client_side, server_side) = memory_pair();
        tx.send(Ok(Box::new(server_side) as Box<dyn Transport>))
            .unwrap();
        let handle = server.serve(Box::new(ScriptedListener {
            rx: Mutex::new(rx),
            tx: Mutex::new(Some(tx)),
        }));
        let client = CallClient::new(client_side);
        let reply: String = client
            .call(REMOTE_PROGRAM, 1, &"still accepting".to_string())
            .unwrap();
        assert_eq!(reply, "still accepting");
        handle.join();
        server.shutdown();
    }

    #[test]
    fn raising_the_limit_admits_new_clients() {
        let server =
            Server::new("t", small_limits(), 1, Arc::new(EchoDispatcher::default())).unwrap();
        let _c1 = connect(&server);
        wait_until(|| server.client_count() == 1, "first client admitted");
        server.set_max_clients(2);
        let c2 = connect(&server);
        let _: String = c2.call(REMOTE_PROGRAM, 1, &"x".to_string()).unwrap();
        assert_eq!(server.client_count(), 2);
        server.shutdown();
    }

    #[test]
    fn forced_disconnect_removes_the_client() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let client = connect(&server);
        let _: String = client.call(REMOTE_PROGRAM, 1, &"x".to_string()).unwrap();
        let id = server.clients()[0].id;
        assert!(server.disconnect_client(id));
        wait_until(|| server.client_count() == 0, "client table drained");
        assert!(
            !server.disconnect_client(id),
            "second disconnect reports absence"
        );
        // The client observes the closed connection.
        let err = client
            .call::<String>(REMOTE_PROGRAM, 1, &"y".to_string())
            .unwrap_err();
        assert!(matches!(
            err,
            virt_rpc::client::CallError::Disconnected | virt_rpc::client::CallError::Io(_)
        ));
        server.shutdown();
    }

    #[test]
    fn client_snapshots_expose_identity() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let client = connect(&server);
        let _: String = client.call(REMOTE_PROGRAM, 1, &"x".to_string()).unwrap();
        let snapshots = server.clients();
        assert_eq!(snapshots.len(), 1);
        assert_eq!(snapshots[0].transport, "memory");
        assert!(snapshots[0].connected_secs > 0);
        server.shutdown();
    }

    #[test]
    fn priority_procedure_completes_while_ordinary_workers_hang() {
        let dispatcher = Arc::new(EchoDispatcher::default());
        let (hang_tx, hang_rx) = std::sync::mpsc::channel::<()>();
        *dispatcher.hang_until.lock() = Some(hang_rx);
        let server = Server::new(
            "t",
            PoolLimits {
                min_workers: 1,
                max_workers: 1,
                priority_workers: 1,
            },
            10,
            dispatcher,
        )
        .unwrap();
        let client = connect(&server);
        // Occupy the single ordinary worker with the hanging procedure
        // from a second thread.
        let hang_client = client.clone();
        let hanging = std::thread::spawn(move || {
            let _: String = hang_client
                .call(REMOTE_PROGRAM, 99, &"hang".to_string())
                .unwrap();
        });
        wait_until(
            || server.pool_stats().free_workers == 0,
            "ordinary worker busy",
        );
        // The high-priority procedure still completes.
        let reply: String = client
            .call(REMOTE_PROGRAM, 7, &"urgent".to_string())
            .unwrap();
        assert_eq!(reply, "urgent");
        hang_tx.send(()).unwrap();
        hanging.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn pool_limits_adjustable_at_runtime() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        server
            .set_pool_limits(PoolLimits {
                min_workers: 3,
                max_workers: 6,
                priority_workers: 2,
            })
            .unwrap();
        wait_until(
            || {
                let s = server.pool_stats();
                s.current_workers >= 3 && s.priority_workers == 2
            },
            "pool grew",
        );
        assert!(server
            .set_pool_limits(PoolLimits {
                min_workers: 9,
                max_workers: 3,
                priority_workers: 1
            })
            .is_err());
        server.shutdown();
    }

    #[test]
    fn keepalive_pings_answered_inline() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let (client_side, server_side) = memory_pair();
        server.admit(Arc::new(server_side));
        // Raw ping (no CallClient, to observe the pong frame directly).
        let ping = virt_rpc::keepalive::ping_packet();
        client_side.send_frame(&ping.to_frame()[4..]).unwrap();
        let frame = client_side.recv_frame().unwrap();
        let pong = Packet::from_body(&frame).unwrap();
        assert!(virt_rpc::keepalive::is_pong(&pong));
        server.shutdown();
    }

    #[test]
    fn shutdown_says_goodbye_to_connected_clients() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let (client_side, server_side) = memory_pair();
        server.admit(Arc::new(server_side));
        wait_until(|| server.client_count() == 1, "admitted");
        server.shutdown();
        // The last frame before the close is the farewell.
        let frame = client_side.recv_frame().unwrap();
        let bye = Packet::from_body(&frame).unwrap();
        assert!(virt_rpc::keepalive::is_bye(&bye));
        assert!(client_side.recv_frame().is_err(), "then the close");
    }

    #[test]
    fn client_byes_are_consumed_without_a_reply() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let (client_side, server_side) = memory_pair();
        server.admit(Arc::new(server_side));
        wait_until(|| server.client_count() == 1, "admitted");
        let bye = virt_rpc::keepalive::bye_packet();
        client_side.send_frame(&bye.to_frame()[4..]).unwrap();
        // The bye is skipped, not dispatched: a following echo call still
        // works and nothing was sent in between.
        let call = Packet::new(Header::call(REMOTE_PROGRAM, 1, 9), &42u32);
        client_side.send_frame(&call.to_frame()[4..]).unwrap();
        let frame = client_side.recv_frame().unwrap();
        let reply = Packet::from_body(&frame).unwrap();
        assert_eq!(reply.header.serial, 9);
        assert_eq!(reply.header.status, MessageStatus::Ok);
        server.shutdown();
    }

    #[test]
    fn wrong_program_gets_an_error_reply() {
        let server =
            Server::new("t", small_limits(), 10, Arc::new(EchoDispatcher::default())).unwrap();
        let (client_side, server_side) = memory_pair();
        server.admit(Arc::new(server_side));
        let call = Packet::new(Header::call(0xbad, 1, 5), &());
        client_side.send_frame(&call.to_frame()[4..]).unwrap();
        let frame = client_side.recv_frame().unwrap();
        let reply = Packet::from_body(&frame).unwrap();
        assert_eq!(reply.header.mtype, MessageType::Reply);
        assert_eq!(reply.header.status, MessageStatus::Error);
        assert_eq!(reply.header.serial, 5);
        server.shutdown();
    }

    #[test]
    fn garbage_frames_drop_the_client() {
        let dispatcher = Arc::new(EchoDispatcher::default());
        let server = Server::new("t", small_limits(), 10, dispatcher.clone()).unwrap();
        let (client_side, server_side) = memory_pair();
        server.admit(Arc::new(server_side));
        wait_until(|| server.client_count() == 1, "admitted");
        client_side.send_frame(&[1, 2, 3, 4]).unwrap();
        wait_until(|| server.client_count() == 0, "dropped");
        assert_eq!(dispatcher.disconnects.lock().len(), 1);
        server.shutdown();
    }

    #[test]
    fn disconnect_callback_fires_per_client() {
        let dispatcher = Arc::new(EchoDispatcher::default());
        let server = Server::new("t", small_limits(), 10, dispatcher.clone()).unwrap();
        let c1 = connect(&server);
        let c2 = connect(&server);
        let _: String = c1.call(REMOTE_PROGRAM, 1, &"x".to_string()).unwrap();
        let _: String = c2.call(REMOTE_PROGRAM, 1, &"x".to_string()).unwrap();
        c1.close();
        c2.close();
        wait_until(
            || dispatcher.disconnects.lock().len() == 2,
            "both disconnect callbacks",
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_multiplex_correctly() {
        let server = Server::new(
            "t",
            PoolLimits {
                min_workers: 4,
                max_workers: 8,
                priority_workers: 1,
            },
            64,
            Arc::new(EchoDispatcher::default()),
        )
        .unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let client = connect(&server);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let msg = format!("{i}-{j}");
                        let reply: String = client.call(REMOTE_PROGRAM, 1, &msg).unwrap();
                        assert_eq!(reply, msg);
                    }
                    client.close();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.jobs_completed(), 400);
        server.shutdown();
    }
}

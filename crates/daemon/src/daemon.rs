//! The daemon assembly: hosts, drivers, servers, services.

use std::collections::HashMap;
use std::sync::Arc;

use hypersim::latency::OpCost;
use hypersim::personality::{LxcLike, QemuLike, XenLike};
use hypersim::{LatencyModel, OpKind, SimClock, SimHost};

use virt_core::drivers::embedded::{EmbeddedConnection, StoreBinding};
use virt_core::error::{ErrorCode, VirtError, VirtResult};
use virt_core::log::Logger;
use virt_core::metrics::Registry;
use virt_core::statestore::StateStore;
use virt_core::testbed;
use virt_rpc::transport::{memory_listener, Listener, MemoryConnector};

use crate::admin::AdminDispatcher;
use crate::config::VirtdConfig;
use crate::dispatch::RemoteDispatcher;
use crate::eventloop::EventLoopOptions;
use crate::server::{ServeHandle, Server};

/// A running management daemon.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Virtd {
    name: String,
    hosts: HashMap<String, SimHost>,
    /// The per-scheme embedded drivers; kept so shutdown can stop their
    /// guard engines (worker threads must not outlive the daemon).
    drivers: HashMap<String, Arc<EmbeddedConnection>>,
    main_server: Arc<Server>,
    admin_server: Arc<Server>,
    logger: Arc<Logger>,
    /// Daemon-wide metric registry: every layer publishes into it and
    /// the admin metrics procedures read from it.
    registry: Arc<Registry>,
    /// The shared state store, when persistence is enabled; kept so
    /// shutdown can drain the write-behind pipeline after the servers
    /// stop accepting work.
    store: Option<Arc<StateStore>>,
    /// Names registered in the global testbed, removed on shutdown.
    registered_endpoints: parking_lot::Mutex<Vec<String>>,
    /// Accept-loop handles for every attached service; shutdown closes
    /// and joins them so no accept thread outlives the daemon.
    serve_handles: parking_lot::Mutex<Vec<ServeHandle>>,
}

impl std::fmt::Debug for Virtd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Virtd")
            .field("name", &self.name)
            .field("drivers", &self.hosts.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Builder for [`Virtd`].
pub struct VirtdBuilder {
    name: String,
    config: VirtdConfig,
    hosts: HashMap<String, SimHost>,
    clock: SimClock,
}

impl VirtdBuilder {
    fn new(name: impl Into<String>) -> Self {
        VirtdBuilder {
            name: name.into(),
            config: VirtdConfig::new(),
            hosts: HashMap::new(),
            clock: SimClock::new(),
        }
    }

    /// Applies a configuration.
    pub fn config(mut self, config: VirtdConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares a virtual clock across this daemon's hosts (and with other
    /// daemons, for migration timing).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a host under the driver scheme of its personality.
    pub fn host(mut self, host: SimHost) -> Self {
        self.hosts
            .insert(host.personality().name().to_string(), host);
        self
    }

    /// UUID seed base derived from the daemon name. Fixed per-scheme
    /// seeds made every daemon's qemu host emit the *same* UUID stream,
    /// so the first domain defined on any two daemons collided when one
    /// was migrated to the other. Mixing the name in keeps a single
    /// daemon deterministic while giving differently-named daemons
    /// disjoint streams.
    fn seed_base(&self) -> u64 {
        // FNV-1a over the daemon name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Attaches default qemu/xen/lxc hosts with realistic latency models,
    /// named `<daemon>-<scheme>`.
    pub fn with_default_hosts(mut self) -> Self {
        let base = self.seed_base();
        let qemu = SimHost::builder(format!("{}-qemu", self.name))
            .personality(QemuLike)
            .clock(self.clock.clone())
            .seed(base)
            .build();
        let xen = SimHost::builder(format!("{}-xen", self.name))
            .personality(XenLike)
            .clock(self.clock.clone())
            .seed(base ^ 0x11)
            .build();
        let lxc = SimHost::builder(format!("{}-lxc", self.name))
            .personality(LxcLike)
            .clock(self.clock.clone())
            .seed(base ^ 0x22)
            .build();
        self.hosts.insert("qemu".to_string(), qemu);
        self.hosts.insert("xen".to_string(), xen);
        self.hosts.insert("lxc".to_string(), lxc);
        self
    }

    /// Attaches default hosts with **zero-latency** models (logic-focused
    /// tests).
    pub fn with_quiet_hosts(mut self) -> Self {
        let base = self.seed_base();
        for (scheme, seed) in [("qemu", base ^ 1), ("xen", base ^ 2), ("lxc", base ^ 3)] {
            let personality: Box<dyn FnOnce(hypersim::SimHostBuilder) -> hypersim::SimHostBuilder> =
                match scheme {
                    "qemu" => Box::new(|b| b.personality(QemuLike)),
                    "xen" => Box::new(|b| b.personality(XenLike)),
                    _ => Box::new(|b| b.personality(LxcLike)),
                };
            let host = personality(
                SimHost::builder(format!("{}-{scheme}", self.name))
                    .clock(self.clock.clone())
                    .seed(seed),
            )
            .latency(LatencyModel::zero())
            .build();
            self.hosts.insert(scheme.to_string(), host);
        }
        self
    }

    /// Attaches quiet hosts whose **migration transfer is the only slow
    /// operation**: 0.1 ms of virtual time per MiB moved, scaled 1:1
    /// into wall time, so a 256 MiB migration slice occupies a worker
    /// for ~25 ms of real time while every other call stays instant.
    /// This is the chaos-testing configuration — it keeps a migration
    /// genuinely in flight long enough to kill the daemon under it.
    pub fn with_slow_migration_hosts(mut self) -> Self {
        let qemu = SimHost::builder(format!("{}-qemu", self.name))
            .personality(QemuLike)
            .clock(self.clock.clone())
            .seed(self.seed_base() ^ 1)
            .latency(LatencyModel::zero().set(OpKind::MigratePage, OpCost::scaled(0, 100_000)))
            .wall_time_scale(1.0)
            .build();
        self.hosts.insert("qemu".to_string(), qemu);
        self
    }

    /// Builds and starts the daemon (servers running, no services yet).
    ///
    /// # Errors
    ///
    /// Invalid pool limits; no hosts attached.
    pub fn build(self) -> VirtResult<Virtd> {
        if self.hosts.is_empty() {
            return Err(VirtError::new(
                ErrorCode::InvalidArg,
                "daemon needs at least one host",
            ));
        }
        let logger = Arc::new(Logger::new());
        logger
            .redefine(self.config.log.clone())
            .expect("startup log settings are validated defaults");

        // Crash-safe persistence: with a statedir every driver mirrors
        // its definitions and live status to disk, and boot runs a
        // recovery pass over whatever the previous daemon left behind.
        let store = match &self.config.statedir {
            Some(dir) => {
                let store =
                    StateStore::open_with_options(dir.clone(), self.config.statestore.clone())?;
                store.set_logger(Arc::clone(&logger));
                Some(store)
            }
            None => None,
        };

        let drivers: HashMap<String, Arc<EmbeddedConnection>> = self
            .hosts
            .iter()
            .map(|(scheme, host)| {
                let uri = format!("{scheme}:///system");
                let conn = match &store {
                    Some(store) => EmbeddedConnection::with_store(
                        host.clone(),
                        uri,
                        StoreBinding::new(Arc::clone(store), scheme),
                    ),
                    None => EmbeddedConnection::new(host.clone(), uri),
                };
                (scheme.clone(), conn)
            })
            .collect();

        if let Some(schedule) = self.config.guard_backoff {
            for conn in drivers.values() {
                conn.guard_engine().set_backoff(schedule);
            }
        }

        let registry = Arc::new(Registry::new());

        let remote_dispatcher = RemoteDispatcher::new(
            drivers.clone(),
            Arc::clone(&logger),
            self.config.credentials.clone(),
        );
        remote_dispatcher.publish_metrics(&registry);
        virt_core::job::job_metrics().publish(&registry);
        if let Some(store) = &store {
            store.publish_metrics(&registry);
        }
        for (scheme, conn) in &drivers {
            conn.publish_metrics(&registry, scheme);
            // Job recovery: a daemon that went down mid-job cannot resume
            // it — mark any job left running on this host as failed so
            // clients polling after the restart see a terminal state
            // instead of eternal progress.
            for domain in conn
                .jobs()
                .fail_running("daemon restarted while job was running")
            {
                logger.warning(
                    "daemon",
                    &format!("recovered orphaned job on domain '{domain}': marked failed"),
                );
            }
        }

        // State recovery: reload persistent definitions, reconcile the
        // live-status records (recorded-running domains crashed with the
        // previous daemon), honor autostart, quarantine anything corrupt.
        if store.is_some() {
            let started = std::time::Instant::now();
            let recovered = registry.counter(
                "recovery.recovered",
                "Persistent objects (domains, networks, pools) reloaded at startup",
            );
            let crashed = registry.counter(
                "recovery.crashed",
                "Recovered domains marked shut-off/crashed because their guest died with the previous daemon",
            );
            let autostarted = registry.counter(
                "recovery.autostarted",
                "Autostart domains started during recovery",
            );
            let quarantined = registry.counter(
                "recovery.quarantined",
                "Corrupt state files moved to quarantine during recovery",
            );
            let guards =
                registry.counter("recovery.guards", "Guard policies re-armed during recovery");
            let revived = registry.counter(
                "recovery.revived",
                "Guarded domains revived during recovery because they died with the previous daemon",
            );
            let mut schemes: Vec<&String> = drivers.keys().collect();
            schemes.sort();
            for scheme in schemes {
                let conn = &drivers[scheme.as_str()];
                let report = conn.recover_from_store()?;
                recovered.add(report.recovered());
                crashed.add(report.crashed);
                autostarted.add(report.autostarted);
                quarantined.add(report.quarantined);
                guards.add(report.guards);
                revived.add(report.revived);
                if report.recovered() + report.quarantined + report.guards > 0 {
                    logger.info(
                        "daemon",
                        &format!(
                            "recovery[{scheme}]: {} domains ({} crashed, {} autostarted), \
                             {} networks, {} pools, {} guards ({} revived), {} quarantined",
                            report.domains,
                            report.crashed,
                            report.autostarted,
                            report.networks,
                            report.pools,
                            report.guards,
                            report.revived,
                            report.quarantined
                        ),
                    );
                }
            }
            registry
                .counter("recovery.duration_us", "Wall-clock startup recovery time")
                .add(started.elapsed().as_micros() as u64);
        }
        let event_options = EventLoopOptions {
            event_threads: self.config.event_threads,
            ..EventLoopOptions::default()
        };
        let main_server = Server::with_event_options(
            "virtd",
            self.config.pool_limits,
            self.config.max_clients,
            remote_dispatcher,
            event_options.clone(),
        )
        .map_err(|e| VirtError::new(ErrorCode::InvalidArg, e))?;
        main_server.set_logger(Arc::clone(&logger));
        main_server.publish_metrics(&registry);

        let admin_dispatcher =
            AdminDispatcher::with_registry(Arc::clone(&logger), Arc::clone(&registry));
        // The admin plane is low-traffic: one event thread is plenty.
        let admin_server = Server::with_event_options(
            "admin",
            self.config.admin_pool_limits,
            self.config.max_clients,
            admin_dispatcher.clone(),
            EventLoopOptions {
                event_threads: 1,
                ..event_options
            },
        )
        .map_err(|e| VirtError::new(ErrorCode::InvalidArg, e))?;
        admin_server.set_logger(Arc::clone(&logger));
        admin_server.publish_metrics(&registry);
        admin_dispatcher.attach_server(Arc::clone(&main_server));
        admin_dispatcher.attach_server(Arc::clone(&admin_server));

        logger.info("daemon", &format!("virtd '{}' started", self.name));

        Ok(Virtd {
            name: self.name,
            hosts: self.hosts,
            drivers,
            main_server,
            admin_server,
            logger,
            registry,
            store,
            registered_endpoints: parking_lot::Mutex::new(Vec::new()),
            serve_handles: parking_lot::Mutex::new(Vec::new()),
        })
    }
}

impl Virtd {
    /// Starts building a daemon.
    pub fn builder(name: impl Into<String>) -> VirtdBuilder {
        VirtdBuilder::new(name)
    }

    /// The daemon's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon's logger.
    pub fn logger(&self) -> &Arc<Logger> {
        &self.logger
    }

    /// The daemon-wide metric registry.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The main (`virtd`) server.
    pub fn main_server(&self) -> &Arc<Server> {
        &self.main_server
    }

    /// The admin server.
    pub fn admin_server(&self) -> &Arc<Server> {
        &self.admin_server
    }

    /// The host managed by a driver scheme, if attached.
    pub fn host(&self, scheme: &str) -> Option<&SimHost> {
        self.hosts.get(scheme)
    }

    /// The embedded driver serving a scheme, if attached.
    pub fn driver(&self, scheme: &str) -> Option<&Arc<EmbeddedConnection>> {
        self.drivers.get(scheme)
    }

    /// Attaches a listener to the main server. The daemon retains the
    /// serve handle and closes + joins it at shutdown.
    pub fn serve(&self, listener: Box<dyn Listener>) {
        let handle = self.main_server.serve(listener);
        self.serve_handles.lock().push(handle);
    }

    /// Attaches a listener to the admin server (handle retained, as with
    /// [`Virtd::serve`]).
    pub fn serve_admin(&self, listener: Box<dyn Listener>) {
        let handle = self.admin_server.serve(listener);
        self.serve_handles.lock().push(handle);
    }

    /// Creates an in-memory service on the main server, registers it in
    /// the [`virt_core::testbed`] under `endpoint`, and returns the
    /// connector. After this, `scheme+memory://endpoint/...` URIs reach
    /// this daemon.
    ///
    /// # Errors
    ///
    /// None currently; fallible for future socket-backed variants.
    pub fn register_memory_endpoint(&self, endpoint: &str) -> VirtResult<MemoryConnector> {
        let (listener, connector) = memory_listener();
        self.serve(Box::new(listener));
        testbed::register_daemon(endpoint, connector.clone());
        self.registered_endpoints.lock().push(endpoint.to_string());
        Ok(connector)
    }

    /// Creates an in-memory service on the admin server and returns its
    /// connector (for [`crate::AdminClient`]).
    pub fn admin_memory_connector(&self) -> MemoryConnector {
        let (listener, connector) = memory_listener();
        self.serve_admin(Box::new(listener));
        connector
    }

    /// Stops both servers gracefully: unregisters testbed endpoints,
    /// stops accepting (joining every accept thread), lets in-flight
    /// requests finish and their replies drain to the wire, then closes
    /// all clients.
    pub fn shutdown(&self) {
        for endpoint in self.registered_endpoints.lock().drain(..) {
            testbed::unregister_daemon(&endpoint);
        }
        let handles: Vec<ServeHandle> = self.serve_handles.lock().drain(..).collect();
        for handle in handles {
            handle.join();
        }
        self.main_server.shutdown();
        self.admin_server.shutdown();
        // Guard workers hold a Weak on their connection and would exit
        // on their own once the driver drops, but a daemon shutdown must
        // leave no revival racing the teardown.
        for conn in self.drivers.values() {
            conn.guard_engine().stop();
        }
        // Drain the write-behind pipeline last: no server or guard can
        // queue new records now, so after this every status write the
        // daemon accepted is on disk.
        if let Some(store) = &self.store {
            if let Err(err) = store.flush() {
                self.logger.warning(
                    "daemon",
                    &format!("statestore drain at shutdown reported: {err}"),
                );
            }
        }
        self.logger
            .info("daemon", &format!("virtd '{}' stopped", self.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virt_core::xmlfmt::DomainConfig;
    use virt_core::Connect;

    fn unique(name: &str) -> String {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        format!(
            "{name}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        )
    }

    #[test]
    fn builder_requires_hosts() {
        let err = Virtd::builder("d").build().unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidArg);
    }

    #[test]
    fn default_hosts_cover_three_schemes() {
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        assert!(daemon.host("qemu").is_some());
        assert!(daemon.host("xen").is_some());
        assert!(daemon.host("lxc").is_some());
        assert!(daemon.host("esx").is_none());
        daemon.shutdown();
    }

    #[test]
    fn remote_client_manages_domains_end_to_end() {
        let endpoint = unique("virtd-e2e");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();

        let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .open()
            .unwrap();
        assert_eq!(conn.hostname().unwrap(), "d-qemu");
        let domain = conn
            .define_domain(&DomainConfig::new("vm", 512, 1))
            .unwrap();
        domain.start().unwrap();
        assert!(domain.is_active().unwrap());

        // The daemon-side host observes the same domain.
        let host_view = daemon.host("qemu").unwrap().domain("vm").unwrap();
        assert_eq!(host_view.state, hypersim::DomainState::Running);

        domain.destroy().unwrap();
        domain.undefine().unwrap();
        conn.close();
        daemon.shutdown();
    }

    #[test]
    fn each_scheme_routes_to_its_own_host() {
        let endpoint = unique("virtd-schemes");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();

        for scheme in ["qemu", "xen", "lxc"] {
            let conn = Connect::builder(format!("{scheme}+memory://{endpoint}/system"))
                .open()
                .unwrap();
            assert_eq!(conn.hostname().unwrap(), format!("d-{scheme}"));
            assert_eq!(conn.capabilities().unwrap().hypervisor, scheme);
            conn.close();
        }
        daemon.shutdown();
    }

    #[test]
    fn unknown_scheme_is_rejected_at_open() {
        let endpoint = unique("virtd-unknown");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        let err = Connect::builder(format!("vbox+memory://{endpoint}/system"))
            .open()
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
        daemon.shutdown();
    }

    #[test]
    fn statedir_daemon_recovers_after_rebuild() {
        let dir = std::env::temp_dir().join(unique("virtd-statedir"));
        let _ = std::fs::remove_dir_all(&dir);
        let config = VirtdConfig::new().statedir(&dir);

        {
            let daemon = Virtd::builder("d")
                .config(config.clone())
                .with_quiet_hosts()
                .build()
                .unwrap();
            let endpoint = unique("virtd-persist");
            daemon.register_memory_endpoint(&endpoint).unwrap();
            let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
                .open()
                .unwrap();
            let web = conn
                .define_domain(&DomainConfig::new("web", 256, 1))
                .unwrap();
            web.set_autostart(true).unwrap();
            let db = conn
                .define_domain(&DomainConfig::new("db", 256, 1))
                .unwrap();
            db.start().unwrap();
            conn.close();
            daemon.shutdown();
            // No undefine, no destroy: state must survive on disk alone.
        }

        // Fresh daemon, fresh (empty) hosts, same statedir.
        let daemon = Virtd::builder("d2")
            .config(config)
            .with_quiet_hosts()
            .build()
            .unwrap();
        let endpoint = unique("virtd-persist2");
        daemon.register_memory_endpoint(&endpoint).unwrap();
        let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .open()
            .unwrap();

        let web = conn.domain_lookup_by_name("web").unwrap();
        assert!(web.autostart().unwrap());
        assert!(web.is_active().unwrap(), "autostart domain must be running");

        // `db` was running when the first daemon went away; its guest
        // died with it, so it reports shut off with reason crashed.
        let db = conn.domain_lookup_by_name("db").unwrap();
        assert!(!db.is_active().unwrap());

        let snapshot = daemon.metrics().snapshot("recovery.");
        let counter = |name: &str| match snapshot.iter().find(|m| m.name == name) {
            Some(m) => match &m.value {
                virt_core::metrics::MetricValue::Counter(v) => *v,
                other => panic!("{name} is not a counter: {other:?}"),
            },
            None => panic!("{name} not registered"),
        };
        assert_eq!(counter("recovery.recovered"), 2);
        assert_eq!(counter("recovery.crashed"), 1);
        assert_eq!(counter("recovery.autostarted"), 1);
        assert_eq!(counter("recovery.quarantined"), 0);

        conn.close();
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_unregisters_endpoints() {
        let endpoint = unique("virtd-cleanup");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        daemon.shutdown();
        let err = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .open()
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }
}

//! The daemon assembly: hosts, drivers, servers, services.

use std::collections::HashMap;
use std::sync::Arc;

use hypersim::personality::{LxcLike, QemuLike, XenLike};
use hypersim::{LatencyModel, SimClock, SimHost};

use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::error::{ErrorCode, VirtError, VirtResult};
use virt_core::log::Logger;
use virt_core::metrics::Registry;
use virt_core::testbed;
use virt_rpc::transport::{memory_listener, Listener, MemoryConnector};

use crate::admin::AdminDispatcher;
use crate::config::VirtdConfig;
use crate::dispatch::RemoteDispatcher;
use crate::server::Server;

/// A running management daemon.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Virtd {
    name: String,
    hosts: HashMap<String, SimHost>,
    main_server: Arc<Server>,
    admin_server: Arc<Server>,
    logger: Arc<Logger>,
    /// Daemon-wide metric registry: every layer publishes into it and
    /// the admin metrics procedures read from it.
    registry: Arc<Registry>,
    /// Names registered in the global testbed, removed on shutdown.
    registered_endpoints: parking_lot::Mutex<Vec<String>>,
}

impl std::fmt::Debug for Virtd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Virtd")
            .field("name", &self.name)
            .field("drivers", &self.hosts.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Builder for [`Virtd`].
pub struct VirtdBuilder {
    name: String,
    config: VirtdConfig,
    hosts: HashMap<String, SimHost>,
    clock: SimClock,
}

impl VirtdBuilder {
    fn new(name: impl Into<String>) -> Self {
        VirtdBuilder {
            name: name.into(),
            config: VirtdConfig::new(),
            hosts: HashMap::new(),
            clock: SimClock::new(),
        }
    }

    /// Applies a configuration.
    pub fn config(mut self, config: VirtdConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares a virtual clock across this daemon's hosts (and with other
    /// daemons, for migration timing).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a host under the driver scheme of its personality.
    pub fn host(mut self, host: SimHost) -> Self {
        self.hosts
            .insert(host.personality().name().to_string(), host);
        self
    }

    /// Attaches default qemu/xen/lxc hosts with realistic latency models,
    /// named `<daemon>-<scheme>`.
    pub fn with_default_hosts(mut self) -> Self {
        let qemu = SimHost::builder(format!("{}-qemu", self.name))
            .personality(QemuLike)
            .clock(self.clock.clone())
            .build();
        let xen = SimHost::builder(format!("{}-xen", self.name))
            .personality(XenLike)
            .clock(self.clock.clone())
            .seed(0x11)
            .build();
        let lxc = SimHost::builder(format!("{}-lxc", self.name))
            .personality(LxcLike)
            .clock(self.clock.clone())
            .seed(0x22)
            .build();
        self.hosts.insert("qemu".to_string(), qemu);
        self.hosts.insert("xen".to_string(), xen);
        self.hosts.insert("lxc".to_string(), lxc);
        self
    }

    /// Attaches default hosts with **zero-latency** models (logic-focused
    /// tests).
    pub fn with_quiet_hosts(mut self) -> Self {
        for (scheme, seed) in [("qemu", 1u64), ("xen", 2), ("lxc", 3)] {
            let personality: Box<dyn FnOnce(hypersim::SimHostBuilder) -> hypersim::SimHostBuilder> =
                match scheme {
                    "qemu" => Box::new(|b| b.personality(QemuLike)),
                    "xen" => Box::new(|b| b.personality(XenLike)),
                    _ => Box::new(|b| b.personality(LxcLike)),
                };
            let host = personality(
                SimHost::builder(format!("{}-{scheme}", self.name))
                    .clock(self.clock.clone())
                    .seed(seed),
            )
            .latency(LatencyModel::zero())
            .build();
            self.hosts.insert(scheme.to_string(), host);
        }
        self
    }

    /// Builds and starts the daemon (servers running, no services yet).
    ///
    /// # Errors
    ///
    /// Invalid pool limits; no hosts attached.
    pub fn build(self) -> VirtResult<Virtd> {
        if self.hosts.is_empty() {
            return Err(VirtError::new(
                ErrorCode::InvalidArg,
                "daemon needs at least one host",
            ));
        }
        let logger = Arc::new(Logger::new());
        logger
            .redefine(self.config.log.clone())
            .expect("startup log settings are validated defaults");

        let drivers: HashMap<String, Arc<EmbeddedConnection>> = self
            .hosts
            .iter()
            .map(|(scheme, host)| {
                (
                    scheme.clone(),
                    EmbeddedConnection::new(host.clone(), format!("{scheme}:///system")),
                )
            })
            .collect();

        let registry = Arc::new(Registry::new());

        let remote_dispatcher = RemoteDispatcher::new(
            drivers.clone(),
            Arc::clone(&logger),
            self.config.credentials.clone(),
        );
        remote_dispatcher.publish_metrics(&registry);
        virt_core::job::job_metrics().publish(&registry);
        for (scheme, conn) in &drivers {
            conn.publish_metrics(&registry, scheme);
            // Job recovery: a daemon that went down mid-job cannot resume
            // it — mark any job left running on this host as failed so
            // clients polling after the restart see a terminal state
            // instead of eternal progress.
            for domain in conn
                .jobs()
                .fail_running("daemon restarted while job was running")
            {
                logger.warning(
                    "daemon",
                    &format!("recovered orphaned job on domain '{domain}': marked failed"),
                );
            }
        }
        let main_server = Server::new(
            "virtd",
            self.config.pool_limits,
            self.config.max_clients,
            remote_dispatcher,
        )
        .map_err(|e| VirtError::new(ErrorCode::InvalidArg, e))?;
        main_server.publish_metrics(&registry);

        let admin_dispatcher =
            AdminDispatcher::with_registry(Arc::clone(&logger), Arc::clone(&registry));
        let admin_server = Server::new(
            "admin",
            self.config.admin_pool_limits,
            self.config.max_clients,
            admin_dispatcher.clone(),
        )
        .map_err(|e| VirtError::new(ErrorCode::InvalidArg, e))?;
        admin_server.publish_metrics(&registry);
        admin_dispatcher.attach_server(Arc::clone(&main_server));
        admin_dispatcher.attach_server(Arc::clone(&admin_server));

        logger.info("daemon", &format!("virtd '{}' started", self.name));

        Ok(Virtd {
            name: self.name,
            hosts: self.hosts,
            main_server,
            admin_server,
            logger,
            registry,
            registered_endpoints: parking_lot::Mutex::new(Vec::new()),
        })
    }
}

impl Virtd {
    /// Starts building a daemon.
    pub fn builder(name: impl Into<String>) -> VirtdBuilder {
        VirtdBuilder::new(name)
    }

    /// The daemon's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon's logger.
    pub fn logger(&self) -> &Arc<Logger> {
        &self.logger
    }

    /// The daemon-wide metric registry.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The main (`virtd`) server.
    pub fn main_server(&self) -> &Arc<Server> {
        &self.main_server
    }

    /// The admin server.
    pub fn admin_server(&self) -> &Arc<Server> {
        &self.admin_server
    }

    /// The host managed by a driver scheme, if attached.
    pub fn host(&self, scheme: &str) -> Option<&SimHost> {
        self.hosts.get(scheme)
    }

    /// Attaches a listener to the main server.
    pub fn serve(&self, listener: Box<dyn Listener>) {
        self.main_server.serve(listener);
    }

    /// Attaches a listener to the admin server.
    pub fn serve_admin(&self, listener: Box<dyn Listener>) {
        self.admin_server.serve(listener);
    }

    /// Creates an in-memory service on the main server, registers it in
    /// the [`virt_core::testbed`] under `endpoint`, and returns the
    /// connector. After this, `scheme+memory://endpoint/...` URIs reach
    /// this daemon.
    ///
    /// # Errors
    ///
    /// None currently; fallible for future socket-backed variants.
    pub fn register_memory_endpoint(&self, endpoint: &str) -> VirtResult<MemoryConnector> {
        let (listener, connector) = memory_listener();
        self.serve(Box::new(listener));
        testbed::register_daemon(endpoint, connector.clone());
        self.registered_endpoints.lock().push(endpoint.to_string());
        Ok(connector)
    }

    /// Creates an in-memory service on the admin server and returns its
    /// connector (for [`crate::AdminClient`]).
    pub fn admin_memory_connector(&self) -> MemoryConnector {
        let (listener, connector) = memory_listener();
        self.serve_admin(Box::new(listener));
        connector
    }

    /// Stops both servers, closes all clients, and removes testbed
    /// registrations.
    pub fn shutdown(&self) {
        for endpoint in self.registered_endpoints.lock().drain(..) {
            testbed::unregister_daemon(&endpoint);
        }
        self.main_server.shutdown();
        self.admin_server.shutdown();
        self.logger
            .info("daemon", &format!("virtd '{}' stopped", self.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virt_core::xmlfmt::DomainConfig;
    use virt_core::Connect;

    fn unique(name: &str) -> String {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        format!(
            "{name}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        )
    }

    #[test]
    fn builder_requires_hosts() {
        let err = Virtd::builder("d").build().unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidArg);
    }

    #[test]
    fn default_hosts_cover_three_schemes() {
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        assert!(daemon.host("qemu").is_some());
        assert!(daemon.host("xen").is_some());
        assert!(daemon.host("lxc").is_some());
        assert!(daemon.host("esx").is_none());
        daemon.shutdown();
    }

    #[test]
    fn remote_client_manages_domains_end_to_end() {
        let endpoint = unique("virtd-e2e");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();

        let conn = Connect::open(&format!("qemu+memory://{endpoint}/system")).unwrap();
        assert_eq!(conn.hostname().unwrap(), "d-qemu");
        let domain = conn
            .define_domain(&DomainConfig::new("vm", 512, 1))
            .unwrap();
        domain.start().unwrap();
        assert!(domain.is_active().unwrap());

        // The daemon-side host observes the same domain.
        let host_view = daemon.host("qemu").unwrap().domain("vm").unwrap();
        assert_eq!(host_view.state, hypersim::DomainState::Running);

        domain.destroy().unwrap();
        domain.undefine().unwrap();
        conn.close();
        daemon.shutdown();
    }

    #[test]
    fn each_scheme_routes_to_its_own_host() {
        let endpoint = unique("virtd-schemes");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();

        for scheme in ["qemu", "xen", "lxc"] {
            let conn = Connect::open(&format!("{scheme}+memory://{endpoint}/system")).unwrap();
            assert_eq!(conn.hostname().unwrap(), format!("d-{scheme}"));
            assert_eq!(conn.capabilities().unwrap().hypervisor, scheme);
            conn.close();
        }
        daemon.shutdown();
    }

    #[test]
    fn unknown_scheme_is_rejected_at_open() {
        let endpoint = unique("virtd-unknown");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        let err = Connect::open(&format!("vbox+memory://{endpoint}/system")).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
        daemon.shutdown();
    }

    #[test]
    fn shutdown_unregisters_endpoints() {
        let endpoint = unique("virtd-cleanup");
        let daemon = Virtd::builder("d").with_quiet_hosts().build().unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        daemon.shutdown();
        let err = Connect::open(&format!("qemu+memory://{endpoint}/system")).unwrap_err();
        assert_eq!(err.code(), ErrorCode::NoConnect);
    }
}

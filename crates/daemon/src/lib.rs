//! # virtd — the management daemon
//!
//! The daemon side of the remote protocol, reproducing libvirtd's
//! architecture:
//!
//! - **servers** ([`server::Server`]): named objects that accept client
//!   connections and execute their requests on a worker pool with
//!   priority workers. A daemon hosts two servers, `virtd` (the
//!   hypervisor protocol) and `admin` (the administration protocol).
//! - **services**: listening endpoints (memory, Unix socket, TCP,
//!   TLS-sim) attached to a server.
//! - **client tracking**: per-server client tables with identity,
//!   connect timestamps, and a configurable client limit.
//! - **dispatch** ([`dispatch`]): the procedure table mapping wire calls
//!   onto the same driver API local callers use — the daemon literally
//!   re-enters `virt-core` through its embedded drivers.
//! - **admin interface** ([`admin`]): runtime management of the daemon
//!   itself — worker-pool limits, client limits, client listing and
//!   forced disconnect, and logging settings — without a restart.
//! - **observability**: every layer publishes lock-free counters,
//!   gauges, and latency histograms into one [`virt_core::metrics`]
//!   registry (per-procedure RPC latency, worker-pool wait/run times,
//!   transport byte counts, driver lifecycle timings), served over the
//!   admin protocol's metrics procedures; RPC dispatch threads a
//!   request id (client id + packet serial) through the logger so log
//!   lines correlate with slow calls.
//!
//! ## Example: in-process daemon + remote client
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use virt_core::xmlfmt::DomainConfig;
//! use virt_core::Connect;
//! use virtd::Virtd;
//!
//! let daemon = Virtd::builder("node1")
//!     .with_default_hosts()
//!     .build()?;
//! let _connector = daemon.register_memory_endpoint("doc-node1")?;
//!
//! let conn = Connect::builder("qemu+memory://doc-node1/system").open()?;
//! let domain = conn.define_domain(&DomainConfig::new("web", 512, 1))?;
//! domain.start()?;
//! assert!(domain.is_active()?);
//! # daemon.shutdown();
//! # virt_core::testbed::unregister_daemon("doc-node1");
//! # Ok(())
//! # }
//! ```

pub mod admin;
pub mod adminproto;
pub mod config;
pub mod daemon;
pub mod dispatch;
pub mod eventloop;
pub mod server;

pub use admin::AdminClient;
pub use config::VirtdConfig;
pub use daemon::Virtd;
pub use eventloop::EventLoopOptions;
pub use server::{ClientIdentity, ClientSnapshot, ServeHandle, Server};
pub use virt_core::StoreOptions;

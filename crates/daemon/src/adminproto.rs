//! Wire definitions of the administration protocol.
//!
//! The admin program manages the daemon itself rather than any
//! hypervisor: servers, worker pools, connected clients, and logging.
//! Settable quantities travel as typed-parameter lists so the protocol
//! can grow fields without breaking compatibility.

use virt_core::typedparam::TypedParamList;
use virt_rpc::xdr::{XdrDecode, XdrEncode};
use virt_rpc::xdr_struct;
use virt_rpc::PoolStats;

/// Procedure numbers of the admin program.
///
/// Assigned numbers (stable on the wire — never reuse):
///
/// | # | procedure | direction |
/// |---|-----------|-----------|
/// | 1 | `SRV_LIST` | `()` → server-name list |
/// | 2 | `THREADPOOL_INFO` | [`ServerArgs`] → [`WirePoolStats`] |
/// | 3 | `THREADPOOL_SET` | [`ServerParamsArgs`] → `()` |
/// | 4 | `CLIENT_LIST` | [`ServerArgs`] → [`WireClientList`] |
/// | 5 | `CLIENT_INFO` | [`ClientArgs`] → [`WireClient`] |
/// | 6 | `CLIENT_DISCONNECT` | [`ClientArgs`] → `()` |
/// | 7 | `CLIENT_LIMITS_INFO` | [`ServerArgs`] → [`WireClientLimits`] |
/// | 8 | `CLIENT_LIMITS_SET` | [`ServerParamsArgs`] → `()` |
/// | 9 | `LOG_INFO` | `()` → [`WireLogInfo`] |
/// | 10 | `LOG_SET_LEVEL` | level → `()` |
/// | 11 | `LOG_SET_FILTERS` | filter string → `()` |
/// | 12 | `LOG_SET_OUTPUTS` | output string → `()` |
/// | 13 | `METRICS_LIST` | `()` → metric-name list |
/// | 14 | `METRICS_FETCH` | [`MetricsFetchArgs`] → [`WireMetricList`] |
/// | 15 | `TRACE_CONFIG` | [`TraceConfigArgs`] → [`WireTraceConfig`] |
/// | 16 | `TRACE_DUMP` | [`TraceDumpArgs`] → [`WireTraceEventList`] |
///
/// Procedures 13–14 and 16 are read-only: the dispatcher allows them
/// for read-only admin clients. `TRACE_CONFIG` with every field absent
/// is a pure read too, but numbering it writable keeps the check simple
/// and honest — it *can* reconfigure the recorder.
pub mod proc {
    /// List server names.
    pub const SRV_LIST: u32 = 1;
    /// Worker-pool statistics of a server.
    pub const THREADPOOL_INFO: u32 = 2;
    /// Adjust worker-pool limits.
    pub const THREADPOOL_SET: u32 = 3;
    /// List connected clients of a server.
    pub const CLIENT_LIST: u32 = 4;
    /// Identity details of one client.
    pub const CLIENT_INFO: u32 = 5;
    /// Forcefully disconnect a client.
    pub const CLIENT_DISCONNECT: u32 = 6;
    /// Client-limit statistics of a server.
    pub const CLIENT_LIMITS_INFO: u32 = 7;
    /// Adjust client limits.
    pub const CLIENT_LIMITS_SET: u32 = 8;
    /// Current logging settings (level, filters, outputs).
    pub const LOG_INFO: u32 = 9;
    /// Set the global logging level.
    pub const LOG_SET_LEVEL: u32 = 10;
    /// Replace the logging filter set.
    pub const LOG_SET_FILTERS: u32 = 11;
    /// Replace the logging output set.
    pub const LOG_SET_OUTPUTS: u32 = 12;
    /// List registered metric names.
    pub const METRICS_LIST: u32 = 13;
    /// Fetch a snapshot of metrics, optionally filtered by name prefix.
    pub const METRICS_FETCH: u32 = 14;
    /// Read or change flight-recorder settings (enable, slow threshold).
    pub const TRACE_CONFIG: u32 = 15;
    /// Drain the flight recorder's buffered trace events.
    pub const TRACE_DUMP: u32 = 16;
}

/// Typed-parameter field: minimum ordinary workers.
pub const PARAM_WORKERS_MIN: &str = "minWorkers";
/// Typed-parameter field: maximum ordinary workers.
pub const PARAM_WORKERS_MAX: &str = "maxWorkers";
/// Typed-parameter field: priority workers.
pub const PARAM_WORKERS_PRIORITY: &str = "prioWorkers";
/// Typed-parameter field: maximum connected clients.
pub const PARAM_CLIENTS_MAX: &str = "nclients_max";

xdr_struct! {
    /// Argument naming a server.
    pub struct ServerArgs {
        /// Server name (`virtd`, `admin`).
        pub server: String,
    }
}

xdr_struct! {
    /// Argument naming a server and a client id.
    pub struct ClientArgs {
        /// Server name.
        pub server: String,
        /// Client id on that server.
        pub client: u64,
    }
}

xdr_struct! {
    /// Typed-parameter update for a server.
    pub struct ServerParamsArgs {
        /// Server name.
        pub server: String,
        /// Parameters to apply.
        pub params: TypedParamList,
    }
}

xdr_struct! {
    /// Worker-pool statistics on the wire.
    pub struct WirePoolStats {
        /// Configured minimum.
        pub min_workers: u32,
        /// Configured maximum.
        pub max_workers: u32,
        /// Alive ordinary workers.
        pub current_workers: u32,
        /// Idle ordinary workers.
        pub free_workers: u32,
        /// Priority workers.
        pub priority_workers: u32,
        /// Queued jobs.
        pub job_queue_depth: u32,
    }
}

impl From<PoolStats> for WirePoolStats {
    fn from(s: PoolStats) -> Self {
        WirePoolStats {
            min_workers: s.min_workers,
            max_workers: s.max_workers,
            current_workers: s.current_workers,
            free_workers: s.free_workers,
            priority_workers: s.priority_workers,
            job_queue_depth: s.job_queue_depth,
        }
    }
}

impl From<WirePoolStats> for PoolStats {
    fn from(w: WirePoolStats) -> Self {
        PoolStats {
            min_workers: w.min_workers,
            max_workers: w.max_workers,
            current_workers: w.current_workers,
            free_workers: w.free_workers,
            priority_workers: w.priority_workers,
            job_queue_depth: w.job_queue_depth,
        }
    }
}

xdr_struct! {
    /// One client on the wire.
    pub struct WireClient {
        /// Client id.
        pub id: u64,
        /// Transport name.
        pub transport: String,
        /// Peer description.
        pub peer: String,
        /// Connect time (seconds since epoch), for display.
        pub connected_secs: u64,
        /// Session age in seconds from a monotonic clock, immune to
        /// wall-clock jumps.
        pub session_secs: u64,
        /// Authenticated username, empty when unauthenticated.
        pub username: String,
        /// Whether the session is read-only.
        pub readonly: bool,
    }
}

/// Wire list of clients.
#[derive(Debug, Clone, PartialEq)]
pub struct WireClientList(pub Vec<WireClient>);

impl XdrEncode for WireClientList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for client in &self.0 {
            client.encode(out);
        }
    }
}

impl XdrDecode for WireClientList {
    fn decode(cursor: &mut virt_rpc::xdr::Cursor<'_>) -> Result<Self, virt_rpc::xdr::XdrError> {
        let len = u32::decode(cursor)?;
        if len > 1_000_000 {
            return Err(virt_rpc::xdr::XdrError::LengthTooLarge(len));
        }
        let mut items = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            items.push(WireClient::decode(cursor)?);
        }
        Ok(WireClientList(items))
    }
}

xdr_struct! {
    /// Client-limit statistics.
    pub struct WireClientLimits {
        /// Configured maximum.
        pub max_clients: u32,
        /// Currently connected.
        pub current_clients: u32,
        /// Connections refused so far.
        pub refused: u64,
    }
}

xdr_struct! {
    /// Argument selecting metrics to fetch.
    pub struct MetricsFetchArgs {
        /// Only metrics whose name starts with this prefix; empty for all.
        pub prefix: String,
    }
}

/// Discriminant of [`WireMetric::kind`]: counter.
pub const METRIC_KIND_COUNTER: u32 = 0;
/// Discriminant of [`WireMetric::kind`]: gauge.
pub const METRIC_KIND_GAUGE: u32 = 1;
/// Discriminant of [`WireMetric::kind`]: histogram.
pub const METRIC_KIND_HISTOGRAM: u32 = 2;

xdr_struct! {
    /// One metric snapshot on the wire.
    ///
    /// `value` carries the counter or gauge value; histograms leave it
    /// zero and fill `hist_count`, `hist_sum_ns` and `hist_buckets`
    /// (per-bucket counts in log₂-µs bucket order).
    pub struct WireMetric {
        /// Registered metric name.
        pub name: String,
        /// Human-readable help text.
        pub help: String,
        /// [`METRIC_KIND_COUNTER`], [`METRIC_KIND_GAUGE`] or
        /// [`METRIC_KIND_HISTOGRAM`].
        pub kind: u32,
        /// Counter/gauge value; zero for histograms.
        pub value: u64,
        /// Histogram observation count; zero otherwise.
        pub hist_count: u64,
        /// Histogram total of observed nanoseconds; zero otherwise.
        pub hist_sum_ns: u64,
        /// Histogram per-bucket counts; empty otherwise.
        pub hist_buckets: Vec<u64>,
    }
}

/// Wire list of metric snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMetricList(pub Vec<WireMetric>);

impl XdrEncode for WireMetricList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for metric in &self.0 {
            metric.encode(out);
        }
    }
}

impl XdrDecode for WireMetricList {
    fn decode(cursor: &mut virt_rpc::xdr::Cursor<'_>) -> Result<Self, virt_rpc::xdr::XdrError> {
        let len = u32::decode(cursor)?;
        if len > 1_000_000 {
            return Err(virt_rpc::xdr::XdrError::LengthTooLarge(len));
        }
        let mut items = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            items.push(WireMetric::decode(cursor)?);
        }
        Ok(WireMetricList(items))
    }
}

impl From<virt_core::metrics::MetricSnapshot> for WireMetric {
    fn from(snap: virt_core::metrics::MetricSnapshot) -> Self {
        use virt_core::metrics::MetricValue;
        let (kind, value, hist_count, hist_sum_ns, hist_buckets) = match snap.value {
            MetricValue::Counter(v) => (METRIC_KIND_COUNTER, v, 0, 0, Vec::new()),
            MetricValue::Gauge(v) => (METRIC_KIND_GAUGE, v, 0, 0, Vec::new()),
            MetricValue::Histogram(h) => (METRIC_KIND_HISTOGRAM, 0, h.count, h.sum_ns, h.buckets),
        };
        WireMetric {
            name: snap.name,
            help: snap.help,
            kind,
            value,
            hist_count,
            hist_sum_ns,
            hist_buckets,
        }
    }
}

impl From<WireMetric> for virt_core::metrics::MetricSnapshot {
    fn from(wire: WireMetric) -> Self {
        use virt_core::metrics::{HistogramSnapshot, MetricValue};
        let value = match wire.kind {
            METRIC_KIND_GAUGE => MetricValue::Gauge(wire.value),
            METRIC_KIND_HISTOGRAM => MetricValue::Histogram(HistogramSnapshot {
                count: wire.hist_count,
                sum_ns: wire.hist_sum_ns,
                buckets: wire.hist_buckets,
            }),
            // Unknown kinds from a newer daemon degrade to a counter.
            _ => MetricValue::Counter(wire.value),
        };
        virt_core::metrics::MetricSnapshot {
            name: wire.name,
            help: wire.help,
            value,
        }
    }
}

xdr_struct! {
    /// Flight-recorder settings update: absent fields leave the current
    /// value untouched, so `TRACE_CONFIG` with both fields absent reads
    /// the configuration without changing it.
    pub struct TraceConfigArgs {
        /// Turn request tracing on or off.
        pub enabled: Option<bool>,
        /// Slow-request promotion threshold in milliseconds; 0 disables
        /// promotion.
        pub slow_threshold_ms: Option<u64>,
    }
}

xdr_struct! {
    /// The flight recorder's current configuration.
    pub struct WireTraceConfig {
        /// Whether tracing is recording.
        pub enabled: bool,
        /// Slow-request promotion threshold in milliseconds (0 = off).
        pub slow_threshold_ms: u64,
        /// Events recorded since the daemon started (monotonic; the ring
        /// holds only the newest).
        pub recorded: u64,
        /// Ring capacity in events.
        pub capacity: u64,
    }
}

xdr_struct! {
    /// Arguments for draining the flight recorder.
    pub struct TraceDumpArgs {
        /// Also clear the ring after reading it.
        pub clear: bool,
    }
}

xdr_struct! {
    /// One flight-recorder event on the wire.
    pub struct WireTraceEvent {
        /// Trace id shared by the whole request.
        pub trace_id: u64,
        /// This span's id.
        pub span_id: u64,
        /// Parent span id, 0 at the root.
        pub parent_id: u64,
        /// Stage discriminant ([`virt_core::metrics::span::Stage`]).
        pub stage: u32,
        /// 0 = begin, 1 = end.
        pub phase: u32,
        /// Event time, ns on the daemon's trace clock.
        pub t_ns: u64,
        /// Span duration in ns (end events; 0 on begin).
        pub dur_ns: u64,
        /// Stage-specific detail (procedure number, slice iteration, …).
        pub detail: u64,
    }
}

/// Wire list of trace events.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTraceEventList(pub Vec<WireTraceEvent>);

impl XdrEncode for WireTraceEventList {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        for event in &self.0 {
            event.encode(out);
        }
    }
}

impl XdrDecode for WireTraceEventList {
    fn decode(cursor: &mut virt_rpc::xdr::Cursor<'_>) -> Result<Self, virt_rpc::xdr::XdrError> {
        let len = u32::decode(cursor)?;
        if len > 1_000_000 {
            return Err(virt_rpc::xdr::XdrError::LengthTooLarge(len));
        }
        let mut items = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            items.push(WireTraceEvent::decode(cursor)?);
        }
        Ok(WireTraceEventList(items))
    }
}

impl From<&virt_core::metrics::recorder::TraceEvent> for WireTraceEvent {
    fn from(e: &virt_core::metrics::recorder::TraceEvent) -> Self {
        WireTraceEvent {
            trace_id: e.trace_id,
            span_id: e.span_id,
            parent_id: e.parent_id,
            stage: e.stage.as_u32(),
            phase: e.phase.as_u32(),
            t_ns: e.t_ns,
            dur_ns: e.dur_ns,
            detail: e.detail,
        }
    }
}

impl WireTraceEvent {
    /// Decodes into a recorder event, dropping unknown stages/phases
    /// (a newer daemon may emit kinds this client predates).
    pub fn into_event(self) -> Option<virt_core::metrics::recorder::TraceEvent> {
        use virt_core::metrics::recorder::EventPhase;
        use virt_core::metrics::span::Stage;
        Some(virt_core::metrics::recorder::TraceEvent {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            stage: Stage::from_u32(self.stage)?,
            phase: EventPhase::from_u32(self.phase)?,
            t_ns: self.t_ns,
            dur_ns: self.dur_ns,
            detail: self.detail,
        })
    }
}

xdr_struct! {
    /// Complete logging settings snapshot.
    pub struct WireLogInfo {
        /// Global level (1–4).
        pub level: u32,
        /// Space-separated filter list.
        pub filters: String,
        /// Space-separated output list.
        pub outputs: String,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virt_core::typedparam::TypedParam;

    #[test]
    fn pool_stats_round_trip() {
        let stats = PoolStats {
            min_workers: 5,
            max_workers: 20,
            current_workers: 7,
            free_workers: 3,
            priority_workers: 5,
            job_queue_depth: 12,
        };
        let wire = WirePoolStats::from(stats);
        let back: PoolStats = WirePoolStats::from_xdr(&wire.to_xdr()).unwrap().into();
        assert_eq!(back, stats);
    }

    #[test]
    fn client_list_round_trip() {
        let list = WireClientList(vec![WireClient {
            id: 3,
            transport: "tcp".into(),
            peer: "10.0.0.1:4444".into(),
            connected_secs: 1_700_000_000,
            session_secs: 42,
            username: "admin".into(),
            readonly: true,
        }]);
        let decoded = WireClientList::from_xdr(&list.to_xdr()).unwrap();
        assert_eq!(decoded, list);
    }

    #[test]
    fn metric_list_round_trip() {
        let list = WireMetricList(vec![
            WireMetric {
                name: "rpc.calls".into(),
                help: "Total RPC calls dispatched".into(),
                kind: METRIC_KIND_COUNTER,
                value: 17,
                hist_count: 0,
                hist_sum_ns: 0,
                hist_buckets: Vec::new(),
            },
            WireMetric {
                name: "pool.virtd.wait_us".into(),
                help: "Job queue wait time".into(),
                kind: METRIC_KIND_HISTOGRAM,
                value: 0,
                hist_count: 3,
                hist_sum_ns: 9_000,
                hist_buckets: vec![0, 1, 2, 0],
            },
        ]);
        let decoded = WireMetricList::from_xdr(&list.to_xdr()).unwrap();
        assert_eq!(decoded, list);
    }

    #[test]
    fn wire_metric_from_snapshot() {
        use virt_core::metrics::{Counter, Registry};
        let registry = Registry::new();
        registry
            .register_counter("x.hits", "hits", std::sync::Arc::new(Counter::new()))
            .unwrap();
        registry.counter("x.hits", "hits").add(5);
        let snaps = registry.snapshot("");
        let wire: Vec<WireMetric> = snaps.into_iter().map(WireMetric::from).collect();
        assert_eq!(wire.len(), 1);
        assert_eq!(wire[0].name, "x.hits");
        assert_eq!(wire[0].kind, METRIC_KIND_COUNTER);
        assert_eq!(wire[0].value, 5);
    }

    #[test]
    fn server_params_round_trip() {
        let args = ServerParamsArgs {
            server: "virtd".into(),
            params: TypedParamList(vec![
                TypedParam::uint(PARAM_WORKERS_MIN, 5),
                TypedParam::uint(PARAM_WORKERS_MAX, 40),
            ]),
        };
        let decoded = ServerParamsArgs::from_xdr(&args.to_xdr()).unwrap();
        assert_eq!(decoded, args);
    }

    #[test]
    fn trace_structs_round_trip() {
        let args = TraceConfigArgs {
            enabled: Some(true),
            slow_threshold_ms: None,
        };
        assert_eq!(TraceConfigArgs::from_xdr(&args.to_xdr()).unwrap(), args);

        let config = WireTraceConfig {
            enabled: true,
            slow_threshold_ms: 250,
            recorded: 9001,
            capacity: 4096,
        };
        assert_eq!(WireTraceConfig::from_xdr(&config.to_xdr()).unwrap(), config);

        let list = WireTraceEventList(vec![WireTraceEvent {
            trace_id: 0xaa,
            span_id: 0xbb,
            parent_id: 0,
            stage: 4,
            phase: 1,
            t_ns: 123,
            dur_ns: 456,
            detail: 7,
        }]);
        let decoded = WireTraceEventList::from_xdr(&list.to_xdr()).unwrap();
        assert_eq!(decoded, list);
        let event = decoded.0[0].clone().into_event().unwrap();
        assert_eq!(event.stage, virt_core::metrics::span::Stage::Dispatch);
        assert_eq!(event.dur_ns, 456);
        // Unknown stage discriminants are dropped, not mis-decoded.
        let unknown = WireTraceEvent {
            stage: 99,
            ..list.0[0].clone()
        };
        assert!(unknown.into_event().is_none());
    }

    #[test]
    fn log_info_round_trip() {
        let info = WireLogInfo {
            level: 4,
            filters: "1:rpc 3:util".into(),
            outputs: "1:buffer".into(),
        };
        let decoded = WireLogInfo::from_xdr(&info.to_xdr()).unwrap();
        assert_eq!(decoded, info);
    }
}

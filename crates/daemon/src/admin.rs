//! The administration interface: runtime management of the daemon itself.
//!
//! Before this interface, the only way to change a daemon's worker-pool
//! size, client limits, or logging verbosity was to edit the persistent
//! configuration file and restart — losing transient domain state and
//! dropping every client. The admin server makes those knobs live:
//!
//! - `srv-list` — enumerate the daemon's servers,
//! - `srv-threadpool-info/set` — inspect/resize worker pools,
//! - `srv-clients-info/set` — inspect/adjust client limits,
//! - `client-list`/`client-info`/`client-disconnect` — manage clients,
//! - `dmn-log-info`/`dmn-log-define` — reconfigure logging atomically,
//! - `metrics` — fetch the daemon-wide metric registry (counters,
//!   gauges, latency histograms), optionally in Prometheus text format.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use virt_core::error::{ErrorCode, VirtError, VirtResult};
use virt_core::log::{LogLevel, LogSettings, Logger};
use virt_core::typedparam::{TypedParamList, TypedParams};
use virt_rpc::message::{Header, Packet, ADMIN_PROGRAM};
use virt_rpc::transport::Transport;
use virt_rpc::xdr::XdrEncode;
use virt_rpc::{CallClient, PoolLimits, PoolStats};

use crate::adminproto::{self, proc};
use crate::server::{ClientHandle, ClientSnapshot, ProgramDispatcher, Server};

/// Dispatcher for [`ADMIN_PROGRAM`].
pub struct AdminDispatcher {
    servers: Mutex<HashMap<String, Arc<Server>>>,
    logger: Arc<Logger>,
    /// Daemon-wide metric registry served by the metrics procedures.
    registry: Arc<virt_core::metrics::Registry>,
}

impl AdminDispatcher {
    /// Creates the dispatcher; servers are attached afterwards with
    /// [`AdminDispatcher::attach_server`] (the admin server manages
    /// itself too, so it cannot exist before its own dispatcher).
    pub fn new(logger: Arc<Logger>) -> Arc<Self> {
        Self::with_registry(logger, Arc::new(virt_core::metrics::Registry::new()))
    }

    /// Creates the dispatcher serving metrics from `registry`.
    pub fn with_registry(
        logger: Arc<Logger>,
        registry: Arc<virt_core::metrics::Registry>,
    ) -> Arc<Self> {
        Arc::new(AdminDispatcher {
            servers: Mutex::new(HashMap::new()),
            logger,
            registry,
        })
    }

    /// Registers a server under its name.
    pub fn attach_server(&self, server: Arc<Server>) {
        self.servers
            .lock()
            .insert(server.name().to_string(), server);
    }

    fn server(&self, name: &str) -> VirtResult<Arc<Server>> {
        self.servers
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| VirtError::new(ErrorCode::InvalidArg, format!("no server '{name}'")))
    }

    fn handle(&self, header: Header, payload: &[u8]) -> VirtResult<Vec<u8>> {
        let reply = match header.procedure {
            proc::SRV_LIST => {
                let mut names: Vec<String> = self.servers.lock().keys().cloned().collect();
                names.sort_unstable();
                names.to_xdr()
            }
            proc::THREADPOOL_INFO => {
                let args: adminproto::ServerArgs = decode(payload)?;
                let stats = self.server(&args.server)?.pool_stats();
                adminproto::WirePoolStats::from(stats).to_xdr()
            }
            proc::THREADPOOL_SET => {
                let args: adminproto::ServerParamsArgs = decode(payload)?;
                let server = self.server(&args.server)?;
                let params = &args.params.0;
                params.validate_fields(&[
                    adminproto::PARAM_WORKERS_MIN,
                    adminproto::PARAM_WORKERS_MAX,
                    adminproto::PARAM_WORKERS_PRIORITY,
                ])?;
                let current = server.pool_stats();
                let limits = PoolLimits {
                    min_workers: params
                        .get_uint(adminproto::PARAM_WORKERS_MIN)?
                        .unwrap_or(current.min_workers),
                    max_workers: params
                        .get_uint(adminproto::PARAM_WORKERS_MAX)?
                        .unwrap_or(current.max_workers),
                    priority_workers: params
                        .get_uint(adminproto::PARAM_WORKERS_PRIORITY)?
                        .unwrap_or(current.priority_workers),
                };
                server
                    .set_pool_limits(limits)
                    .map_err(|e| VirtError::new(ErrorCode::InvalidArg, e))?;
                self.logger.info(
                    "daemon.admin",
                    &format!(
                        "threadpool of '{}' set to min={} max={} prio={}",
                        args.server,
                        limits.min_workers,
                        limits.max_workers,
                        limits.priority_workers
                    ),
                );
                ().to_xdr()
            }
            proc::CLIENT_LIST => {
                let args: adminproto::ServerArgs = decode(payload)?;
                let clients = self.server(&args.server)?.clients();
                adminproto::WireClientList(clients.iter().map(snapshot_to_wire).collect()).to_xdr()
            }
            proc::CLIENT_INFO => {
                let args: adminproto::ClientArgs = decode(payload)?;
                let server = self.server(&args.server)?;
                let snapshot = server
                    .clients()
                    .into_iter()
                    .find(|c| c.id == args.client)
                    .ok_or_else(|| {
                        VirtError::new(ErrorCode::InvalidArg, format!("no client {}", args.client))
                    })?;
                snapshot_to_wire(&snapshot).to_xdr()
            }
            proc::CLIENT_DISCONNECT => {
                let args: adminproto::ClientArgs = decode(payload)?;
                let server = self.server(&args.server)?;
                if !server.disconnect_client(args.client) {
                    return Err(VirtError::new(
                        ErrorCode::InvalidArg,
                        format!("no client {}", args.client),
                    ));
                }
                self.logger.info(
                    "daemon.admin",
                    &format!(
                        "client {} forcibly disconnected from '{}'",
                        args.client, args.server
                    ),
                );
                ().to_xdr()
            }
            proc::CLIENT_LIMITS_INFO => {
                let args: adminproto::ServerArgs = decode(payload)?;
                let server = self.server(&args.server)?;
                adminproto::WireClientLimits {
                    max_clients: server.max_clients(),
                    current_clients: server.client_count() as u32,
                    refused: server.refused_count(),
                }
                .to_xdr()
            }
            proc::CLIENT_LIMITS_SET => {
                let args: adminproto::ServerParamsArgs = decode(payload)?;
                let server = self.server(&args.server)?;
                let params = &args.params.0;
                params.validate_fields(&[adminproto::PARAM_CLIENTS_MAX])?;
                if let Some(max) = params.get_uint(adminproto::PARAM_CLIENTS_MAX)? {
                    if max == 0 {
                        return Err(VirtError::new(
                            ErrorCode::InvalidArg,
                            "nclients_max must be > 0",
                        ));
                    }
                    server.set_max_clients(max);
                }
                ().to_xdr()
            }
            proc::LOG_INFO => {
                let settings = self.logger.settings();
                adminproto::WireLogInfo {
                    level: settings.level.as_number(),
                    filters: settings.filters_string(),
                    outputs: settings.outputs_string(),
                }
                .to_xdr()
            }
            proc::LOG_SET_LEVEL => {
                let level: u32 = decode(payload)?;
                self.logger.set_level(LogLevel::from_number(level)?);
                ().to_xdr()
            }
            proc::LOG_SET_FILTERS => {
                let filters: String = decode(payload)?;
                let parsed = LogSettings::parse_filters(&filters)?;
                let mut settings = (*self.logger.settings()).clone();
                settings.filters = parsed;
                self.logger.redefine(settings)?;
                ().to_xdr()
            }
            proc::LOG_SET_OUTPUTS => {
                let outputs: String = decode(payload)?;
                let parsed = LogSettings::parse_outputs(&outputs)?;
                let mut settings = (*self.logger.settings()).clone();
                settings.outputs = parsed;
                self.logger.redefine(settings)?;
                ().to_xdr()
            }
            proc::METRICS_LIST => {
                // Daemon metrics plus this process's client-side RPC
                // resilience counters (rpc.reconnect.*, rpc.retry.*).
                let mut names = self.registry.names();
                names.extend(virt_core::client_metrics().names());
                names.sort_unstable();
                names.dedup();
                names.to_xdr()
            }
            proc::METRICS_FETCH => {
                let args: adminproto::MetricsFetchArgs = decode(payload)?;
                let mut snaps = self.registry.snapshot(&args.prefix);
                snaps.extend(virt_core::client_metrics().snapshot(&args.prefix));
                adminproto::WireMetricList(
                    snaps
                        .into_iter()
                        .map(adminproto::WireMetric::from)
                        .collect(),
                )
                .to_xdr()
            }
            proc::TRACE_CONFIG => {
                let args: adminproto::TraceConfigArgs = decode(payload)?;
                let recorder = virt_core::metrics::recorder::FlightRecorder::global();
                if let Some(enabled) = args.enabled {
                    recorder.set_enabled(enabled);
                    self.logger.info(
                        "daemon.trace",
                        if enabled {
                            "request tracing enabled"
                        } else {
                            "request tracing disabled"
                        },
                    );
                }
                if let Some(ms) = args.slow_threshold_ms {
                    recorder.set_slow_threshold(std::time::Duration::from_millis(ms));
                }
                adminproto::WireTraceConfig {
                    enabled: recorder.is_enabled(),
                    slow_threshold_ms: recorder.slow_threshold().as_millis() as u64,
                    recorded: recorder.recorded(),
                    capacity: virt_core::metrics::recorder::RECORDER_CAPACITY as u64,
                }
                .to_xdr()
            }
            proc::TRACE_DUMP => {
                let args: adminproto::TraceDumpArgs = decode(payload)?;
                let recorder = virt_core::metrics::recorder::FlightRecorder::global();
                let events = recorder.drain();
                if args.clear {
                    recorder.clear();
                }
                adminproto::WireTraceEventList(
                    events
                        .iter()
                        .map(adminproto::WireTraceEvent::from)
                        .collect(),
                )
                .to_xdr()
            }
            other => {
                return Err(VirtError::new(
                    ErrorCode::RpcFailure,
                    format!("unknown admin procedure {other}"),
                ))
            }
        };
        Ok(reply)
    }
}

fn snapshot_to_wire(snapshot: &ClientSnapshot) -> adminproto::WireClient {
    adminproto::WireClient {
        id: snapshot.id,
        transport: snapshot.transport.clone(),
        peer: snapshot.peer.clone(),
        connected_secs: snapshot.connected_secs,
        session_secs: snapshot.session_secs,
        username: snapshot.username.clone(),
        readonly: snapshot.readonly,
    }
}

fn decode<T: virt_rpc::xdr::XdrDecode>(payload: &[u8]) -> VirtResult<T> {
    T::from_xdr(payload)
        .map_err(|e| VirtError::new(ErrorCode::RpcFailure, format!("bad arguments: {e}")))
}

impl ProgramDispatcher for AdminDispatcher {
    fn program(&self) -> u32 {
        ADMIN_PROGRAM
    }

    fn is_high_priority(&self, _procedure: u32) -> bool {
        // Every admin operation is under the daemon's full control.
        true
    }

    fn dispatch(&self, _client: &Arc<ClientHandle>, header: Header, payload: &[u8]) -> Packet {
        match self.handle(header, payload) {
            Ok(reply_payload) => Packet {
                header: header.reply_ok(),
                payload: reply_payload,
            },
            Err(err) => Packet::new(header.reply_error(), &err.to_rpc()),
        }
    }

    fn on_disconnect(&self, _client_id: u64) {}
}

/// A typed client for the admin protocol (the library behind
/// `vsh admin-*` commands).
#[derive(Debug, Clone)]
pub struct AdminClient {
    client: CallClient,
}

impl AdminClient {
    /// Wraps an established transport to a daemon's admin server.
    pub fn new(transport: impl Transport + 'static) -> Self {
        AdminClient {
            client: CallClient::new(transport),
        }
    }

    fn call<R: virt_rpc::xdr::XdrDecode>(
        &self,
        procedure: u32,
        args: &impl XdrEncode,
    ) -> VirtResult<R> {
        self.client
            .call::<R>(ADMIN_PROGRAM, procedure, args)
            .map_err(VirtError::from)
    }

    /// Names of the daemon's servers.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn list_servers(&self) -> VirtResult<Vec<String>> {
        self.call(proc::SRV_LIST, &())
    }

    /// Worker-pool statistics of a server.
    ///
    /// # Errors
    ///
    /// Unknown server; RPC failures.
    pub fn threadpool_info(&self, server: &str) -> VirtResult<PoolStats> {
        let wire: adminproto::WirePoolStats = self.call(
            proc::THREADPOOL_INFO,
            &adminproto::ServerArgs {
                server: server.to_string(),
            },
        )?;
        Ok(wire.into())
    }

    /// Adjusts worker-pool limits via typed parameters.
    ///
    /// # Errors
    ///
    /// Invalid parameters; unknown server.
    pub fn threadpool_set(
        &self,
        server: &str,
        params: Vec<virt_core::TypedParam>,
    ) -> VirtResult<()> {
        self.call(
            proc::THREADPOOL_SET,
            &adminproto::ServerParamsArgs {
                server: server.to_string(),
                params: TypedParamList(params),
            },
        )
    }

    /// Clients connected to a server.
    ///
    /// # Errors
    ///
    /// Unknown server.
    pub fn client_list(&self, server: &str) -> VirtResult<Vec<ClientSnapshot>> {
        let wire: adminproto::WireClientList = self.call(
            proc::CLIENT_LIST,
            &adminproto::ServerArgs {
                server: server.to_string(),
            },
        )?;
        Ok(wire
            .0
            .into_iter()
            .map(|c| ClientSnapshot {
                id: c.id,
                transport: c.transport,
                peer: c.peer,
                connected_secs: c.connected_secs,
                session_secs: c.session_secs,
                username: c.username,
                readonly: c.readonly,
            })
            .collect())
    }

    /// Identity details of one client.
    ///
    /// # Errors
    ///
    /// Unknown server or client.
    pub fn client_info(&self, server: &str, client: u64) -> VirtResult<ClientSnapshot> {
        let wire: adminproto::WireClient = self.call(
            proc::CLIENT_INFO,
            &adminproto::ClientArgs {
                server: server.to_string(),
                client,
            },
        )?;
        Ok(ClientSnapshot {
            id: wire.id,
            transport: wire.transport,
            peer: wire.peer,
            connected_secs: wire.connected_secs,
            session_secs: wire.session_secs,
            username: wire.username,
            readonly: wire.readonly,
        })
    }

    /// Forcefully closes a client's connection.
    ///
    /// # Errors
    ///
    /// Unknown server or client.
    pub fn client_disconnect(&self, server: &str, client: u64) -> VirtResult<()> {
        self.call(
            proc::CLIENT_DISCONNECT,
            &adminproto::ClientArgs {
                server: server.to_string(),
                client,
            },
        )
    }

    /// Client-limit statistics: `(max, current, refused)`.
    ///
    /// # Errors
    ///
    /// Unknown server.
    pub fn client_limits(&self, server: &str) -> VirtResult<(u32, u32, u64)> {
        let wire: adminproto::WireClientLimits = self.call(
            proc::CLIENT_LIMITS_INFO,
            &adminproto::ServerArgs {
                server: server.to_string(),
            },
        )?;
        Ok((wire.max_clients, wire.current_clients, wire.refused))
    }

    /// Sets the client limit.
    ///
    /// # Errors
    ///
    /// Invalid limit; unknown server.
    pub fn set_max_clients(&self, server: &str, max: u32) -> VirtResult<()> {
        self.call(
            proc::CLIENT_LIMITS_SET,
            &adminproto::ServerParamsArgs {
                server: server.to_string(),
                params: TypedParamList(vec![virt_core::TypedParam::uint(
                    adminproto::PARAM_CLIENTS_MAX,
                    max,
                )]),
            },
        )
    }

    /// Current logging settings: `(level, filters, outputs)` strings.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn log_info(&self) -> VirtResult<(LogLevel, String, String)> {
        let wire: adminproto::WireLogInfo = self.call(proc::LOG_INFO, &())?;
        Ok((
            LogLevel::from_number(wire.level)?,
            wire.filters,
            wire.outputs,
        ))
    }

    /// Sets the global logging level.
    ///
    /// # Errors
    ///
    /// Invalid level.
    pub fn log_set_level(&self, level: LogLevel) -> VirtResult<()> {
        self.call(proc::LOG_SET_LEVEL, &level.as_number())
    }

    /// Replaces the filter set (space-separated `level:module` entries).
    ///
    /// # Errors
    ///
    /// Malformed filters — nothing is applied partially.
    pub fn log_set_filters(&self, filters: &str) -> VirtResult<()> {
        self.call(proc::LOG_SET_FILTERS, &filters.to_string())
    }

    /// Replaces the output set (space-separated `level:kind[:data]`).
    ///
    /// # Errors
    ///
    /// Malformed outputs — nothing is applied partially.
    pub fn log_set_outputs(&self, outputs: &str) -> VirtResult<()> {
        self.call(proc::LOG_SET_OUTPUTS, &outputs.to_string())
    }

    /// Names of all registered metrics.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn metrics_list(&self) -> VirtResult<Vec<String>> {
        self.call(proc::METRICS_LIST, &())
    }

    /// Snapshot of the daemon's metrics; `prefix` filters by metric
    /// name, empty fetches everything.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn metrics(&self, prefix: &str) -> VirtResult<Vec<adminproto::WireMetric>> {
        let wire: adminproto::WireMetricList = self.call(
            proc::METRICS_FETCH,
            &adminproto::MetricsFetchArgs {
                prefix: prefix.to_string(),
            },
        )?;
        Ok(wire.0)
    }

    /// Reads or updates the daemon's flight-recorder configuration:
    /// `None` fields leave the current value in place, so passing both
    /// as `None` is a pure read. Returns the resulting configuration.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn trace_config(
        &self,
        enabled: Option<bool>,
        slow_threshold_ms: Option<u64>,
    ) -> VirtResult<adminproto::WireTraceConfig> {
        self.call(
            proc::TRACE_CONFIG,
            &adminproto::TraceConfigArgs {
                enabled,
                slow_threshold_ms,
            },
        )
    }

    /// Drains the daemon's flight recorder, optionally clearing it.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn trace_dump(&self, clear: bool) -> VirtResult<Vec<adminproto::WireTraceEvent>> {
        let wire: adminproto::WireTraceEventList =
            self.call(proc::TRACE_DUMP, &adminproto::TraceDumpArgs { clear })?;
        Ok(wire.0)
    }

    /// Closes the admin connection.
    pub fn close(&self) {
        self.client.close();
    }
}

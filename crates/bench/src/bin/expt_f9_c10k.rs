//! **F9 — Connection capacity: the event loop under a c10k-style ladder.**
//!
//! PR 7 replaced the daemon's thread-per-connection reader model with a
//! small fixed set of epoll event loops. This experiment measures what
//! that buys on the axis the old model could not scale: connection
//! count.
//!
//! 1. *Idle-connection ladder.* Raw TCP connections (no client-side
//!    reader threads, nothing sent) parked against one daemon at
//!    100 → 5000. At each rung: process thread count (must stay flat —
//!    the old core added one reader thread per connection), RSS growth
//!    per connection, and the accept-latency distribution for the rung's
//!    batch (p99 bounded — the accept path must not collapse as the
//!    loop's fd table grows).
//!
//! 2. *Hot-path interference at 1000 idle clients.* With 1000 idle
//!    connections parked, the F8 mixed workload (8 clients, ~10%
//!    writes) runs over a memory endpoint on the same daemon. Its p99
//!    is directly comparable to F8b-mixed at 8 clients: parked
//!    connections must not tax the dispatch hot path.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f9_c10k`

use std::net::TcpStream;
use std::time::{Duration, Instant};

use virt_bench::unique;
use virt_core::metrics::MetricValue;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virt_rpc::poll::raise_nofile_limit;
use virt_rpc::transport::TcpSocketListener;
use virt_rpc::PoolLimits;
use virtd::{Virtd, VirtdConfig};

const RUNGS: [usize; 5] = [100, 500, 1000, 2000, 5000];
const DOMAINS: usize = 64;
const MIXED_CLIENTS: usize = 8;
const MEASURE: Duration = Duration::from_millis(400);
const WARMUP: Duration = Duration::from_millis(50);

fn proc_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .and_then(|rest| {
            rest.trim_start_matches(':')
                .split_whitespace()
                .next()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| panic!("{field} not in /proc/self/status"))
}

fn registered_fds(daemon: &Virtd) -> u64 {
    let name = "server.virtd.event_loop.registered_fds";
    daemon
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Gauge(v) => v,
            other => panic!("{name}: {other:?}"),
        })
        .expect("event loop metrics registered")
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Part 1: park idle raw connections rung by rung.
fn ladder(daemon: &Virtd, addr: &str, csv: &mut String) -> Vec<TcpStream> {
    println!("\nF9a: idle-connection ladder (raw TCP, nothing sent)");
    println!(
        "{:>7} {:>8} {:>9} {:>13} {:>12} {:>12}",
        "conns", "threads", "rss MiB", "kiB/conn", "acc p99 us", "acc max us"
    );
    println!("{}", "-".repeat(66));

    let threads_base = proc_status("Threads");
    let rss_base_kb = proc_status("VmRSS");
    let mut socks: Vec<TcpStream> = Vec::with_capacity(*RUNGS.last().unwrap());

    for &rung in &RUNGS {
        let mut batch_lat = Vec::with_capacity(rung - socks.len());
        while socks.len() < rung {
            // Flow control: stay at most ~100 connects ahead of the
            // daemon's registration so the kernel accept queue (backlog
            // 128) never overflows — an overflow turns into 1 s SYN-ACK
            // retransmits that would measure the backlog, not the loop.
            while socks.len() as u64 >= registered_fds(daemon) + 100 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let t0 = Instant::now();
            let sock = TcpStream::connect(addr).expect("connect");
            batch_lat.push(t0.elapsed().as_micros() as u64);
            socks.push(sock);
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while registered_fds(daemon) < rung as u64 {
            assert!(
                Instant::now() < deadline,
                "only {} of {rung} connections registered",
                registered_fds(daemon)
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        batch_lat.sort_unstable();

        let threads = proc_status("Threads");
        let rss_kb = proc_status("VmRSS");
        let grown_kb = rss_kb.saturating_sub(rss_base_kb);
        let per_conn_kib = grown_kb as f64 / rung as f64;
        let p99 = percentile(&batch_lat, 0.99);
        let max = *batch_lat.last().unwrap();
        println!(
            "{:>7} {:>8} {:>9.1} {:>13.1} {:>12} {:>12}",
            rung,
            threads,
            rss_kb as f64 / 1024.0,
            per_conn_kib,
            p99,
            max
        );
        csv.push_str(&format!(
            "ladder,{rung},{threads},{rss_kb},{per_conn_kib:.2},{p99},{max}\n"
        ));
        assert!(
            threads <= threads_base + 4,
            "thread count grew with connection count: {threads_base} -> {threads}"
        );
    }
    socks
}

/// F8-style mixed workload (8 clients, ~10% writes) over a memory
/// endpoint on the same daemon — comparable to F8b-mixed at 8 clients.
fn mixed_under_load(daemon: &Virtd, endpoint: &str, parked: usize, csv: &mut String) {
    daemon.register_memory_endpoint(endpoint).expect("endpoint");
    let uri = format!("qemu+memory://{endpoint}/system");
    let setup = Connect::builder(&uri).open().expect("connect");
    for i in 0..DOMAINS {
        setup
            .define_domain(&DomainConfig::new(format!("vm-{i}"), 64, 1))
            .expect("define");
    }

    fn run_client(uri: &str, c: usize, deadline: Instant) -> Vec<u64> {
        let conn = Connect::builder(uri).open().expect("connect");
        let mut samples = Vec::with_capacity(1 << 16);
        let mut i = 0u64;
        while Instant::now() < deadline {
            let t = Instant::now();
            let name = format!("vm-{}", (c as u64 * 31 + i) % DOMAINS as u64);
            let domain = conn.domain_lookup_by_name(&name).expect("lookup");
            if i.is_multiple_of(10) {
                // ~10% writes: metadata touch takes the domain write lock.
                let _ = domain.set_autostart(i.is_multiple_of(20));
            }
            samples.push(t.elapsed().as_nanos() as u64);
            i += 1;
        }
        conn.close();
        samples
    }

    // Warm outside the measured window.
    run_client(&uri, 0, Instant::now() + WARMUP);

    let start = Instant::now();
    let deadline = start + MEASURE;
    let threads: Vec<_> = (0..MIXED_CLIENTS)
        .map(|c| {
            let uri = uri.clone();
            std::thread::spawn(move || run_client(&uri, c, deadline))
        })
        .collect();
    let mut all: Vec<u64> = Vec::new();
    for t in threads {
        all.extend(t.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    all.sort_unstable();

    let ops = all.len() as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&all, 0.50) as f64 / 1e3;
    let p99 = percentile(&all, 0.99) as f64 / 1e3;
    println!("\nF9b: mixed workload ({MIXED_CLIENTS} clients, ~10% writes) with {parked} idle connections parked");
    println!("  ops/s {ops:.0}   p50 {p50:.2} us   p99 {p99:.2} us");
    println!("  (compare F8b-mixed at {MIXED_CLIENTS} clients with 0 parked connections)");
    csv.push_str(&format!("mixed,{parked},{ops:.0},{p50:.2},{p99:.2}\n"));
}

fn main() {
    // 5000 server fds + 5000 client fds + headroom.
    let limit = raise_nofile_limit(32 * 1024);
    println!("F9: event-loop connection capacity (nofile limit {limit})");

    let endpoint = unique("f9");
    let daemon = Virtd::builder(&endpoint)
        .config(
            VirtdConfig::new()
                .max_clients(12_000)
                .pool_limits(PoolLimits {
                    min_workers: 16,
                    max_workers: 32,
                    priority_workers: 4,
                }),
        )
        .with_quiet_hosts()
        .build()
        .expect("daemon");
    let listener = TcpSocketListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().to_string();
    daemon.serve(Box::new(listener));

    let mut csv = String::from(
        "part,conns,threads_or_ops,rss_kb_or_p50,per_conn_kib_or_p99,accept_p99_us,accept_max_us\n",
    );

    let mut socks = ladder(&daemon, &addr, &mut csv);

    // Drop back to 1000 parked connections for the interference run.
    socks.truncate(1000);
    let deadline = Instant::now() + Duration::from_secs(20);
    while registered_fds(&daemon) > 1000 {
        assert!(Instant::now() < deadline, "hangups not drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    mixed_under_load(&daemon, &endpoint, socks.len(), &mut csv);

    drop(socks);
    let csv_path = "target/expt_f9_c10k.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!("shape check: flat thread count across the ladder; per-conn RSS a few kiB; accept p99 in the low ms; F9b p99 comparable to F8b-mixed.");
    daemon.shutdown();
}

//! **F11 — Guard engine: revive latency vs crash-storm size and
//! crash-loop containment.**
//!
//! PR 9 added the always-running HA supervisor: per-domain guard
//! policies evaluated in-daemon off the lifecycle event bus. This
//! experiment measures the two axes that subsystem is for:
//!
//! 1. *Revive ladder.* A storm-size sweep (up to 500 guarded domains)
//!    crashing every guarded guest at once. At each rung: per-domain
//!    revive latency p50/p99 (measured from the crash instant to the
//!    observed return to running), total convergence wall time, and the
//!    number of distinct first-rung backoff delays across the storm
//!    (the deterministic per-name jitter must spread restarts instead
//!    of releasing a thundering herd).
//!
//! 2. *Crash-loop containment.* A pack of guests on a host whose every
//!    start immediately crashes, each guarded with a bounded
//!    `keep-running` policy, while an *unrelated* healthy host on the
//!    same daemon serves a lookup probe. Every looper must climb its
//!    ladder to `gave_up` (no infinite restart loop), and the healthy
//!    tenant's p99 must stay flat — backoff waits live on the guard
//!    engine's timer thread, not on daemon worker-pool slots.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f11_guard`
//! Smoke: `... --bin expt_f11_guard -- --smoke` (small rung + loop pack,
//! asserting convergence and containment; used by ci.sh).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use hypersim::personality::{QemuLike, XenLike};
use hypersim::{FaultAction, FaultPlan, LatencyModel, OpKind, SimHost};
use virt_bench::unique;
use virt_core::guard::GuardPolicy;
use virt_core::metrics::MetricValue;
use virt_core::xmlfmt::DomainConfig;
use virt_core::{BackoffSchedule, Connect, DomainState};
use virtd::{Virtd, VirtdConfig};

/// Storm sizes for the revive ladder.
const RUNGS: [usize; 4] = [10, 50, 200, 500];
/// Crash-loopers in the containment pack.
const LOOPERS: usize = 20;
/// Short ladder so sweeps finish quickly while still exercising capped
/// exponential growth with jitter.
const FAST_BACKOFF: BackoffSchedule = BackoffSchedule {
    initial: Duration::from_millis(5),
    max: Duration::from_millis(40),
    multiplier: 2,
};

fn counter(daemon: &Virtd, name: &str) -> u64 {
    match daemon
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| m.value)
    {
        Some(MetricValue::Counter(v)) => v,
        _ => 0,
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Part 1: crash `storm` guarded domains at once; measure per-domain
/// revive latency and jitter spread. Returns the revive p99 in µs.
fn revive_rung(storm: usize, csv: &mut String) -> u64 {
    let endpoint = unique("f11");
    let qemu = SimHost::builder(format!("{endpoint}-qemu"))
        .cpus(64)
        .cpu_overcommit(16)
        .memory_mib(64 * 1024)
        .personality(QemuLike)
        .latency(LatencyModel::zero())
        .build();
    let daemon = Virtd::builder(&endpoint)
        .host(qemu)
        .config(VirtdConfig::new().guard_backoff(FAST_BACKOFF))
        .build()
        .expect("daemon");
    daemon
        .register_memory_endpoint(&endpoint)
        .expect("endpoint");
    let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .open()
        .expect("conn");

    let names: Vec<String> = (0..storm).map(|i| format!("vm-{i}")).collect();
    for name in &names {
        let domain = conn
            .define_domain(&DomainConfig::new(name, 64, 1))
            .expect("define");
        domain.start().expect("start");
        domain
            .guard_set(&GuardPolicy::KeepRunning { max_restarts: 5 })
            .expect("guard");
    }

    for name in &names {
        conn.domain_lookup_by_name(name)
            .expect("lookup")
            .crash()
            .expect("crash");
    }
    let crashed_at = Instant::now();

    // Poll every not-yet-revived domain; record the instant each one is
    // seen running again. Polling granularity (~a few ms per sweep)
    // bounds the measurement error, fine for a ladder whose rungs are
    // tens of milliseconds.
    let mut pending: Vec<&String> = names.iter().collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(storm);
    let deadline = crashed_at + Duration::from_secs(60);
    while !pending.is_empty() {
        assert!(
            Instant::now() < deadline,
            "storm of {storm} did not converge: {} still down",
            pending.len()
        );
        pending.retain(|name| {
            let running = conn
                .domain_lookup_by_name(name)
                .map(|d| d.state().unwrap_or(DomainState::Crashed) == DomainState::Running)
                .unwrap_or(false);
            if running {
                latencies.push(crashed_at.elapsed().as_micros() as u64);
            }
            !running
        });
        std::thread::sleep(Duration::from_millis(1));
    }
    let converged = crashed_at.elapsed();

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.5);
    let p99 = percentile(&latencies, 0.99);
    let revived = counter(&daemon, "guard.revived");
    let distinct: HashSet<Duration> = names
        .iter()
        .map(|name| FAST_BACKOFF.delay(1, BackoffSchedule::seed_for(name)))
        .collect();

    println!(
        "{:>6} {:>10.0} {:>10} {:>10} {:>9} {:>8}",
        storm,
        converged.as_secs_f64() * 1_000.0,
        p50,
        p99,
        revived,
        distinct.len()
    );
    csv.push_str(&format!(
        "revive,{storm},{:.0},{p50},{p99},{revived},{}\n",
        converged.as_secs_f64() * 1_000.0,
        distinct.len()
    ));

    assert!(revived >= storm as u64, "guard.revived={revived} < {storm}");
    assert_eq!(counter(&daemon, "guard.gave_up"), 0);
    assert!(
        distinct.len() >= storm / 2,
        "jitter spread too narrow: {} distinct delays over {storm} names",
        distinct.len()
    );

    conn.close();
    daemon.shutdown();
    p99
}

/// Part 2: `loopers` guests that crash on every start, guarded with a
/// bounded ladder, plus a healthy-tenant probe. Returns `(gave_up,
/// base_p99_us, loop_p99_us)`.
fn containment(loopers: usize, csv: &mut String) -> (u64, u64, u64) {
    let endpoint = unique("f11-loop");
    let faulty = SimHost::builder(format!("{endpoint}-qemu"))
        .personality(QemuLike)
        .latency(LatencyModel::zero())
        .faults(FaultPlan::new().always(OpKind::Start, FaultAction::CrashAfter))
        .build();
    let healthy = SimHost::builder(format!("{endpoint}-xen"))
        .personality(XenLike)
        .latency(LatencyModel::zero())
        .build();
    let daemon = Virtd::builder(&endpoint)
        .host(faulty)
        .host(healthy)
        .config(VirtdConfig::new().guard_backoff(FAST_BACKOFF))
        .build()
        .expect("daemon");
    daemon
        .register_memory_endpoint(&endpoint)
        .expect("endpoint");

    let xen = Connect::builder(format!("xen+memory://{endpoint}/system"))
        .open()
        .expect("xen conn");
    for i in 0..32 {
        xen.define_domain(&DomainConfig::new(format!("bystander-{i}"), 64, 1))
            .expect("define");
    }
    let probe = |deadline: Instant| -> Vec<u64> {
        let mut samples = Vec::with_capacity(1 << 12);
        let mut i = 0u64;
        while Instant::now() < deadline {
            let t = Instant::now();
            xen.domain_lookup_by_name(&format!("bystander-{}", i % 32))
                .expect("lookup");
            samples.push(t.elapsed().as_micros() as u64);
            i += 1;
        }
        samples
    };
    let mut baseline = probe(Instant::now() + Duration::from_millis(200));
    baseline.sort_unstable();
    let base_p99 = percentile(&baseline, 0.99);

    // Release the pack: every start "succeeds" and immediately crashes,
    // so each guard climbs its full ladder and gives up at the cap.
    let qemu = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .open()
        .expect("qemu conn");
    for i in 0..loopers {
        let looper = qemu
            .define_domain(&DomainConfig::new(format!("looper-{i}"), 64, 1))
            .expect("define");
        looper
            .guard_set(&GuardPolicy::KeepRunning { max_restarts: 5 })
            .expect("guard");
        looper.start().expect("start");
    }

    // Probe the healthy tenant while the loops climb.
    let started = Instant::now();
    let mut loop_samples = Vec::new();
    let deadline = started + Duration::from_secs(60);
    while counter(&daemon, "guard.gave_up") < loopers as u64 {
        assert!(
            Instant::now() < deadline,
            "crash-loopers never gave up: {}/{loopers}",
            counter(&daemon, "guard.gave_up")
        );
        loop_samples.extend(probe(Instant::now() + Duration::from_millis(20)));
    }
    let contained = started.elapsed();
    loop_samples.sort_unstable();
    let loop_p99 = percentile(&loop_samples, 0.99);
    let gave_up = counter(&daemon, "guard.gave_up");

    println!("\nF11b: crash-loop containment ({loopers} loopers, max_restarts 5, 5..40 ms ladder)");
    println!(
        "  all gave up in {:.2} s   guard.gave_up {gave_up}   guard.revived {} (must be 0)",
        contained.as_secs_f64(),
        counter(&daemon, "guard.revived")
    );
    println!(
        "  healthy tenant p99: {base_p99} us before, {loop_p99} us during ({} samples)",
        loop_samples.len()
    );
    csv.push_str(&format!(
        "containment,{loopers},{gave_up},{:.0},{base_p99},{loop_p99},\n",
        contained.as_secs_f64() * 1_000.0
    ));

    assert_eq!(gave_up, loopers as u64, "every looper must hit the cap");
    assert_eq!(counter(&daemon, "guard.revived"), 0);

    qemu.close();
    xen.close();
    daemon.shutdown();
    (gave_up, base_p99, loop_p99)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut csv = String::from("part,a,b,c,d,e,f\n");

    println!("F11: guard revive ladder (keep-running, 5..40 ms backoff, crash storms)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "storm", "total ms", "p50 us", "p99 us", "revived", "spread"
    );
    println!("{}", "-".repeat(60));

    let mut last_p99 = 0;
    if smoke {
        last_p99 = revive_rung(25, &mut csv);
    } else {
        for storm in RUNGS {
            last_p99 = revive_rung(storm, &mut csv);
        }
    }

    let (_, base_p99, loop_p99) = containment(if smoke { 8 } else { LOOPERS }, &mut csv);

    if smoke {
        assert!(
            last_p99 < 5_000_000,
            "smoke: revive p99 {last_p99} us over 5 s budget"
        );
        assert!(
            loop_p99 <= base_p99.saturating_mul(10).max(2_000),
            "smoke: healthy tenant p99 not flat: {base_p99} -> {loop_p99} us"
        );
        println!("\nF11 smoke OK (revive p99 {last_p99} us, healthy-tenant p99 {loop_p99} us)");
        return;
    }

    let csv_path = "target/expt_f11_guard.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!("shape check: revive p99 grows sub-linearly with storm size (jitter spreads the herd); crash-loopers all give up at the cap with zero revives and a flat healthy-tenant p99.");
}

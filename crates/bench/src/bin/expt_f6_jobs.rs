//! **F6 — Domain jobs and bulk stats.**
//!
//! Two measurements of the asynchronous job engine:
//!
//! 1. *Abort latency vs guest size.* A migration moves its memory in
//!    bounded slices, checking the abort flag between slices. The wall
//!    time from `abort_job()` to the job reporting `aborted` should
//!    therefore be governed by the slice size, not the guest size — an
//!    8 GiB guest cancels as fast as a 1 GiB one. The sweep shows
//!    whether that bound holds.
//!
//! 2. *Bulk stats vs per-domain polling.* A monitoring pass over N
//!    domains is either one `CONNECT_GET_ALL_DOMAIN_STATS` round trip
//!    or N `DOMAIN_GET_JOB_STATS` calls. Both are cheap server-side, so
//!    the gap is pure protocol overhead — the reason libvirt grew
//!    `virConnectGetAllDomainStats`.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f6_jobs`

use std::time::{Duration, Instant};

use hypersim::latency::OpCost;
use hypersim::personality::QemuLike;
use hypersim::{LatencyModel, OpKind, SimClock, SimHost};
use virt_bench::{quiet_daemon, unique};
use virt_core::driver::MigrationOptions;
use virt_core::xmlfmt::DomainConfig;
use virt_core::{Connect, JobState};
use virtd::Virtd;

const TRIALS: u32 = 5;

/// Source host whose only slow operation is the migration transfer:
/// 0.1 ms virtual per MiB, a quarter of it spent as wall time, so a
/// 256 MiB slice occupies its worker for ~6.4 ms of real time.
fn slow_migration_host(name: &str, clock: SimClock) -> SimHost {
    SimHost::builder(name)
        .cpus(64)
        .memory_mib(256 * 1024)
        .personality(QemuLike)
        .clock(clock)
        .latency(LatencyModel::zero().set(OpKind::MigratePage, OpCost::scaled(0, 100_000)))
        .wall_time_scale(0.25)
        .build()
}

/// Mean wall-clock latency (ms) from requesting an abort of an
/// in-flight migration of a `memory_mib` guest to the job reporting
/// `aborted`.
fn abort_latency_ms(memory_mib: u64) -> f64 {
    let mut total_ms = 0.0;
    for _ in 0..TRIALS {
        let clock = SimClock::new();
        let a = unique("f6-src");
        let b = unique("f6-dst");
        let src_d = Virtd::builder(&a)
            .clock(clock.clone())
            .host(slow_migration_host(&format!("{a}-qemu"), clock.clone()))
            .build()
            .unwrap();
        src_d.register_memory_endpoint(&a).unwrap();
        let dst_d = Virtd::builder(&b)
            .clock(clock)
            .with_quiet_hosts()
            .build()
            .unwrap();
        dst_d.register_memory_endpoint(&b).unwrap();
        let src = Connect::builder(format!("qemu+memory://{a}/system"))
            .open()
            .unwrap();
        let dst = Connect::builder(format!("qemu+memory://{b}/system"))
            .open()
            .unwrap();

        let domain = src
            .define_domain(&DomainConfig::new("guest", memory_mib, 2))
            .unwrap();
        domain.start().unwrap();
        let handle = domain
            .migrate_start(&dst, &MigrationOptions::default())
            .unwrap();
        while {
            let stats = handle.stats().unwrap();
            !(stats.state == JobState::Running && stats.data_processed_mib > 0)
        } {
            std::thread::sleep(Duration::from_micros(500));
        }

        let started = Instant::now();
        handle.abort().unwrap();
        while domain.job_stats().unwrap().state != JobState::Aborted {
            std::thread::sleep(Duration::from_micros(200));
        }
        total_ms += started.elapsed().as_secs_f64() * 1e3;

        let _ = handle.wait();
        src.close();
        dst.close();
        src_d.shutdown();
        dst_d.shutdown();
    }
    total_ms / f64::from(TRIALS)
}

struct SweepPoint {
    bulk_ms: f64,
    loop_ms: f64,
}

/// Wall time of one monitoring pass over `n` domains: a single bulk
/// stats call vs one job-stats call per (pre-resolved) domain.
fn stats_sweep(n: usize) -> SweepPoint {
    let (daemon, uri) = quiet_daemon();
    let conn = Connect::builder(&uri).open().unwrap();
    // Defined (not started) guests: the sweep exceeds the quiet hosts'
    // vCPU overcommit budget, and stats work the same either way.
    let domains: Vec<_> = (0..n)
        .map(|i| {
            conn.define_domain(&DomainConfig::new(format!("vm-{i}"), 64, 1))
                .unwrap()
        })
        .collect();

    let mut bulk_ms = 0.0;
    let mut loop_ms = 0.0;
    for _ in 0..TRIALS {
        let started = Instant::now();
        let records = conn.get_all_domain_stats().unwrap();
        assert_eq!(records.len(), n);
        bulk_ms += started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        for domain in &domains {
            let _ = domain.job_stats().unwrap();
        }
        loop_ms += started.elapsed().as_secs_f64() * 1e3;
    }

    conn.close();
    daemon.shutdown();
    SweepPoint {
        bulk_ms: bulk_ms / f64::from(TRIALS),
        loop_ms: loop_ms / f64::from(TRIALS),
    }
}

fn main() {
    let mut csv = String::from("part,param,abort_ms,bulk_ms,loop_ms\n");

    println!("F6a: abort latency vs guest size ({TRIALS} trials per point, 256 MiB slices)");
    println!("{:<14} {:>16}", "guest (MiB)", "abort->aborted (ms)");
    println!("{}", "-".repeat(32));
    for memory_mib in [1024u64, 2048, 4096, 8192] {
        let ms = abort_latency_ms(memory_mib);
        println!("{:<14} {:>16.2}", memory_mib, ms);
        csv.push_str(&format!("abort,{memory_mib},{ms:.3},,\n"));
    }

    println!("\nF6b: one monitoring pass over n domains, bulk vs per-domain ({TRIALS} trials)");
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "domains", "bulk (ms)", "per-dom (ms)", "speedup"
    );
    println!("{}", "-".repeat(50));
    for n in [10usize, 50, 100, 200, 400] {
        let point = stats_sweep(n);
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>9.1}x",
            n,
            point.bulk_ms,
            point.loop_ms,
            point.loop_ms / point.bulk_ms
        );
        csv.push_str(&format!(
            "sweep,{n},,{:.3},{:.3}\n",
            point.bulk_ms, point.loop_ms
        ));
    }

    let csv_path = "target/expt_f6_jobs.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
}

//! **F3 — Concurrent-client throughput vs worker-pool size.**
//!
//! C concurrent clients issue management requests against one daemon
//! while `maxWorkers` sweeps {1, 5, 20, 40}. Expected shape: throughput
//! rises with workers until client concurrency (or contention on the
//! single hypervisor) saturates it; beyond that, more workers buy
//! nothing.
//!
//! A second section demonstrates the **priority-worker design point**:
//! with every ordinary worker wedged on a hung hypervisor call, ordinary
//! jobs queue indefinitely while priority-tagged control queries still
//! complete in microseconds — the reason the pool dedicates workers to
//! operations guaranteed to finish.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f3_workerpool`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hypersim::personality::QemuLike;
use hypersim::{FaultAction, FaultPlan, LatencyModel, OpKind, SimHost};
use virt_bench::unique;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virt_rpc::PoolLimits;
use virtd::{AdminClient, Virtd, VirtdConfig};

const RUN_FOR: Duration = Duration::from_millis(500);

fn throughput(uri: &str, clients: usize) -> f64 {
    let stop = Arc::new(AtomicU64::new(0));
    let ops = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..clients)
        .map(|i| {
            let uri = uri.to_string();
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let conn = Connect::builder(&uri).open().expect("connect");
                let name = format!("tp-{i}");
                conn.define_domain(&DomainConfig::new(&name, 16, 1))
                    .expect("define");
                let domain = conn.domain_lookup_by_name(&name).expect("lookup");
                while stop.load(Ordering::Relaxed) == 0 {
                    domain.start().expect("start");
                    domain.destroy().expect("destroy");
                    ops.fetch_add(2, Ordering::Relaxed);
                }
                domain.undefine().expect("undefine");
                conn.close();
            })
        })
        .collect();
    std::thread::sleep(RUN_FOR);
    stop.store(1, Ordering::Relaxed);
    for t in threads {
        t.join().expect("client thread");
    }
    ops.load(Ordering::Relaxed) as f64 / RUN_FOR.as_secs_f64()
}

fn main() {
    let client_counts = [1usize, 4, 16, 32];
    let worker_caps = [1u32, 5, 20, 40];

    println!("F3: throughput (lifecycle ops/s) vs maxWorkers × concurrent clients");
    print!("{:>12}", "maxWorkers");
    for c in client_counts {
        print!("{:>14}", format!("{c} clients"));
    }
    println!();
    println!("{}", "-".repeat(12 + 14 * client_counts.len()));

    let mut csv = String::from("max_workers,clients,ops_per_s,mean_wait_us\n");
    // Daemon-side pool wait-time means per cell, printed as a second
    // table next to the client-side throughput; the hottest cell's full
    // histogram follows.
    let mut wait_means: Vec<Vec<Option<f64>>> = Vec::new();
    let mut last_histogram: Option<virtd::adminproto::WireMetric> = None;
    for &workers in &worker_caps {
        let mut wait_row = Vec::new();
        print!("{:>12}", workers);
        for &clients in &client_counts {
            let endpoint = unique("f3");
            // Realistic qemu latencies scaled to wall time (1e-3: a 920 ms
            // boot occupies a worker for ~0.9 ms), so hypervisor work
            // genuinely ties up daemon workers.
            let host = SimHost::builder("f3-qemu")
                .cpus(256)
                .cpu_overcommit(16)
                .memory_mib(1024 * 1024)
                .personality(QemuLike)
                .wall_time_scale(1e-3)
                .build();
            let daemon = Virtd::builder(&endpoint)
                .config(VirtdConfig::new().max_clients(256).pool_limits(PoolLimits {
                    min_workers: workers.min(2),
                    max_workers: workers,
                    priority_workers: 2,
                }))
                .host(host)
                .build()
                .unwrap();
            daemon.register_memory_endpoint(&endpoint).unwrap();
            let uri = format!("qemu+memory://{endpoint}/system");
            let ops_per_s = throughput(&uri, clients);
            print!("{:>14.0}", ops_per_s);

            // Read back this cell's daemon-side wait-time histogram: the
            // queue delay every job saw before a worker picked it up.
            let admin = AdminClient::new(daemon.admin_memory_connector().connect().unwrap());
            let wait = admin
                .metrics("pool.virtd.wait_us")
                .ok()
                .and_then(|m| m.into_iter().next());
            let mean_us = wait.as_ref().and_then(|w| {
                (w.hist_count > 0).then(|| w.hist_sum_ns as f64 / 1_000.0 / w.hist_count as f64)
            });
            admin.close();
            if let Some(w) = wait {
                last_histogram = Some(w);
            }
            wait_row.push(mean_us);

            csv.push_str(&format!(
                "{workers},{clients},{ops_per_s:.0},{}\n",
                mean_us.map_or_else(|| "-".to_string(), |m| format!("{m:.1}"))
            ));
            daemon.shutdown();
        }
        wait_means.push(wait_row);
        println!();
    }

    println!("\nF3 (daemon side): mean pool wait per job (us), from pool.virtd.wait_us");
    print!("{:>12}", "maxWorkers");
    for c in client_counts {
        print!("{:>14}", format!("{c} clients"));
    }
    println!();
    println!("{}", "-".repeat(12 + 14 * client_counts.len()));
    for (row, &workers) in wait_means.iter().zip(&worker_caps) {
        print!("{:>12}", workers);
        for mean in row {
            match mean {
                Some(m) => print!("{:>14.1}", m),
                None => print!("{:>14}", "-"),
            }
        }
        println!();
    }

    if let Some(wait) = &last_histogram {
        println!(
            "\n  wait-time histogram of the last cell ({} samples, us buckets):",
            wait.hist_count
        );
        for (i, count) in wait.hist_buckets.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            let upper = virt_core::metrics::bucket_upper_bound_us(i)
                .map_or_else(|| "+Inf".to_string(), |u| u.to_string());
            println!("    le {upper:>10} us  {count}");
        }
    }

    // ---- F3b: priority workers keep control queries alive ---------------
    println!("\nF3b: single ordinary worker wedged on a hung start");
    println!("(hang: 400 s simulated, wall-scaled 1e-3 → the worker is genuinely busy ~400 ms)");

    let endpoint = unique("f3b");
    let host = SimHost::builder("f3b-qemu")
        .personality(QemuLike)
        .latency(LatencyModel::zero())
        .wall_time_scale(1e-3)
        .faults(FaultPlan::new().inject(
            OpKind::Start,
            1,
            FaultAction::Hang(Duration::from_secs(400)),
        ))
        .build();
    let daemon = Virtd::builder(&endpoint)
        .host(host)
        .config(VirtdConfig::new().pool_limits(PoolLimits {
            min_workers: 1,
            max_workers: 1,
            priority_workers: 2,
        }))
        .build()
        .unwrap();
    daemon.register_memory_endpoint(&endpoint).unwrap();
    let uri = format!("qemu+memory://{endpoint}/system");
    let admin = AdminClient::new(daemon.admin_memory_connector().connect().unwrap());

    let conn = Connect::builder(&uri).open().unwrap();
    conn.define_domain(&DomainConfig::new("wedge", 16, 1))
        .unwrap();
    conn.define_domain(&DomainConfig::new("queued", 16, 1))
        .unwrap();

    // Wedge the only ordinary worker. A hang of simulated time costs no
    // wall time, so make the worker *actually* busy by stacking many
    // low-priority jobs behind one slow-but-finite job: issue the hung
    // start from a second client and immediately queue another start.
    let wedger = {
        let uri = uri.clone();
        std::thread::spawn(move || {
            let c = Connect::builder(&uri).open().unwrap();
            let _ = c.domain_lookup_by_name("wedge").unwrap().start();
            c.close();
        })
    };
    // Give the wedger's start a moment to occupy the worker, then queue a
    // second ordinary job behind it.
    std::thread::sleep(Duration::from_millis(50));
    let queued_start = {
        let uri = uri.clone();
        std::thread::spawn(move || {
            let c = Connect::builder(&uri).open().unwrap();
            let t = Instant::now();
            let _ = c.domain_lookup_by_name("queued").unwrap().start();
            let elapsed = t.elapsed();
            c.close();
            elapsed
        })
    };
    std::thread::sleep(Duration::from_millis(50));

    // Priority path: control queries complete immediately even now.
    let t = Instant::now();
    let names = conn.list_domain_names().unwrap();
    let query_latency = t.elapsed();
    let stats = admin.threadpool_info("virtd").unwrap();
    println!(
        "  while wedged: high-priority list of {} domains completed in {:.1} us",
        names.len(),
        query_latency.as_secs_f64() * 1e6
    );
    println!(
        "  pool state:   {} ordinary workers ({} free), {} priority workers, queue depth {}",
        stats.current_workers, stats.free_workers, stats.priority_workers, stats.job_queue_depth
    );

    let queued_latency = queued_start.join().unwrap();
    wedger.join().unwrap();
    println!(
        "  low-priority start queued behind the wedge took {:.1} ms wall time",
        queued_latency.as_secs_f64() * 1e3
    );
    println!("  → priority workers keep the control plane responsive; ordinary jobs wait.");

    admin.close();
    conn.close();
    daemon.shutdown();

    let csv_path = "target/expt_f3_workerpool.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
}

//! **T3 — Stateless (ESX-style) vs stateful (daemon-tunneled) paths.**
//!
//! The same operation mix is timed in simulated hypervisor time against:
//!
//! - an ESX-style host through the **stateless client-side driver** —
//!   no daemon, but every call pays the hypervisor's own remote-API RTT;
//! - a QEMU-style host through **virtd** — an extra management hop, but
//!   the hypervisor's native control interface is cheap.
//!
//! Expected shape: queries are far cheaper against qemu+daemon (RPC cost
//! ≪ SOAP-style RTT); heavyweight ops converge since hypervisor work
//! dominates. This is the architectural trade the paper's driver split
//! encodes.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_t3_stateless`

use std::time::Duration;

use hypersim::personality::EsxLike;
use hypersim::{SimClock, SimHost};
use virt_bench::{host_with, unique};
use virt_core::xmlfmt::DomainConfig;
use virt_core::{testbed, Connect};
use virtd::Virtd;

struct OpRow {
    name: &'static str,
    esx: Duration,
    qemu: Duration,
}

fn run_mix(conn: &Connect, clock: &SimClock) -> Vec<(&'static str, Duration)> {
    let mut rows = Vec::new();
    let mut timed = |name: &'static str, f: &mut dyn FnMut()| {
        let start = clock.now();
        f();
        rows.push((name, clock.now().duration_since(start)));
    };

    let config = DomainConfig::new("mix", 1024, 2);
    timed("define", &mut || {
        conn.define_domain(&config).unwrap();
    });
    let domain = conn.domain_lookup_by_name("mix").unwrap();
    timed("start", &mut || domain.start().unwrap());
    timed("query x10", &mut || {
        for _ in 0..10 {
            domain.info().unwrap();
        }
    });
    timed("list x10", &mut || {
        for _ in 0..10 {
            conn.list_domain_names().unwrap();
        }
    });
    timed("suspend+resume", &mut || {
        domain.suspend().unwrap();
        domain.resume().unwrap();
    });
    timed("save+restore", &mut || {
        domain.managed_save().unwrap();
        domain.restore().unwrap();
    });
    timed("destroy", &mut || domain.destroy().unwrap());
    timed("undefine", &mut || domain.undefine().unwrap());
    rows
}

fn main() {
    // ESX path: direct stateless driver, realistic ESX latency model.
    let esx_clock = SimClock::new();
    let esx_name = unique("t3-esx");
    let esx_host = SimHost::builder(&esx_name)
        .cpus(64)
        .memory_mib(256 * 1024)
        .personality(EsxLike)
        .clock(esx_clock.clone())
        .build();
    testbed::register_host(&esx_name, esx_host);
    let esx_conn = Connect::builder(format!("esx://{esx_name}/"))
        .open()
        .unwrap();
    let esx_rows = run_mix(&esx_conn, &esx_clock);
    esx_conn.close();
    testbed::unregister_host(&esx_name);

    // QEMU path: realistic qemu host behind a daemon.
    let qemu_clock = SimClock::new();
    let endpoint = unique("t3-qemu");
    let daemon = Virtd::builder(&endpoint)
        .clock(qemu_clock.clone())
        .host(host_with(
            hypersim::personality::QemuLike,
            "t3-qemu-host",
            &qemu_clock,
        ))
        .build()
        .unwrap();
    daemon.register_memory_endpoint(&endpoint).unwrap();
    let qemu_conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .open()
        .unwrap();
    let qemu_rows = run_mix(&qemu_conn, &qemu_clock);
    qemu_conn.close();
    daemon.shutdown();

    let rows: Vec<OpRow> = esx_rows
        .into_iter()
        .zip(qemu_rows)
        .map(|((name, esx), (_, qemu))| OpRow { name, esx, qemu })
        .collect();

    println!("T3: simulated hypervisor time per operation (ms)");
    println!(
        "{:<16} {:>16} {:>20} {:>10}",
        "operation", "esx (direct)", "qemu (via daemon)", "ratio"
    );
    println!("{}", "-".repeat(66));
    let mut csv = String::from("operation,esx_ms,qemu_ms\n");
    for row in &rows {
        let esx_ms = row.esx.as_secs_f64() * 1e3;
        let qemu_ms = row.qemu.as_secs_f64() * 1e3;
        println!(
            "{:<16} {:>16.2} {:>20.2} {:>9.1}x",
            row.name,
            esx_ms,
            qemu_ms,
            if qemu_ms > 0.0 {
                esx_ms / qemu_ms
            } else {
                f64::INFINITY
            }
        );
        csv.push_str(&format!("{},{esx_ms:.3},{qemu_ms:.3}\n", row.name));
    }
    let csv_path = "target/expt_t3_stateless.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!("shape check: query/list dominated by the ESX remote-API RTT (big ratio);");
    println!("heavyweight ops (start/save) converge toward 1x as hypervisor work dominates.");
}

//! **F8 — Concurrency scaling: clients × domains.**
//!
//! Three measurements of the management layer's hot paths under
//! concurrent load:
//!
//! 1. *Read-proc scaling (direct driver).* N threads share one embedded
//!    connection and hammer read-only procedures (name lookups) over M
//!    domains on a zero-latency host. With per-domain locking behind a
//!    read-mostly index, aggregate throughput should scale with thread
//!    count; a global host mutex plateaus at ~1x.
//!
//! 2. *Read-proc and mixed scaling (remote path).* The same sweep over
//!    the full RPC stack — N `Connect` clients, each a framed transport
//!    into the daemon's worker pool. The mixed workload adds ~10%
//!    mutating calls, which take per-domain write locks.
//!
//! 3. *Migration interference.* While a migration job streams memory
//!    slices on one domain (wall-time-scaled so the transfer genuinely
//!    occupies a worker), reader threads measure p99 lookup latency on
//!    *other* domains. Per-domain locking should keep that p99 within
//!    2x of the unloaded baseline.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f8_concurrency`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hypersim::latency::OpCost;
use hypersim::personality::QemuLike;
use hypersim::{DomainSpec, LatencyModel, OpKind, SimClock, SimHost};
use virt_bench::unique;
use virt_core::driver::{HypervisorConnection, MigrationOptions};
use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::xmlfmt::DomainConfig;
use virt_core::{Connect, JobState};
use virt_rpc::PoolLimits;
use virtd::{Virtd, VirtdConfig};

const CLIENTS: [usize; 5] = [1, 2, 4, 8, 16];
const DOMAINS: usize = 64;
const MEASURE: Duration = Duration::from_millis(400);
const WARMUP: Duration = Duration::from_millis(50);

/// Per-thread measurement: runs `op` in a closed loop until the shared
/// deadline, recording each call's wall latency in nanoseconds.
fn hammer(deadline: Instant, mut op: impl FnMut(u64)) -> Vec<u64> {
    let mut samples = Vec::with_capacity(1 << 18);
    let mut i = 0u64;
    while Instant::now() < deadline {
        let t = Instant::now();
        op(i);
        samples.push(t.elapsed().as_nanos() as u64);
        i += 1;
    }
    samples
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct SweepPoint {
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Spawns `clients` threads, each running `make_op`'s closure against the
/// shared deadline, and merges their samples.
fn sweep<F, G>(clients: usize, make_op: F) -> SweepPoint
where
    F: Fn(usize) -> G,
    G: FnMut(u64) + Send + 'static,
{
    // Warm up caches and lazy state outside the measured window.
    let mut warm = make_op(0);
    let warm_deadline = Instant::now() + WARMUP;
    while Instant::now() < warm_deadline {
        warm(0);
    }
    drop(warm);

    let start = Instant::now();
    let deadline = start + MEASURE;
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let op = make_op(c);
            std::thread::spawn(move || hammer(deadline, op))
        })
        .collect();
    let mut all: Vec<u64> = Vec::new();
    for t in threads {
        all.extend(t.join().expect("hammer thread"));
    }
    let elapsed = start.elapsed();
    all.sort_unstable();
    SweepPoint {
        ops_per_sec: all.len() as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&all, 0.50) as f64 / 1e3,
        p99_us: percentile(&all, 0.99) as f64 / 1e3,
    }
}

fn print_header(title: &str) {
    println!("\n{title}");
    println!(
        "{:>8} {:>12} {:>9} {:>10} {:>10}",
        "clients", "ops/s", "speedup", "p50 (us)", "p99 (us)"
    );
    println!("{}", "-".repeat(54));
}

fn print_point(clients: usize, point: &SweepPoint, base: f64) {
    println!(
        "{:>8} {:>12.0} {:>8.2}x {:>10.2} {:>10.2}",
        clients,
        point.ops_per_sec,
        point.ops_per_sec / base,
        point.p50_us,
        point.p99_us
    );
}

/// Part 1: direct-driver read scaling — isolates the host lock
/// architecture with no RPC or worker pool in the way.
fn direct_sweep(csv: &mut String) {
    let host = SimHost::builder("f8-direct")
        .cpus(64)
        .memory_mib(256 * 1024)
        .latency(LatencyModel::zero())
        .build();
    for i in 0..DOMAINS {
        host.define_domain(DomainSpec::new(format!("vm-{i}")).memory_mib(64).vcpus(1))
            .expect("define");
    }
    let conn = EmbeddedConnection::new(host, "qemu:///f8");

    print_header(&format!(
        "F8a: read-heavy scaling, direct driver ({DOMAINS} domains, name lookups)"
    ));
    let mut base = 0.0;
    for &clients in &CLIENTS {
        let point = sweep(clients, |c| {
            let conn = Arc::clone(&conn);
            move |i| {
                let name = format!("vm-{}", (c as u64 * 31 + i) % DOMAINS as u64);
                conn.lookup_domain_by_name(&name).expect("lookup");
            }
        });
        if clients == 1 {
            base = point.ops_per_sec;
        }
        print_point(clients, &point, base);
        csv.push_str(&format!(
            "direct_read,{clients},{:.0},{:.2},{:.2}\n",
            point.ops_per_sec, point.p50_us, point.p99_us
        ));
    }
}

/// Parts 2a/2b: full-stack scaling through the remote protocol.
fn rpc_sweep(mixed: bool, csv: &mut String) {
    let endpoint = unique("f8-rpc");
    let daemon = Virtd::builder(&endpoint)
        .config(VirtdConfig::new().max_clients(64).pool_limits(PoolLimits {
            min_workers: 16,
            max_workers: 32,
            priority_workers: 4,
        }))
        .with_quiet_hosts()
        .build()
        .expect("daemon");
    daemon
        .register_memory_endpoint(&endpoint)
        .expect("endpoint");
    let uri = format!("qemu+memory://{endpoint}/system");

    let setup = Connect::builder(&uri).open().expect("connect");
    for i in 0..DOMAINS {
        setup
            .define_domain(&DomainConfig::new(format!("vm-{i}"), 64, 1))
            .expect("define");
    }

    let label = if mixed {
        "mixed (~10% writes)"
    } else {
        "read-heavy"
    };
    print_header(&format!(
        "F8b: {label} scaling, remote path ({DOMAINS} domains)"
    ));
    let key = if mixed { "rpc_mixed" } else { "rpc_read" };
    let mut base = 0.0;
    for &clients in &CLIENTS {
        let conns: Vec<Arc<Connect>> = (0..clients)
            .map(|_| Arc::new(Connect::builder(&uri).open().expect("connect")))
            .collect();
        let point = sweep(clients, |c| {
            let conn = Arc::clone(&conns[c]);
            move |i| {
                let n = (c as u64 * 31 + i) % DOMAINS as u64;
                let name = format!("vm-{n}");
                if mixed && i % 10 == 9 {
                    let domain = conn.domain_lookup_by_name(&name).expect("lookup");
                    domain.set_autostart(i % 20 == 9).expect("autostart");
                } else {
                    conn.domain_lookup_by_name(&name).expect("lookup");
                }
            }
        });
        for conn in conns {
            if let Ok(conn) = Arc::try_unwrap(conn) {
                conn.close();
            }
        }
        if clients == 1 {
            base = point.ops_per_sec;
        }
        print_point(clients, &point, base);
        csv.push_str(&format!(
            "{key},{clients},{:.0},{:.2},{:.2}\n",
            point.ops_per_sec, point.p50_us, point.p99_us
        ));
    }

    setup.close();
    daemon.shutdown();
}

/// Part 3: p99 lookup latency on idle domains while a migration streams
/// memory on another domain of the same host.
fn interference(csv: &mut String) {
    let readers = 4usize;
    let clock = SimClock::new();
    let a = unique("f8-src");
    let b = unique("f8-dst");
    // The only slow operation is the migration transfer: 0.1 ms virtual
    // per MiB, a quarter of it as wall time, so an 8 GiB guest occupies
    // its worker for ~200 ms of real time per pre-copy pass.
    let src_host = SimHost::builder(format!("{a}-qemu"))
        .cpus(64)
        .memory_mib(256 * 1024)
        .personality(QemuLike)
        .clock(clock.clone())
        .latency(LatencyModel::zero().set(OpKind::MigratePage, OpCost::scaled(0, 100_000)))
        .wall_time_scale(0.25)
        .build();
    let src_d = Virtd::builder(&a)
        .clock(clock.clone())
        .config(VirtdConfig::new().max_clients(64))
        .host(src_host)
        .build()
        .expect("src daemon");
    src_d.register_memory_endpoint(&a).expect("src endpoint");
    let dst_d = Virtd::builder(&b)
        .clock(clock)
        .with_quiet_hosts()
        .build()
        .expect("dst daemon");
    dst_d.register_memory_endpoint(&b).expect("dst endpoint");
    let src_uri = format!("qemu+memory://{a}/system");
    let src = Connect::builder(&src_uri).open().expect("src connect");
    let dst = Connect::builder(format!("qemu+memory://{b}/system"))
        .open()
        .expect("dst connect");

    for i in 0..32 {
        src.define_domain(&DomainConfig::new(format!("vm-{i}"), 64, 1))
            .expect("define");
    }
    let guest = src
        .define_domain(&DomainConfig::new("guest", 8192, 2))
        .expect("define guest");
    guest.start().expect("start guest");

    let measure = |label: &str| -> f64 {
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..readers)
            .map(|c| {
                let stop = Arc::clone(&stop);
                let conn = Connect::builder(&src_uri).open().expect("reader connect");
                std::thread::spawn(move || {
                    let mut samples = Vec::with_capacity(1 << 16);
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let name = format!("vm-{}", (c as u64 * 7 + i) % 32);
                        let t = Instant::now();
                        conn.domain_lookup_by_name(&name).expect("lookup");
                        samples.push(t.elapsed().as_nanos() as u64);
                        i += 1;
                    }
                    conn.close();
                    samples
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(250));
        stop.store(true, Ordering::Relaxed);
        let mut all: Vec<u64> = Vec::new();
        for t in threads {
            all.extend(t.join().expect("reader thread"));
        }
        all.sort_unstable();
        let p99_us = percentile(&all, 0.99) as f64 / 1e3;
        println!(
            "{label:<28} {:>10} {:>10.2} {:>10.2}",
            all.len(),
            percentile(&all, 0.50) as f64 / 1e3,
            p99_us
        );
        p99_us
    };

    println!("\nF8c: p99 lookup latency on other domains during a migration");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "phase", "lookups", "p50 (us)", "p99 (us)"
    );
    println!("{}", "-".repeat(62));
    let idle_p99 = measure("idle");

    let handle = guest
        .migrate_start(&dst, &MigrationOptions::default())
        .expect("migrate start");
    while {
        let stats = handle.stats().expect("stats");
        !(stats.state == JobState::Running && stats.data_processed_mib > 0)
    } {
        std::thread::sleep(Duration::from_micros(500));
    }
    let busy_p99 = measure("migration in flight");
    let report = handle.wait();
    println!(
        "p99 ratio (in-flight / idle): {:.2}x  (migration {})",
        busy_p99 / idle_p99,
        if report.is_ok() {
            "completed"
        } else {
            "did not complete"
        }
    );
    csv.push_str(&format!(
        "interference,{readers},{idle_p99:.2},{busy_p99:.2},{:.3}\n",
        busy_p99 / idle_p99
    ));

    src.close();
    dst.close();
    src_d.shutdown();
    dst_d.shutdown();
}

fn main() {
    println!("F8: concurrency scaling of the management hot paths");
    let mut csv =
        String::from("part,clients,ops_per_sec_or_idle_p99,p50_us_or_busy_p99,p99_us_or_ratio\n");

    direct_sweep(&mut csv);
    rpc_sweep(false, &mut csv);
    rpc_sweep(true, &mut csv);
    interference(&mut csv);

    let csv_path = "target/expt_f8_concurrency.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!(
        "shape check: read throughput should scale with clients (>=3x at 8); p99 ratio <= 2x."
    );
}

//! **F1 — Remote-transport overhead.**
//!
//! Round-trip latency of management calls over each transport the remote
//! driver supports: in-memory (protocol floor), Unix socket, TCP
//! loopback, and TLS-sim over TCP. Reported for a no-payload call
//! (`hostname`) and for growing reply payloads (`dumpxml` of a domain
//! with many disks), showing fixed vs per-byte costs.
//!
//! Expected shape: memory < unix < tcp < tls, with TLS's gap growing
//! with payload size (per-byte cipher work).
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f1_transport`

use std::time::Instant;

use virt_bench::unique;
use virt_core::xmlfmt::{DiskConfig, DomainConfig};
use virt_core::Connect;
use virt_rpc::transport::{
    Listener, TcpSocketListener, TlsSimTransport, Transport, UnixSocketListener,
};
use virtd::Virtd;

const ITERS: u32 = 300;

struct TlsListener(TcpSocketListener);

struct BoxTransport(Box<dyn Transport>);

impl Transport for BoxTransport {
    fn send_frame(&self, body: &[u8]) -> std::io::Result<()> {
        self.0.send_frame(body)
    }
    fn recv_frame(&self) -> std::io::Result<Vec<u8>> {
        self.0.recv_frame()
    }
    fn kind(&self) -> virt_rpc::TransportKind {
        self.0.kind()
    }
    fn peer(&self) -> String {
        self.0.peer()
    }
    fn shutdown(&self) -> std::io::Result<()> {
        self.0.shutdown()
    }
}

impl Listener for TlsListener {
    fn accept(&self) -> std::io::Result<Box<dyn Transport>> {
        let inner = self.0.accept()?;
        Ok(Box::new(TlsSimTransport::server(
            BoxTransport(inner),
            rand::random(),
        )?))
    }
    fn local_desc(&self) -> String {
        format!("tls:{}", self.0.local_desc())
    }
    fn close(&self) {
        self.0.close();
    }
}

fn domain_with_disks(name: &str, disks: usize) -> DomainConfig {
    let mut config = DomainConfig::new(name, 64, 1);
    for i in 0..disks {
        config.disks.push(DiskConfig {
            target: format!("vd{i}"),
            source: format!("/var/lib/virt/images/{name}-disk-{i}.qcow2"),
            capacity_mib: 1024,
            bus: "virtio".to_string(),
        });
    }
    config
}

fn measure(conn: &Connect, disks_per_size: &[usize]) -> (f64, Vec<(usize, f64, usize)>) {
    // Fixed-cost call.
    let start = Instant::now();
    for _ in 0..ITERS {
        conn.hostname().expect("hostname");
    }
    let noop_us = start.elapsed().as_secs_f64() * 1e6 / ITERS as f64;

    // Payload scaling: dumpxml of increasingly large descriptions.
    let mut series = Vec::new();
    for &disks in disks_per_size {
        let name = format!("payload-{disks}");
        conn.define_domain(&domain_with_disks(&name, disks))
            .expect("define");
        let domain = conn.domain_lookup_by_name(&name).expect("lookup");
        let xml_len = domain.xml_desc().expect("xml").len();
        let start = Instant::now();
        for _ in 0..ITERS {
            domain.xml_desc().expect("xml");
        }
        let per_call_us = start.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
        series.push((disks, per_call_us, xml_len));
        domain.undefine().expect("undefine");
    }
    (noop_us, series)
}

fn main() {
    let disk_counts = [0usize, 8, 32, 128];
    println!("F1: transport overhead ({} iterations per point)", ITERS);
    println!(
        "{:<8} {:>14} {}",
        "transport",
        "hostname (us)",
        disk_counts
            .iter()
            .map(|d| format!("{:>20}", format!("dumpxml {d} disks (us)")))
            .collect::<String>()
    );
    println!("{}", "-".repeat(8 + 14 + 20 * disk_counts.len() + 2));

    let mut csv = String::from("transport,noop_us,disks,dumpxml_us,xml_bytes\n");

    // memory
    {
        let endpoint = unique("f1-mem");
        let daemon = Virtd::builder(&endpoint)
            .with_quiet_hosts()
            .build()
            .unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .open()
            .unwrap();
        report("memory", &conn, &disk_counts, &mut csv);
        conn.close();
        daemon.shutdown();
    }
    // unix
    {
        let daemon = Virtd::builder(unique("f1-ux"))
            .with_quiet_hosts()
            .build()
            .unwrap();
        let path = format!("/tmp/{}.sock", unique("f1"));
        daemon.serve(Box::new(UnixSocketListener::bind(&path).unwrap()));
        let conn = Connect::builder(format!("qemu+unix:///system?socket={path}"))
            .open()
            .unwrap();
        report("unix", &conn, &disk_counts, &mut csv);
        conn.close();
        daemon.shutdown();
        let _ = std::fs::remove_file(&path);
    }
    // tcp
    {
        let daemon = Virtd::builder(unique("f1-tcp"))
            .with_quiet_hosts()
            .build()
            .unwrap();
        let listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().to_string();
        daemon.serve(Box::new(listener));
        let conn = Connect::builder(format!("qemu+tcp://{addr}/system"))
            .open()
            .unwrap();
        report("tcp", &conn, &disk_counts, &mut csv);
        conn.close();
        daemon.shutdown();
    }
    // tls
    {
        let daemon = Virtd::builder(unique("f1-tls"))
            .with_quiet_hosts()
            .build()
            .unwrap();
        let listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().to_string();
        daemon.serve(Box::new(TlsListener(listener)));
        let conn = Connect::builder(format!("qemu+tls://{addr}/system"))
            .open()
            .unwrap();
        report("tls", &conn, &disk_counts, &mut csv);
        conn.close();
        daemon.shutdown();
    }

    let csv_path = "target/expt_f1_transport.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
}

fn report(name: &str, conn: &Connect, disk_counts: &[usize], csv: &mut String) {
    let (noop_us, series) = measure(conn, disk_counts);
    print!("{:<8} {:>14.2}", name, noop_us);
    for (disks, per_call, bytes) in &series {
        print!("{:>20.2}", per_call);
        csv.push_str(&format!(
            "{name},{noop_us:.2},{disks},{per_call:.2},{bytes}\n"
        ));
    }
    println!();
}

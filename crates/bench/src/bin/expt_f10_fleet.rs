//! **F10 — Fleet layer: placement at scale and a cross-host migration
//! storm.**
//!
//! PR 8 added the `virt-fleet` federation layer: N `virtd` members
//! behind one `FleetManager` with capacity-aware placement and
//! orchestrated cross-host live migration. This experiment measures the
//! two axes that layer is for:
//!
//! 1. *Placement ladder.* A hosts×domains sweep (up to 16 members,
//!    10 000 domains fleet-wide) creating every domain through
//!    `FleetManager::create` under the spread policy, with 8 concurrent
//!    creator threads. At each rung: placement p50/p99 (from
//!    `fleet.placement.latency_us`, so dirty-host refreshes are
//!    included), creates/s, admission rejections (must be 0), and the
//!    final active-domain imbalance across members (spread must keep
//!    max−min small).
//!
//! 2. *Migration storm.* 24 concurrent cross-host live migrations from
//!    a member whose transfer takes real wall time (~25 ms per 256 MiB
//!    slice), while an *unrelated* third member serves a lookup probe.
//!    Every migration must succeed, every migrated guest must be
//!    running exactly once fleet-wide (checked live, not from cache),
//!    and the unrelated member's p99 must stay flat relative to its
//!    pre-storm baseline.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f10_fleet`
//! Smoke: `... --bin expt_f10_fleet -- --smoke` (small rung + storm,
//! asserting placement p99 and zero failed migrations; used by ci.sh).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hypersim::latency::{OpCost, OpKind};
use hypersim::personality::QemuLike;
use hypersim::{LatencyModel, SimHost};
use virt_bench::unique;
use virt_core::driver::MigrationOptions;
use virt_core::metrics::MetricValue;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virt_fleet::{FleetManager, PlacementRequest};
use virtd::Virtd;

/// `(members, domains)` rungs for the placement ladder.
const RUNGS: [(usize, usize); 3] = [(4, 1_000), (8, 4_000), (16, 10_000)];
const CREATORS: usize = 8;
const STORM: usize = 24;
const STORM_MIB: u64 = 256;
const DOMAIN_MIB: u64 = 48;

/// One quiet in-process member with `memory_gib` of capacity.
fn member(tag: &str, memory_gib: u64) -> (Virtd, String) {
    let endpoint = unique(tag);
    let qemu = SimHost::builder(format!("{endpoint}-qemu"))
        .cpus(64)
        // 10k domains over 16 members is 625 vcpus per host; the
        // default 8x overcommit ledger (512) would refuse the tail.
        .cpu_overcommit(16)
        .memory_mib(memory_gib * 1024)
        .personality(QemuLike)
        .latency(LatencyModel::zero())
        .build();
    let daemon = Virtd::builder(&endpoint)
        .host(qemu)
        .build()
        .expect("daemon");
    daemon
        .register_memory_endpoint(&endpoint)
        .expect("endpoint");
    (daemon, format!("qemu+memory://{endpoint}/system"))
}

/// A member whose migration transfer runs at ~25 ms of wall time per
/// 256 MiB slice — the storm's source, so 24 migrations genuinely
/// overlap.
fn slow_member(tag: &str) -> (Virtd, String) {
    let endpoint = unique(tag);
    let qemu = SimHost::builder(format!("{endpoint}-qemu"))
        .cpus(64)
        .memory_mib(64 * 1024)
        .personality(QemuLike)
        .latency(LatencyModel::zero().set(OpKind::MigratePage, OpCost::scaled(0, 100_000)))
        .wall_time_scale(1.0)
        .build();
    let daemon = Virtd::builder(&endpoint)
        .host(qemu)
        .build()
        .expect("daemon");
    daemon
        .register_memory_endpoint(&endpoint)
        .expect("endpoint");
    (daemon, format!("qemu+memory://{endpoint}/system"))
}

fn counter(fleet: &FleetManager, name: &str) -> u64 {
    match fleet
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| m.value)
    {
        Some(MetricValue::Counter(v)) => v,
        _ => 0,
    }
}

fn histogram(fleet: &FleetManager, name: &str) -> (f64, f64) {
    match fleet
        .metrics()
        .snapshot(name)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| m.value)
    {
        Some(MetricValue::Histogram(h)) => (h.p50_us().unwrap_or(0.0), h.p99_us().unwrap_or(0.0)),
        other => panic!("{name}: {other:?}"),
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Part 1: create `domains` guests through fleet placement over
/// `members` hosts. Returns the placement p99 in µs.
fn placement_rung(members: usize, domains: usize, csv: &mut String) -> f64 {
    let fleet_members: Vec<(Virtd, String)> = (0..members).map(|_| member("f10", 64)).collect();
    let mut builder = FleetManager::builder();
    for (i, (_, uri)) in fleet_members.iter().enumerate() {
        builder = builder.host(format!("m{i}"), uri.clone());
    }
    let fleet = Arc::new(builder.build().expect("fleet"));
    fleet.refresh();

    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CREATORS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= domains {
                    break;
                }
                fleet
                    .create(&PlacementRequest::new(format!("vm-{i}"), DOMAIN_MIB, 1))
                    .expect("create");
            });
        }
    });
    let elapsed = started.elapsed();

    fleet.refresh();
    let hosts = fleet.hosts();
    let placed: usize = hosts.iter().map(|h| h.active).sum();
    let max = hosts.iter().map(|h| h.active).max().unwrap_or(0);
    let min = hosts.iter().map(|h| h.active).min().unwrap_or(0);
    let rejected = counter(&fleet, "fleet.placement.rejected");
    let (p50, p99) = histogram(&fleet, "fleet.placement.latency_us");
    let rate = domains as f64 / elapsed.as_secs_f64();

    println!(
        "{:>6} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>9} {:>9}",
        members,
        domains,
        rate,
        p50,
        p99,
        max - min,
        rejected
    );
    csv.push_str(&format!(
        "placement,{members},{domains},{rate:.0},{p50:.0},{p99:.0},{},{rejected}\n",
        max - min
    ));

    assert_eq!(placed, domains, "every domain must be running");
    assert_eq!(rejected, 0, "no admission rejections below capacity");
    assert!(
        max - min <= members,
        "spread placement too unbalanced: max {max} min {min}"
    );

    for (daemon, _) in &fleet_members {
        daemon.shutdown();
    }
    p99
}

/// Part 2: `storm` concurrent live migrations off a slow-transfer
/// source, with an unrelated member probed throughout. Returns the
/// number of failed migrations (asserted 0 in smoke mode).
fn migration_storm(storm: usize, csv: &mut String) -> u64 {
    let (src_daemon, src_uri) = slow_member("f10-src");
    let (dst_daemon, dst_uri) = member("f10-dst", 64);
    let (probe_daemon, probe_uri) = member("f10-probe", 64);

    let fleet = Arc::new(
        FleetManager::builder()
            .host("src", src_uri.clone())
            .host("dst", dst_uri)
            .host("probe", probe_uri.clone())
            .build()
            .expect("fleet"),
    );

    // Seed the storm guests on the source and the probe's targets on
    // the unrelated member.
    let conn = Connect::builder(&src_uri).open().expect("src");
    for i in 0..storm {
        conn.define_domain(&DomainConfig::new(format!("storm-{i}"), STORM_MIB, 1))
            .expect("define")
            .start()
            .expect("start");
    }
    conn.close();
    let conn = Connect::builder(&probe_uri).open().expect("probe");
    for i in 0..32 {
        conn.define_domain(&DomainConfig::new(format!("bystander-{i}"), 64, 1))
            .expect("define");
    }
    conn.close();
    fleet.refresh();

    // Lookup probe against the unrelated member: returns latency
    // samples collected until `deadline`.
    let probe = |deadline: Instant| -> Vec<u64> {
        let conn = Connect::builder(&probe_uri).open().expect("probe");
        let mut samples = Vec::with_capacity(1 << 14);
        let mut i = 0u64;
        while Instant::now() < deadline {
            let t = Instant::now();
            conn.domain_lookup_by_name(&format!("bystander-{}", i % 32))
                .expect("lookup");
            samples.push(t.elapsed().as_micros() as u64);
            i += 1;
        }
        conn.close();
        samples
    };

    let mut baseline = probe(Instant::now() + Duration::from_millis(300));
    baseline.sort_unstable();
    let base_p99 = percentile(&baseline, 0.99);

    // Fire every migration on its own thread; the probe runs alongside
    // until the storm drains.
    let failed = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let started = Instant::now();
    let mut storm_samples = std::thread::scope(|scope| {
        for i in 0..storm {
            let fleet = fleet.clone();
            let (failed, done) = (&failed, &done);
            scope.spawn(move || {
                let outcome = fleet.migrate(
                    "src",
                    &format!("storm-{i}"),
                    "dst",
                    &MigrationOptions::default(),
                );
                if outcome.is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let done = &done;
        let sampler = scope.spawn(|| {
            let mut all = Vec::new();
            // Sample in short slices so the probe stops soon after the
            // last migration lands.
            while Instant::now() < started + Duration::from_secs(60) {
                all.extend(probe(Instant::now() + Duration::from_millis(50)));
                if done.load(Ordering::Relaxed) >= storm {
                    break;
                }
            }
            all
        });
        sampler.join().expect("sampler")
    });
    let storm_elapsed = started.elapsed();
    storm_samples.sort_unstable();
    let storm_p99 = percentile(&storm_samples, 0.99);

    // The counter and the per-thread flag see the same failures; take
    // the max rather than summing them twice.
    let failed_total =
        counter(&fleet, "fleet.migration.failed").max(failed.load(Ordering::Relaxed) as u64);
    let completed = counter(&fleet, "fleet.migration.completed");
    let (mig_p50, mig_p99) = histogram(&fleet, "fleet.migration.latency_us");

    // Exactly-once, checked live against every member.
    let mut multi = 0;
    let mut missing = 0;
    for i in 0..storm {
        let owners = fleet.residency(&format!("storm-{i}"));
        match owners.len() {
            1 => {}
            0 => missing += 1,
            _ => multi += 1,
        }
    }

    println!(
        "\nF10b: migration storm ({storm} concurrent, {STORM_MIB} MiB each, slow source transfer)"
    );
    println!(
        "  completed {completed}/{storm} in {:.2} s   failed {failed_total}   migration p50 {mig_p50:.0} us  p99 {mig_p99:.0} us",
        storm_elapsed.as_secs_f64()
    );
    println!(
        "  unrelated member p99: {base_p99} us before, {storm_p99} us during ({} samples)",
        storm_samples.len()
    );
    println!("  residency: {multi} multi-owner, {missing} missing (must both be 0)");
    csv.push_str(&format!(
        "storm,{storm},{completed},{failed_total},{mig_p50:.0},{mig_p99:.0},{base_p99},{storm_p99}\n"
    ));

    assert_eq!(completed as usize, storm, "every migration must complete");
    assert_eq!(multi, 0, "a guest ran on more than one member");
    assert_eq!(missing, 0, "a guest vanished during the storm");
    // Flatness: generous bound — the unrelated member shares nothing
    // with the storm but the client process, so its p99 must not blow
    // up by an order of magnitude.
    assert!(
        storm_p99 <= base_p99.saturating_mul(10).max(2_000),
        "unrelated member p99 not flat: {base_p99} -> {storm_p99} us"
    );

    src_daemon.shutdown();
    dst_daemon.shutdown();
    probe_daemon.shutdown();
    failed_total
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut csv = String::from("part,a,b,c,d,e,f,g\n");

    println!("F10: fleet placement ladder (spread policy, {CREATORS} creator threads)");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "hosts", "domains", "creates/s", "p50 us", "p99 us", "imbal", "rejects"
    );
    println!("{}", "-".repeat(68));

    let mut last_p99 = 0.0;
    if smoke {
        last_p99 = placement_rung(3, 150, &mut csv);
    } else {
        for (members, domains) in RUNGS {
            last_p99 = placement_rung(members, domains, &mut csv);
        }
    }

    let failed = migration_storm(if smoke { 20 } else { STORM }, &mut csv);

    if smoke {
        assert!(
            last_p99 < 50_000.0,
            "smoke: placement p99 {last_p99:.0} us over 50 ms budget"
        );
        assert_eq!(failed, 0, "smoke: migrations failed");
        println!("\nF10 smoke OK (placement p99 {last_p99:.0} us, 0 failed migrations)");
        return;
    }

    let csv_path = "target/expt_f10_fleet.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!("shape check: placement p99 grows with per-member inventory size but stays in the low ms; imbalance bounded; storm completes with zero failures, single residency, and a flat unrelated-member p99.");
}

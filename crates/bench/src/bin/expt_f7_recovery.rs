//! **F7 — Crash-recovery time vs. domain count.**
//!
//! A daemon started with a state directory replays every persistent
//! definition (and the recorded run-state) from disk before it accepts
//! clients. Each definition is one file read, one parse, one adopt and
//! one crash-safe rewrite of the reconciled files, so recovery should
//! be linear in the number of objects with a per-domain cost set by
//! the durable-write protocol (fsyncs), i.e. low single-digit
//! milliseconds per domain — a daemon managing 400 guests restarts in
//! well under a second.
//!
//! The sweep defines n domains (half with autostart) against a
//! state-backed daemon, shuts the daemon down, then times a fresh
//! daemon booting on the same directory. The recovery pass itself is
//! also reported from the daemon's own `recovery.duration_us` counter,
//! separating it from fixed build cost.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f7_recovery`

use std::path::PathBuf;
use std::time::Instant;

use virt_bench::unique;
use virt_core::metrics::MetricValue;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virtd::{Virtd, VirtdConfig};

const TRIALS: u32 = 5;

fn recovery_counter(daemon: &Virtd, name: &str) -> u64 {
    match daemon
        .metrics()
        .snapshot("recovery.")
        .into_iter()
        .find(|m| m.name == name)
    {
        Some(m) => match m.value {
            MetricValue::Counter(v) => v,
            ref other => panic!("{name} is not a counter: {other:?}"),
        },
        None => panic!("{name} not registered"),
    }
}

struct SweepPoint {
    build_ms: f64,
    recovery_ms: f64,
}

/// Mean wall time to boot a daemon over a statedir holding `n` domain
/// definitions, and the mean time of the recovery pass alone.
fn recovery_sweep(n: usize) -> SweepPoint {
    let mut build_ms = 0.0;
    let mut recovery_ms = 0.0;
    for _ in 0..TRIALS {
        let statedir: PathBuf = std::env::temp_dir().join(unique("expt-f7"));
        let config = VirtdConfig::new().statedir(&statedir);

        // Populate: one daemon, n defined guests, half autostart-enabled.
        let endpoint = unique("f7-seed");
        let seed = Virtd::builder(&endpoint)
            .config(config.clone())
            .with_quiet_hosts()
            .build()
            .unwrap();
        seed.register_memory_endpoint(&endpoint).unwrap();
        let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .open()
            .unwrap();
        for i in 0..n {
            let domain = conn
                .define_domain(&DomainConfig::new(format!("vm-{i}"), 64, 1))
                .unwrap();
            if i % 2 == 0 {
                domain.set_autostart(true).unwrap();
            }
        }
        conn.close();
        seed.shutdown();

        // Measure: a fresh daemon recovering the same directory.
        let started = Instant::now();
        let recovered = Virtd::builder(unique("f7-recover"))
            .config(config)
            .with_quiet_hosts()
            .build()
            .unwrap();
        build_ms += started.elapsed().as_secs_f64() * 1e3;

        assert_eq!(recovery_counter(&recovered, "recovery.recovered"), n as u64);
        assert_eq!(recovery_counter(&recovered, "recovery.quarantined"), 0);
        recovery_ms += recovery_counter(&recovered, "recovery.duration_us") as f64 / 1e3;

        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&statedir);
    }
    SweepPoint {
        build_ms: build_ms / f64::from(TRIALS),
        recovery_ms: recovery_ms / f64::from(TRIALS),
    }
}

fn main() {
    let mut csv = String::from("domains,build_ms,recovery_ms,per_domain_us\n");

    println!("F7: daemon restart over a populated statedir ({TRIALS} trials per point)");
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "domains", "build (ms)", "recovery (ms)", "per-dom (us)"
    );
    println!("{}", "-".repeat(54));
    for n in [10usize, 50, 100, 200, 400] {
        let point = recovery_sweep(n);
        let per_domain_us = point.recovery_ms * 1e3 / n as f64;
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>14.1}",
            n, point.build_ms, point.recovery_ms, per_domain_us
        );
        csv.push_str(&format!(
            "{n},{:.3},{:.3},{per_domain_us:.2}\n",
            point.build_ms, point.recovery_ms
        ));
    }

    let csv_path = "target/expt_f7_recovery.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
}

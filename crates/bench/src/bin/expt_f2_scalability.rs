//! **F2 — Scalability with domain count.**
//!
//! Management-layer cost of listing and bulk-operating on N domains
//! through the remote protocol, N ∈ {1, 10, 100, 500, 1000}. The expected
//! shape is linear scaling with a flat per-domain cost (no superlinear
//! blowup), both for the wall-clock management path and for simulated
//! hypervisor time.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f2_scalability`

use std::time::Instant;

use hypersim::SimClock;
use virt_bench::unique;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virtd::{Virtd, VirtdConfig};

fn main() {
    let counts = [1usize, 10, 100, 500, 1000];
    println!("F2: scalability with domain count (remote path, zero-latency hypervisor)");
    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>16} {:>16}",
        "N", "define (ms)", "define/dom (us)", "list (ms)", "list/dom (us)", "start-all (ms)"
    );
    println!("{}", "-".repeat(88));

    let mut csv =
        String::from("n,define_ms,define_per_us,list_ms,list_per_us,startall_ms,sim_startall_ms\n");

    for &n in &counts {
        let endpoint = unique("f2");
        let clock = SimClock::new();
        // A host big enough to run 1000 tiny guests at once.
        let host = hypersim::SimHost::builder("f2-qemu")
            .cpus(256)
            .cpu_overcommit(16)
            .memory_mib(1024 * 1024)
            .clock(clock.clone())
            .latency(hypersim::LatencyModel::zero())
            .build();
        let daemon = Virtd::builder(&endpoint)
            .clock(clock.clone())
            .config(VirtdConfig::new().max_clients(16))
            .host(host)
            .build()
            .unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .open()
            .unwrap();

        let t = Instant::now();
        for i in 0..n {
            conn.define_domain(&DomainConfig::new(format!("vm-{i}"), 16, 1))
                .unwrap();
        }
        let define = t.elapsed();

        // Warm, then measure listing.
        conn.list_domain_names().unwrap();
        let t = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            let names = conn.list_all_domains().unwrap();
            assert_eq!(names.len(), n);
        }
        let list = t.elapsed() / reps;

        let sim_start = clock.now();
        let t = Instant::now();
        for i in 0..n {
            conn.domain_lookup_by_name(&format!("vm-{i}"))
                .unwrap()
                .start()
                .unwrap();
        }
        let start_all = t.elapsed();
        let sim_elapsed = clock.now().duration_since(sim_start);

        println!(
            "{:>6} {:>14.2} {:>16.2} {:>14.3} {:>16.2} {:>16.2}",
            n,
            define.as_secs_f64() * 1e3,
            define.as_secs_f64() * 1e6 / n as f64,
            list.as_secs_f64() * 1e3,
            list.as_secs_f64() * 1e6 / n as f64,
            start_all.as_secs_f64() * 1e3,
        );
        csv.push_str(&format!(
            "{n},{:.3},{:.2},{:.4},{:.2},{:.3},{:.3}\n",
            define.as_secs_f64() * 1e3,
            define.as_secs_f64() * 1e6 / n as f64,
            list.as_secs_f64() * 1e3,
            list.as_secs_f64() * 1e6 / n as f64,
            start_all.as_secs_f64() * 1e3,
            sim_elapsed.as_secs_f64() * 1e3,
        ));

        conn.close();
        daemon.shutdown();
    }

    let csv_path = "target/expt_f2_scalability.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!("shape check: per-domain cost should stay roughly flat as N grows (linear total).");
}

//! **F5 — Connection resilience.**
//!
//! Two measurements of the reconnect/retry machinery:
//!
//! 1. *Recovery latency vs backoff parameters.* The daemon restarts
//!    after a fixed 50 ms outage while a client with a patient retry
//!    policy keeps calling. Smaller initial backoffs poll the dead
//!    endpoint more aggressively and so notice the restart sooner, at
//!    the price of more wasted dials; the sweep shows the trade-off.
//!
//! 2. *Circuit breaker under a flapping daemon.* The daemon cycles
//!    down/up every 100 ms while a no-retry client calls continuously.
//!    With a short breaker cooldown the client keeps probing (more dial
//!    failures, quicker recovery); with a long cooldown it fails fast
//!    (cheap errors) but stays dark through whole up-phases.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f5_resilience`

use std::time::{Duration, Instant};

use virt_bench::unique;
use virt_core::{BreakerConfig, Connect, RetryPolicy};
use virtd::Virtd;

const TRIALS: u32 = 5;
const DOWNTIME: Duration = Duration::from_millis(50);

/// Mean wall-clock latency (ms) of the first idempotent call issued the
/// moment the daemon goes down, with a restart `DOWNTIME` later.
fn recovery_latency_ms(initial_backoff: Duration, multiplier: u32) -> f64 {
    let mut total_ms = 0.0;
    for _ in 0..TRIALS {
        let endpoint = unique("f5-rec");
        let daemon = Virtd::builder(&endpoint)
            .with_quiet_hosts()
            .build()
            .unwrap();
        daemon.register_memory_endpoint(&endpoint).unwrap();
        let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
            .retry(RetryPolicy {
                max_attempts: 200,
                initial_backoff,
                max_backoff: Duration::from_millis(500),
                multiplier,
                retry_budget: 10_000,
            })
            .breaker(BreakerConfig {
                failure_threshold: 10_000,
                cooldown: Duration::from_secs(1),
            })
            .open()
            .unwrap();
        conn.hostname().unwrap();

        let host = daemon.host("qemu").unwrap().clone();
        daemon.shutdown();
        let deadline = Instant::now() + Duration::from_secs(5);
        while conn.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }

        let ep = endpoint.clone();
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(DOWNTIME);
            let daemon = Virtd::builder(&ep).host(host).build().unwrap();
            daemon.register_memory_endpoint(&ep).unwrap();
            daemon
        });

        let start = Instant::now();
        conn.hostname().expect("call recovers across the restart");
        total_ms += start.elapsed().as_secs_f64() * 1e3;

        let daemon2 = restarter.join().unwrap();
        conn.close();
        daemon2.shutdown();
    }
    total_ms / f64::from(TRIALS)
}

struct FlapStats {
    ok: u64,
    dial_fail: u64,
    fast_fail: u64,
}

/// Call outcomes while the daemon flaps down/up (5 cycles, 100 ms per
/// phase) against a no-retry client with the given breaker cooldown.
fn flapping_stats(cooldown: Duration) -> FlapStats {
    let endpoint = unique("f5-flap");
    let daemon = Virtd::builder(&endpoint)
        .with_quiet_hosts()
        .build()
        .unwrap();
    daemon.register_memory_endpoint(&endpoint).unwrap();
    let conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown,
        })
        .open()
        .unwrap();
    conn.hostname().unwrap();

    let ep = endpoint.clone();
    let flapper = std::thread::spawn(move || {
        let mut daemon = daemon;
        for _ in 0..5 {
            let host = daemon.host("qemu").unwrap().clone();
            daemon.shutdown();
            std::thread::sleep(Duration::from_millis(100));
            daemon = Virtd::builder(&ep).host(host).build().unwrap();
            daemon.register_memory_endpoint(&ep).unwrap();
            std::thread::sleep(Duration::from_millis(100));
        }
        daemon
    });

    let mut stats = FlapStats {
        ok: 0,
        dial_fail: 0,
        fast_fail: 0,
    };
    while !flapper.is_finished() {
        match conn.hostname() {
            Ok(_) => stats.ok += 1,
            Err(e) if e.message().contains("circuit") => stats.fast_fail += 1,
            Err(_) => stats.dial_fail += 1,
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let daemon = flapper.join().unwrap();
    conn.close();
    daemon.shutdown();
    stats
}

fn main() {
    let mut csv = String::from("part,param_ms,ok,dial_fail,fast_fail,recovery_ms\n");

    println!(
        "F5a: recovery latency after a {} ms outage ({} trials per point)",
        DOWNTIME.as_millis(),
        TRIALS
    );
    println!(
        "{:<20} {:<12} {:>14}",
        "initial backoff", "multiplier", "recovery (ms)"
    );
    println!("{}", "-".repeat(48));
    for (initial_ms, multiplier) in [(1u64, 2u32), (5, 2), (20, 2), (100, 2), (20, 1)] {
        let ms = recovery_latency_ms(Duration::from_millis(initial_ms), multiplier);
        println!(
            "{:<20} {:<12} {:>14.1}",
            format!("{initial_ms} ms"),
            multiplier,
            ms
        );
        csv.push_str(&format!("recovery,{initial_ms},,,,{ms:.2}\n"));
    }

    println!("\nF5b: breaker under a flapping daemon (5 down/up cycles of 100 ms each)");
    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "cooldown", "ok", "dial fails", "fast fails"
    );
    println!("{}", "-".repeat(50));
    for cooldown_ms in [25u64, 100, 400] {
        let stats = flapping_stats(Duration::from_millis(cooldown_ms));
        println!(
            "{:<16} {:>8} {:>12} {:>12}",
            format!("{cooldown_ms} ms"),
            stats.ok,
            stats.dial_fail,
            stats.fast_fail
        );
        csv.push_str(&format!(
            "flapping,{cooldown_ms},{},{},{},\n",
            stats.ok, stats.dial_fail, stats.fast_fail
        ));
    }

    let csv_path = "target/expt_f5_resilience.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
}

//! **T2 — Lifecycle-operation latency: native vs libvirt vs remote.**
//!
//! The paper's non-intrusiveness claim quantified: for each platform and
//! each lifecycle operation, compare
//!
//! 1. the **native** control interface (direct `SimHost` calls — what a
//!    platform-specific tool would do),
//! 2. the **management layer locally** (through the driver API),
//! 3. the **management layer remotely** (through virtd over RPC).
//!
//! Hypervisor time is simulated (identical across paths by construction),
//! so the reported *wall-clock* delta is exactly the management layer's
//! added overhead — which is µs-scale against ms-scale operations.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_t2_lifecycle`

use std::time::{Duration, Instant};

use hypersim::personality::{LxcLike, Personality, QemuLike, XenLike};
use hypersim::{DomainSpec, LatencyModel, MiB, OpKind, SimClock, SimHost};
use virt_bench::unique;
use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::xmlfmt::DomainConfig;
use virt_core::{Connect, Domain};
use virtd::Virtd;

const ITERS: u32 = 200;

/// Wall-clock time per iteration of `f`, minus nothing — callers use
/// zero-latency hosts so hypervisor time is excluded by construction.
fn wall(iters: u32, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

fn native_cycle(host: &SimHost, name: &str) {
    host.start_domain(name).expect("start");
    host.suspend_domain(name).expect("suspend");
    host.resume_domain(name).expect("resume");
    host.destroy_domain(name).expect("destroy");
}

fn api_cycle(domain: &Domain) {
    domain.start().expect("start");
    domain.suspend().expect("suspend");
    domain.resume().expect("resume");
    domain.destroy().expect("destroy");
}

fn simulated_cost(personality: &dyn Personality, op: OpKind, memory: MiB) -> Duration {
    personality.latency_model().deterministic_cost(op, memory)
}

fn main() {
    println!("T2: lifecycle cycle (start+suspend+resume+destroy) — management overhead");
    println!("(zero-latency hosts: wall time IS the management layer's added cost)");
    println!();
    println!(
        "{:<8} {:>16} {:>16} {:>16} {:>22}",
        "path", "wall/cycle (us)", "per-op (us)", "vs native (us)", "simulated cycle (ms)*"
    );
    println!("{}", "-".repeat(84));

    // Reference simulated cost of the cycle on each real platform, for scale.
    let sim_cycle = |p: &dyn Personality| {
        simulated_cost(p, OpKind::Start, MiB(512))
            + simulated_cost(p, OpKind::Suspend, MiB(0))
            + simulated_cost(p, OpKind::Resume, MiB(0))
            + simulated_cost(p, OpKind::Destroy, MiB(0))
    };
    let qemu_sim = sim_cycle(&QemuLike);

    // Path 1: native hypervisor interface.
    let native_host = SimHost::builder("t2-native")
        .latency(LatencyModel::zero())
        .build();
    native_host
        .define_domain(DomainSpec::new("vm").memory_mib(512))
        .unwrap();
    let native = wall(ITERS, || native_cycle(&native_host, "vm"));

    // Path 2: the management API over an embedded driver.
    let local_host = SimHost::builder("t2-local")
        .latency(LatencyModel::zero())
        .build();
    let local_conn = Connect::from_driver(EmbeddedConnection::new(local_host, "qemu:///system"));
    let local_domain = local_conn
        .define_domain(&DomainConfig::new("vm", 512, 1))
        .unwrap();
    let local = wall(ITERS, || api_cycle(&local_domain));

    // Path 3: through the daemon over the in-memory transport.
    let endpoint = unique("t2");
    let daemon = Virtd::builder(&endpoint)
        .with_quiet_hosts()
        .build()
        .unwrap();
    daemon.register_memory_endpoint(&endpoint).unwrap();
    let remote_conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .open()
        .unwrap();
    let remote_domain = remote_conn
        .define_domain(&DomainConfig::new("vm", 512, 1))
        .unwrap();
    let remote = wall(ITERS, || api_cycle(&remote_domain));

    let row = |path: &str, d: Duration| {
        println!(
            "{:<8} {:>16.2} {:>16.2} {:>16.2} {:>22.1}",
            path,
            d.as_secs_f64() * 1e6,
            d.as_secs_f64() * 1e6 / 4.0,
            (d.as_secs_f64() - native.as_secs_f64()) * 1e6,
            qemu_sim.as_secs_f64() * 1e3,
        );
    };
    row("native", native);
    row("local", local);
    row("remote", remote);

    println!();
    println!("* simulated cycle cost on a realistic QEMU-like platform, for scale:");
    for p in [&QemuLike as &dyn Personality, &XenLike, &LxcLike] {
        println!(
            "    {:<6} start={:>8} suspend={:>6} resume={:>6} destroy={:>7} (ms, 512 MiB guest)",
            p.name(),
            format!(
                "{:.1}",
                simulated_cost(p, OpKind::Start, MiB(512)).as_secs_f64() * 1e3
            ),
            format!(
                "{:.1}",
                simulated_cost(p, OpKind::Suspend, MiB(0)).as_secs_f64() * 1e3
            ),
            format!(
                "{:.1}",
                simulated_cost(p, OpKind::Resume, MiB(0)).as_secs_f64() * 1e3
            ),
            format!(
                "{:.1}",
                simulated_cost(p, OpKind::Destroy, MiB(0)).as_secs_f64() * 1e3
            ),
        );
    }
    println!();
    println!(
        "shape check: management adds {:.1} us/op locally and {:.1} us/op remotely,",
        (local.as_secs_f64() - native.as_secs_f64()) * 1e6 / 4.0,
        (remote.as_secs_f64() - native.as_secs_f64()) * 1e6 / 4.0
    );
    println!(
        "against {:.0} ms/op of real hypervisor work — a {:.4}% remote overhead.",
        qemu_sim.as_secs_f64() * 1e3 / 4.0,
        (remote.as_secs_f64() - native.as_secs_f64()) / qemu_sim.as_secs_f64() * 100.0
    );

    remote_conn.close();
    daemon.shutdown();

    // Use the clock variable so the import stays purposeful even if the
    // reference table changes.
    let _ = SimClock::new();
}

//! **F4 — Live migration: total time and downtime.**
//!
//! Two sweeps over the full distributed migration path (two daemons,
//! remote protocol, pre-copy model):
//!
//! 1. **memory sweep** — total time grows linearly with guest memory;
//!    downtime stays bounded by the budget while pre-copy converges;
//! 2. **dirty-rate sweep** — as the guest dirties memory faster, the
//!    pre-copy iteration count climbs until the dirty rate crosses the
//!    link bandwidth, where convergence fails and downtime blows past
//!    the budget (the classic pre-copy crossover).
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f4_migration`

use hypersim::SimClock;
use virt_bench::unique;
use virt_core::driver::MigrationOptions;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virtd::Virtd;

fn daemon_pair(clock: &SimClock) -> (Virtd, Virtd, Connect, Connect) {
    let a = unique("f4-src");
    let b = unique("f4-dst");
    let src = Virtd::builder(&a)
        .clock(clock.clone())
        .with_quiet_hosts()
        .build()
        .unwrap();
    src.register_memory_endpoint(&a).unwrap();
    let dst = Virtd::builder(&b)
        .clock(clock.clone())
        .with_quiet_hosts()
        .build()
        .unwrap();
    dst.register_memory_endpoint(&b).unwrap();
    let src_conn = Connect::builder(format!("qemu+memory://{a}/system"))
        .open()
        .unwrap();
    let dst_conn = Connect::builder(format!("qemu+memory://{b}/system"))
        .open()
        .unwrap();
    (src, dst, src_conn, dst_conn)
}

fn main() {
    let options = MigrationOptions {
        bandwidth_mib_s: 1024,
        max_downtime_ms: 300,
        max_iterations: 30,
    };
    let mut csv = String::from(
        "sweep,memory_mib,dirty_mib_s,total_ms,downtime_ms,iterations,transferred_mib,converged\n",
    );

    println!("F4a: migration vs guest memory (dirty 100 MiB/s, link 1024 MiB/s, budget 300 ms)");
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>16} {:>10}",
        "mem (MiB)", "total (ms)", "downtime (ms)", "iterations", "moved (MiB)", "converged"
    );
    println!("{}", "-".repeat(80));
    for memory in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
        let clock = SimClock::new();
        let (src_d, dst_d, src, dst) = daemon_pair(&clock);
        let mut config = DomainConfig::new("guest", memory, 2);
        config.dirty_rate_mib_s = 100;
        let domain = src.define_domain(&config).unwrap();
        domain.start().unwrap();
        let report = domain.migrate_to(&dst, &options).unwrap();
        println!(
            "{:>10} {:>12} {:>14} {:>12} {:>16} {:>10}",
            memory,
            report.total_ms,
            report.downtime_ms,
            report.iterations,
            report.transferred_mib,
            report.converged
        );
        csv.push_str(&format!(
            "memory,{memory},100,{},{},{},{},{}\n",
            report.total_ms,
            report.downtime_ms,
            report.iterations,
            report.transferred_mib,
            report.converged
        ));
        src.close();
        dst.close();
        src_d.shutdown();
        dst_d.shutdown();
    }

    println!("\nF4b: migration vs dirty rate (4096 MiB guest, link 1024 MiB/s, budget 300 ms)");
    println!(
        "{:>14} {:>12} {:>14} {:>12} {:>16} {:>10}",
        "dirty (MiB/s)", "total (ms)", "downtime (ms)", "iterations", "moved (MiB)", "converged"
    );
    println!("{}", "-".repeat(84));
    for dirty in [0u64, 100, 300, 600, 900, 1024, 1500, 3000] {
        let clock = SimClock::new();
        let (src_d, dst_d, src, dst) = daemon_pair(&clock);
        let mut config = DomainConfig::new("guest", 4096, 2);
        config.dirty_rate_mib_s = dirty;
        let domain = src.define_domain(&config).unwrap();
        domain.start().unwrap();
        let report = domain.migrate_to(&dst, &options).unwrap();
        println!(
            "{:>14} {:>12} {:>14} {:>12} {:>16} {:>10}",
            dirty,
            report.total_ms,
            report.downtime_ms,
            report.iterations,
            report.transferred_mib,
            report.converged
        );
        csv.push_str(&format!(
            "dirty,4096,{dirty},{},{},{},{},{}\n",
            report.total_ms,
            report.downtime_ms,
            report.iterations,
            report.transferred_mib,
            report.converged
        ));
        src.close();
        dst.close();
        src_d.shutdown();
        dst_d.shutdown();
    }

    let csv_path = "target/expt_f4_migration.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
    println!("shape check: total ∝ memory; downtime ≤ budget while converged; crossover at dirty ≈ bandwidth.");
}

//! **F12 — Group-commit statestore: mutating-op throughput and latency.**
//!
//! Every mutating management op persists dirty objects through the
//! statestore. The pre-group-commit store paid a full temp → fsync →
//! rename → dirsync cycle per write on the caller's thread, so N
//! concurrent writers serialized behind N independent fsync cycles —
//! F7 measured that protocol at ~2 ms/domain and F8b found it gating
//! mixed-workload throughput. The group-commit pipeline queues dirty
//! records, coalesces them, and flushes a whole batch in one fsync
//! cycle that all concurrent barrier waiters share.
//!
//! Three measurements, each pipeline vs. the synchronous baseline
//! (`StoreOptions::sync_writes`, the old per-op behavior):
//!
//! 1. **Store-level durable writes** — W threads × N `put`s of distinct
//!    objects. Throughput and per-op p50/p99: group commit should win
//!    roughly in proportion to the number of concurrent writers.
//! 2. **Daemon-level define latency** — W remote clients concurrently
//!    defining domains against a statedir-backed daemon (the full
//!    dispatch + driver + persist path, i.e. what a user observes).
//! 3. **Coalescing probe** — a K-write status storm against one object,
//!    write-behind: the `group_commits`/`coalesced` counters must show
//!    the storm collapsing into ≤ 2 fsync cycles.
//!
//! Run: `cargo run --release -p virt-bench --bin expt_f12_statestore`
//! (`--smoke` shrinks the sweep for CI).

use std::sync::Arc;
use std::time::Instant;

use virt_bench::unique;
use virt_core::statestore::{ObjectKind, StateStore, StoreOptions};
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virtd::{Virtd, VirtdConfig};

struct Arm {
    label: &'static str,
    sync_writes: bool,
}

const ARMS: [Arm; 2] = [
    Arm {
        label: "sync",
        sync_writes: true,
    },
    Arm {
        label: "group",
        sync_writes: false,
    },
];

struct Point {
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn summarize(mut latencies_us: Vec<f64>, elapsed_s: f64) -> Point {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Point {
        ops_per_sec: latencies_us.len() as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

/// W threads, each committing N durable puts of distinct objects.
fn store_level(writers: usize, per_writer: usize, sync_writes: bool) -> (Vec<f64>, f64) {
    let dir = std::env::temp_dir().join(unique("expt-f12-store"));
    let store = StateStore::open_with_options(
        &dir,
        StoreOptions {
            sync_writes,
            ..StoreOptions::default()
        },
    )
    .expect("store opens");
    let started = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_writer);
                for i in 0..per_writer {
                    let op = Instant::now();
                    store
                        .put(
                            ObjectKind::Domain,
                            "qemu",
                            &format!("dom-{t}-{i}"),
                            &format!("<domain><name>dom-{t}-{i}</name></domain>"),
                        )
                        .expect("put succeeds");
                    lat.push(op.elapsed().as_secs_f64() * 1e6);
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("writer thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (latencies, elapsed)
}

/// W remote clients concurrently defining domains against a
/// statedir-backed daemon: the end-to-end mutating-op path.
fn daemon_level(writers: usize, per_writer: usize, sync_writes: bool) -> (Vec<f64>, f64) {
    let statedir = std::env::temp_dir().join(unique("expt-f12-daemon"));
    let endpoint = unique("f12");
    let daemon = Virtd::builder(&endpoint)
        .config(
            VirtdConfig::new()
                .max_clients(256)
                .statedir(&statedir)
                .statestore(StoreOptions {
                    sync_writes,
                    ..StoreOptions::default()
                }),
        )
        .with_quiet_hosts()
        .build()
        .expect("daemon builds");
    daemon
        .register_memory_endpoint(&endpoint)
        .expect("endpoint");
    let uri = format!("qemu+memory://{endpoint}/system");

    let started = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let uri = uri.clone();
            std::thread::spawn(move || {
                let conn = Connect::builder(&uri).open().expect("connect");
                let mut lat = Vec::with_capacity(per_writer);
                for i in 0..per_writer {
                    let op = Instant::now();
                    conn.define_domain(&DomainConfig::new(format!("vm-{t}-{i}"), 64, 1))
                        .expect("define succeeds");
                    lat.push(op.elapsed().as_secs_f64() * 1e6);
                }
                conn.close();
                lat
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&statedir);
    (latencies, elapsed)
}

/// A K-write status storm against one object through the write-behind
/// path, then a drain. Returns (flush cycles, coalesced records).
fn coalescing_probe(k: usize) -> (u64, u64) {
    let dir = std::env::temp_dir().join(unique("expt-f12-storm"));
    let store = StateStore::open(&dir).expect("store opens");
    for i in 0..k {
        store.put_behind(
            ObjectKind::DomainStatus,
            "qemu",
            "stormy",
            &format!("<domstatus frame='{i}'/>"),
        );
    }
    store.flush().expect("drain succeeds");
    let cycles = store.group_commits_total();
    let coalesced = store.coalesced_total();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (cycles, coalesced)
}

/// Aggregates `trials` runs of one measurement: latencies pool, elapsed
/// times sum, so the summary reflects every op of every trial.
fn trials_of(trials: u32, mut run: impl FnMut() -> (Vec<f64>, f64)) -> Point {
    let mut latencies = Vec::new();
    let mut elapsed = 0.0;
    for _ in 0..trials {
        let (lat, s) = run();
        latencies.extend(lat);
        elapsed += s;
    }
    summarize(latencies, elapsed)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let writer_counts: &[usize] = if smoke { &[8] } else { &[2, 8, 16] };
    let per_writer = if smoke { 12 } else { 60 };
    let storm = if smoke { 64 } else { 200 };
    let trials = if smoke { 1 } else { 3 };

    let mut csv = String::from("level,writers,mode,ops_per_sec,p50_us,p99_us\n");

    println!("F12: statestore group commit vs per-op fsync ({per_writer} ops/writer)");
    println!(
        "{:<8} {:<8} {:<7} {:>12} {:>10} {:>10}",
        "level", "writers", "mode", "ops/s", "p50 (us)", "p99 (us)"
    );
    println!("{}", "-".repeat(60));
    for &writers in writer_counts {
        let mut speedup: [f64; 2] = [0.0; 2];
        let mut p99s: [f64; 2] = [0.0; 2];
        for (index, arm) in ARMS.iter().enumerate() {
            let point = trials_of(trials, || store_level(writers, per_writer, arm.sync_writes));
            println!(
                "{:<8} {:<8} {:<7} {:>12.0} {:>10.1} {:>10.1}",
                "store", writers, arm.label, point.ops_per_sec, point.p50_us, point.p99_us
            );
            csv.push_str(&format!(
                "store,{writers},{},{:.0},{:.1},{:.1}\n",
                arm.label, point.ops_per_sec, point.p50_us, point.p99_us
            ));
            speedup[index] = point.ops_per_sec;
            p99s[index] = point.p99_us;
        }
        println!(
            "{:<8} {:<8} {:<7} {:>11.1}x {:>9.1}x p99",
            "",
            writers,
            "ratio",
            speedup[1] / speedup[0],
            p99s[0] / p99s[1]
        );
    }
    println!("{}", "-".repeat(60));
    for &writers in writer_counts {
        let mut speedup: [f64; 2] = [0.0; 2];
        let mut p99s: [f64; 2] = [0.0; 2];
        for (index, arm) in ARMS.iter().enumerate() {
            let point = trials_of(trials, || {
                daemon_level(writers, per_writer, arm.sync_writes)
            });
            println!(
                "{:<8} {:<8} {:<7} {:>12.0} {:>10.1} {:>10.1}",
                "daemon", writers, arm.label, point.ops_per_sec, point.p50_us, point.p99_us
            );
            csv.push_str(&format!(
                "daemon,{writers},{},{:.0},{:.1},{:.1}\n",
                arm.label, point.ops_per_sec, point.p50_us, point.p99_us
            ));
            speedup[index] = point.ops_per_sec;
            p99s[index] = point.p99_us;
        }
        println!(
            "{:<8} {:<8} {:<7} {:>11.1}x {:>9.1}x p99",
            "",
            writers,
            "ratio",
            speedup[1] / speedup[0],
            p99s[0] / p99s[1]
        );
    }

    let (cycles, coalesced) = coalescing_probe(storm);
    println!("{}", "-".repeat(60));
    println!(
        "coalescing probe: {storm}-write storm to one object -> {cycles} flush \
         cycle(s), {coalesced} records coalesced"
    );
    csv.push_str(&format!("storm,{storm},group,{cycles},{coalesced},0\n"));
    assert!(
        cycles <= 2,
        "status storm must collapse into at most 2 fsync cycles, took {cycles}"
    );

    let csv_path = "target/expt_f12_statestore.csv";
    let _ = std::fs::write(csv_path, &csv);
    println!("\nCSV written to {csv_path}");
}

//! **T1 — Driver/feature matrix.**
//!
//! Regenerates the paper-style table showing that one API covers
//! heterogeneous platforms, with per-platform feature support queried
//! through the uniform capabilities interface.
//!
//! Run: `cargo run -p virt-bench --bin expt_t1_feature_matrix`

use hypersim::SimClock;
use virt_bench::platform_hosts;
use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::Connect;

fn main() {
    let clock = SimClock::new();
    let (qemu, xen, lxc, esx) = platform_hosts(&clock);

    println!("T1: driver/feature matrix (one API, heterogeneous platforms)");
    println!(
        "{:<10} {:<10} {:<11} {:>9} {:>10} {:>9} {:>12} {:>9} {:>15}",
        "driver",
        "kind",
        "management",
        "maxvcpus",
        "migration",
        "save",
        "snapshots",
        "hotplug",
        "daemon-needed"
    );
    println!("{}", "-".repeat(102));

    for host in [qemu, xen, lxc, esx] {
        let scheme = host.personality().name().to_string();
        let stateless = host.personality().hypervisor_persists_state();
        let conn =
            Connect::from_driver(EmbeddedConnection::new(host, format!("{scheme}:///system")));
        let caps = conn.capabilities().expect("capabilities");
        let yn = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{:<10} {:<10} {:<11} {:>9} {:>10} {:>9} {:>12} {:>9} {:>15}",
            caps.hypervisor,
            caps.virt_kind,
            if stateless { "stateless" } else { "stateful" },
            caps.max_vcpus,
            yn(caps.has_feature("migration")),
            yn(caps.has_feature("save_restore")),
            yn(caps.has_feature("snapshots")),
            yn(caps.has_feature("device_hotplug")),
            yn(!stateless),
        );
    }
    println!();
    println!(
        "stateless = hypervisor persists its own state, managed directly by the client library"
    );
    println!("stateful  = managed through the virtd daemon (hypervisor has no remote management)");
}

//! **F2 (Criterion)** — listing cost vs population size over the remote
//! path. Expected: linear in N with flat per-domain cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use virt_bench::{define_domains, quiet_daemon};
use virt_core::Connect;

fn bench_listing(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_list_all_domains");
    group.sample_size(30);

    for &n in &[1usize, 10, 100, 1000] {
        let (daemon, uri) = quiet_daemon();
        let conn = Connect::builder(&uri).open().unwrap();
        define_domains(&conn, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let domains = conn.list_all_domains().unwrap();
                assert_eq!(domains.len(), n);
            })
        });
        conn.close();
        daemon.shutdown();
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_lookup_in_population");
    group.sample_size(30);

    for &n in &[10usize, 1000] {
        let (daemon, uri) = quiet_daemon();
        let conn = Connect::builder(&uri).open().unwrap();
        define_domains(&conn, n);
        let target = format!("vm-{}", n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| conn.domain_lookup_by_name(&target).unwrap())
        });
        conn.close();
        daemon.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_listing, bench_lookup);
criterion_main!(benches);

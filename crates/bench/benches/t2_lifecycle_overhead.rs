//! **T2 (Criterion)** — management-layer overhead per lifecycle cycle.
//!
//! Hosts have zero simulated latency, so measured wall time is purely the
//! management stack: native < local driver < remote (daemon + XDR + pool).

use criterion::{criterion_group, criterion_main, Criterion};

use hypersim::{DomainSpec, LatencyModel, SimHost};
use virt_bench::unique;
use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;
use virtd::Virtd;

fn bench_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_lifecycle_cycle");
    group.sample_size(30);

    // Native hypervisor interface.
    let native = SimHost::builder("t2c-native")
        .latency(LatencyModel::zero())
        .build();
    native.define_domain(DomainSpec::new("vm")).unwrap();
    group.bench_function("native", |b| {
        b.iter(|| {
            native.start_domain("vm").unwrap();
            native.suspend_domain("vm").unwrap();
            native.resume_domain("vm").unwrap();
            native.destroy_domain("vm").unwrap();
        })
    });

    // Local driver (the library, embedded).
    let local_host = SimHost::builder("t2c-local")
        .latency(LatencyModel::zero())
        .build();
    let local = Connect::from_driver(EmbeddedConnection::new(local_host, "qemu:///system"));
    let local_domain = local
        .define_domain(&DomainConfig::new("vm", 512, 1))
        .unwrap();
    group.bench_function("local_driver", |b| {
        b.iter(|| {
            local_domain.start().unwrap();
            local_domain.suspend().unwrap();
            local_domain.resume().unwrap();
            local_domain.destroy().unwrap();
        })
    });

    // Remote path through the daemon.
    let endpoint = unique("t2c");
    let daemon = Virtd::builder(&endpoint)
        .with_quiet_hosts()
        .build()
        .unwrap();
    daemon.register_memory_endpoint(&endpoint).unwrap();
    let remote = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .open()
        .unwrap();
    let remote_domain = remote
        .define_domain(&DomainConfig::new("vm", 512, 1))
        .unwrap();
    group.bench_function("remote_daemon", |b| {
        b.iter(|| {
            remote_domain.start().unwrap();
            remote_domain.suspend().unwrap();
            remote_domain.resume().unwrap();
            remote_domain.destroy().unwrap();
        })
    });

    group.finish();
    remote.close();
    daemon.shutdown();
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);

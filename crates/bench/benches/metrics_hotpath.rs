//! **Metrics hot path** — cost of instrumentation on the record side.
//!
//! The whole observability design rests on one claim: recording into a
//! counter or histogram is a handful of relaxed atomic operations, cheap
//! enough to leave enabled on every RPC dispatch, pool job, and driver
//! lifecycle call. This bench pins the claim down: a counter increment
//! and a histogram record should each stay well under ~100 ns, and
//! neither slows down when other threads hammer the same instrument
//! (no lock, no contention collapse — only cache-line traffic).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use virt_core::metrics::{Counter, Histogram, Registry};

fn with_contenders<T: Send + Sync + 'static>(
    instrument: Arc<T>,
    record: fn(&T),
    body: impl FnOnce(),
) {
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..3)
        .map(|_| {
            let instrument = Arc::clone(&instrument);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    record(&instrument);
                }
            })
        })
        .collect();
    body();
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
}

fn bench_record_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_hotpath");

    // Instruments come out of a registry exactly as instrumented code
    // gets them: an Arc handle recorded through without further lookups.
    let registry = Registry::new();
    let counter = registry.counter("bench.hits", "hot-path counter");
    let histogram = registry.histogram("bench.lat_us", "hot-path histogram");

    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    group.bench_function("histogram_record_ns", |b| {
        let mut ns = 1u64;
        b.iter(|| {
            // Vary the sample so bucket selection isn't branch-predicted
            // into irrelevance.
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record_ns(ns >> 40);
        })
    });

    group.bench_function("histogram_record_duration", |b| {
        b.iter(|| histogram.record(Duration::from_micros(7)))
    });

    // Same instruments under three contending writer threads: atomics
    // share cache lines but never serialize behind a lock.
    {
        let counter = Arc::new(Counter::new());
        let bench_counter = Arc::clone(&counter);
        with_contenders(
            counter,
            |c| c.inc(),
            || {
                group.bench_function("counter_inc_contended", |b| b.iter(|| bench_counter.inc()));
            },
        );
    }
    {
        let histogram = Arc::new(Histogram::new());
        let bench_histogram = Arc::clone(&histogram);
        with_contenders(
            histogram,
            |h| h.record_ns(3_000),
            || {
                group.bench_function("histogram_record_contended", |b| {
                    b.iter(|| bench_histogram.record_ns(3_000))
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_record_path);
criterion_main!(benches);

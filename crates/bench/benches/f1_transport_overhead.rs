//! **F1 (Criterion)** — per-call round-trip by transport.
//!
//! A fixed-cost call (`hostname`) over memory / unix / tcp / tls-sim.
//! Expected ordering: memory < unix ≈ tcp < tls.

use criterion::{criterion_group, criterion_main, Criterion};

use virt_bench::unique;
use virt_core::Connect;
use virt_rpc::transport::{
    Listener, TcpSocketListener, TlsSimTransport, Transport, UnixSocketListener,
};
use virtd::Virtd;

struct BoxTransport(Box<dyn Transport>);

impl Transport for BoxTransport {
    fn send_frame(&self, body: &[u8]) -> std::io::Result<()> {
        self.0.send_frame(body)
    }
    fn recv_frame(&self) -> std::io::Result<Vec<u8>> {
        self.0.recv_frame()
    }
    fn kind(&self) -> virt_rpc::TransportKind {
        self.0.kind()
    }
    fn peer(&self) -> String {
        self.0.peer()
    }
    fn shutdown(&self) -> std::io::Result<()> {
        self.0.shutdown()
    }
}

struct TlsListener(TcpSocketListener);

impl Listener for TlsListener {
    fn accept(&self) -> std::io::Result<Box<dyn Transport>> {
        let inner = self.0.accept()?;
        Ok(Box::new(TlsSimTransport::server(
            BoxTransport(inner),
            rand::random(),
        )?))
    }
    fn local_desc(&self) -> String {
        format!("tls:{}", self.0.local_desc())
    }
    fn close(&self) {
        self.0.close();
    }
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_hostname_rtt");
    group.sample_size(50);

    // memory
    let endpoint = unique("f1c-mem");
    let mem_daemon = Virtd::builder(&endpoint)
        .with_quiet_hosts()
        .build()
        .unwrap();
    mem_daemon.register_memory_endpoint(&endpoint).unwrap();
    let mem_conn = Connect::builder(format!("qemu+memory://{endpoint}/system"))
        .open()
        .unwrap();
    group.bench_function("memory", |b| b.iter(|| mem_conn.hostname().unwrap()));

    // unix
    let ux_daemon = Virtd::builder(unique("f1c-ux"))
        .with_quiet_hosts()
        .build()
        .unwrap();
    let path = format!("/tmp/{}.sock", unique("f1c"));
    ux_daemon.serve(Box::new(UnixSocketListener::bind(&path).unwrap()));
    let ux_conn = Connect::builder(format!("qemu+unix:///system?socket={path}"))
        .open()
        .unwrap();
    group.bench_function("unix", |b| b.iter(|| ux_conn.hostname().unwrap()));

    // tcp
    let tcp_daemon = Virtd::builder(unique("f1c-tcp"))
        .with_quiet_hosts()
        .build()
        .unwrap();
    let tcp_listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
    let tcp_addr = tcp_listener.local_addr().to_string();
    tcp_daemon.serve(Box::new(tcp_listener));
    let tcp_conn = Connect::builder(format!("qemu+tcp://{tcp_addr}/system"))
        .open()
        .unwrap();
    group.bench_function("tcp", |b| b.iter(|| tcp_conn.hostname().unwrap()));

    // tls
    let tls_daemon = Virtd::builder(unique("f1c-tls"))
        .with_quiet_hosts()
        .build()
        .unwrap();
    let tls_listener = TcpSocketListener::bind("127.0.0.1:0").unwrap();
    let tls_addr = tls_listener.local_addr().to_string();
    tls_daemon.serve(Box::new(TlsListener(tls_listener)));
    let tls_conn = Connect::builder(format!("qemu+tls://{tls_addr}/system"))
        .open()
        .unwrap();
    group.bench_function("tls", |b| b.iter(|| tls_conn.hostname().unwrap()));

    group.finish();
    for conn in [mem_conn, ux_conn, tcp_conn, tls_conn] {
        conn.close();
    }
    for daemon in [mem_daemon, ux_daemon, tcp_daemon, tls_daemon] {
        daemon.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);

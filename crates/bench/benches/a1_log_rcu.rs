//! **A1 (ablation)** — RCU settings swap vs a naive fully-locked logger.
//!
//! The design point, straight from libvirt's logging subsystem: filters
//! are evaluated **before** any lock that covers output writing, so a
//! message that will be *dropped* never waits behind a slow output. The
//! ablation baseline holds one mutex across filter evaluation and output
//! writing.
//!
//! Measured scenario: three busy threads continuously write error-level
//! records to a **file** output while the benchmark thread emits
//! debug-level messages that the filter drops. With the RCU design the
//! dropped message costs a shared read-lock + a level check; with the
//! naive design it queues behind file I/O.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use virt_core::log::{LogLevel, LogSettings, Logger};

/// The ablation baseline: settings AND output writing behind one mutex.
struct NaiveLogger {
    state: Mutex<(LogSettings, std::fs::File)>,
}

impl NaiveLogger {
    fn new(settings: LogSettings, path: &str) -> Self {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .expect("log file opens");
        NaiveLogger {
            state: Mutex::new((settings, file)),
        }
    }

    fn log(&self, level: LogLevel, module: &str, message: &str) {
        let mut state = self.state.lock();
        if level < state.0.effective_level(module) {
            return;
        }
        let _ = writeln!(state.1, "{level}: {module}: {message}");
    }

    fn redefine(&self, settings: LogSettings) {
        self.state.lock().0 = settings;
    }
}

fn file_settings(path: &str) -> LogSettings {
    LogSettings {
        // Global level error: the bench thread's debug messages are dropped.
        level: LogLevel::Error,
        filters: Vec::new(),
        outputs: LogSettings::parse_outputs(&format!("1:file:{path}")).unwrap(),
    }
}

fn with_writers<L: Send + Sync + 'static>(
    logger: Arc<L>,
    write: fn(&L),
    redefine: fn(&L, &str),
    path: String,
    body: impl FnOnce(),
) {
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..3 {
        let logger = Arc::clone(&logger);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                write(&logger);
            }
        }));
    }
    {
        let logger = Arc::clone(&logger);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                redefine(&logger, &path);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }));
    }
    body();
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
}

fn bench_loggers(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_dropped_message_latency");
    group.sample_size(30);

    let dir = std::env::temp_dir();

    {
        let path = dir
            .join(format!("a1-rcu-{}.log", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let logger = Arc::new(Logger::new());
        logger.redefine(file_settings(&path)).unwrap();
        let write_path = path.clone();
        with_writers(
            Arc::clone(&logger),
            |l| {
                l.log(
                    LogLevel::Error,
                    "driver.qemu",
                    "a failing operation with context attached",
                )
            },
            |l, p| l.redefine(file_settings(p)).unwrap(),
            write_path,
            || {
                group.bench_function("rcu_swap", |b| {
                    b.iter(|| logger.log(LogLevel::Debug, "driver.qemu", "dropped"))
                });
            },
        );
        let _ = std::fs::remove_file(&path);
    }

    {
        let path = dir
            .join(format!("a1-naive-{}.log", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let logger = Arc::new(NaiveLogger::new(file_settings(&path), &path));
        let write_path = path.clone();
        with_writers(
            Arc::clone(&logger),
            |l| {
                l.log(
                    LogLevel::Error,
                    "driver.qemu",
                    "a failing operation with context attached",
                )
            },
            |l, p| l.redefine(file_settings(p)),
            write_path,
            || {
                group.bench_function("naive_mutex", |b| {
                    b.iter(|| logger.log(LogLevel::Debug, "driver.qemu", "dropped"))
                });
            },
        );
        let _ = std::fs::remove_file(&path);
    }

    group.finish();
}

criterion_group!(benches, bench_loggers);
criterion_main!(benches);

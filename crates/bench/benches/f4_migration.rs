//! **F4 (Criterion)** — cost of the pre-copy model computation and of the
//! full five-phase migration protocol between two embedded connections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hypersim::migration::simulate_precopy;
use hypersim::{LatencyModel, MiB, MigrationParams, SimClock, SimHost};
use virt_core::driver::MigrationOptions;
use virt_core::drivers::embedded::EmbeddedConnection;
use virt_core::xmlfmt::DomainConfig;
use virt_core::Connect;

fn bench_precopy_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_precopy_model");
    for &memory in &[512u64, 4096, 16384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(memory),
            &memory,
            |b, &memory| {
                let params = MigrationParams::new(MiB(memory), 200, 1024);
                b.iter(|| simulate_precopy(&params).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_full_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_five_phase_protocol");
    group.sample_size(30);

    let clock = SimClock::new();
    let src_host = SimHost::builder("f4c-src")
        .cpus(64)
        .memory_mib(64 * 1024)
        .clock(clock.clone())
        .latency(LatencyModel::zero())
        .build();
    let dst_host = SimHost::builder("f4c-dst")
        .cpus(64)
        .memory_mib(64 * 1024)
        .clock(clock)
        .latency(LatencyModel::zero())
        .seed(5)
        .build();
    let src = Connect::from_driver(EmbeddedConnection::new(src_host, "qemu:///src"));
    let dst = Connect::from_driver(EmbeddedConnection::new(dst_host, "qemu:///dst"));

    let domain = src
        .define_domain(&DomainConfig::new("pingpong", 1024, 1))
        .unwrap();
    domain.start().unwrap();
    let options = MigrationOptions::default();

    group.bench_function("migrate_round_trip", |b| {
        b.iter(|| {
            // There and back again, so each iteration restores the setup.
            let there = src.domain_lookup_by_name("pingpong").unwrap();
            there.migrate_to(&dst, &options).unwrap();
            let back = dst.domain_lookup_by_name("pingpong").unwrap();
            back.migrate_to(&src, &options).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_precopy_model, bench_full_protocol);
criterion_main!(benches);

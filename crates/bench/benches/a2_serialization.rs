//! **A2 (ablation)** — XDR vs naive text serialization of protocol
//! records. XDR's fixed binary layout should beat a key=value text
//! format on encode time, decode time, and wire size.

use criterion::{criterion_group, criterion_main, Criterion};

use virt_core::driver::{DomainRecord, DomainState};
use virt_core::protocol::WireDomain;
use virt_core::Uuid;
use virt_rpc::xdr::{XdrDecode, XdrEncode};

fn sample() -> WireDomain {
    WireDomain::from(&DomainRecord {
        name: "production-database-replica-03".to_string(),
        uuid: Uuid::generate(),
        id: Some(42),
        state: DomainState::Running,
        memory_mib: 16384,
        max_memory_mib: 32768,
        vcpus: 8,
        persistent: true,
        has_managed_save: false,
        autostart: true,
        cpu_time_ns: 86_400_000_000_000,
    })
}

/// The text-format strawman: the same record as `key=value` lines.
fn to_text(w: &WireDomain) -> String {
    format!(
        "name={}\nuuid={:02x?}\nid={}\nstate={}\nmemory={}\nmax_memory={}\nvcpus={}\npersistent={}\nmanaged_save={}\nautostart={}\n",
        w.name, w.uuid, w.id, w.state, w.memory_mib, w.max_memory_mib, w.vcpus, w.persistent,
        w.has_managed_save, w.autostart
    )
}

fn from_text(text: &str) -> WireDomain {
    let mut fields = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some((k, v)) = line.split_once('=') {
            fields.insert(k.to_string(), v.to_string());
        }
    }
    WireDomain {
        name: fields["name"].clone(),
        uuid: [0; 16], // text parse of the hex array is omitted from the strawman's cost
        id: fields["id"].parse().unwrap(),
        state: fields["state"].parse().unwrap(),
        memory_mib: fields["memory"].parse().unwrap(),
        max_memory_mib: fields["max_memory"].parse().unwrap(),
        vcpus: fields["vcpus"].parse().unwrap(),
        persistent: fields["persistent"] == "true",
        has_managed_save: fields["managed_save"] == "true",
        autostart: fields["autostart"] == "true",
        cpu_time_ns: fields
            .get("cpu_time")
            .map(|v| v.parse().unwrap_or(0))
            .unwrap_or(0),
    }
}

fn bench_serialization(c: &mut Criterion) {
    let record = sample();
    let xdr_bytes = record.to_xdr();
    let text = to_text(&record);
    println!(
        "wire sizes: xdr={} bytes, text={} bytes ({:.1}x)",
        xdr_bytes.len(),
        text.len(),
        text.len() as f64 / xdr_bytes.len() as f64
    );

    let mut group = c.benchmark_group("a2_serialization");
    group.bench_function("xdr_encode", |b| b.iter(|| record.to_xdr()));
    group.bench_function("xdr_decode", |b| {
        b.iter(|| WireDomain::from_xdr(&xdr_bytes).unwrap())
    });
    group.bench_function("text_encode", |b| b.iter(|| to_text(&record)));
    group.bench_function("text_decode", |b| b.iter(|| from_text(&text)));
    group.finish();
}

criterion_group!(benches, bench_serialization);
criterion_main!(benches);

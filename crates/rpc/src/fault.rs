//! Deterministic fault injection at the transport layer.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and misbehaves on cue —
//! the transport-level sibling of `hypersim`'s operation fault plans.
//! Chaos tests flip the shared [`FaultControl`] mid-stream to simulate a
//! connection dying at an exact, reproducible point (after N bytes,
//! after N sends) rather than "sometime around when the daemon died".

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::transport::{Transport, TransportKind};

/// What a [`FaultyTransport`] does to traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Pass traffic through untouched.
    None,
    /// Hard-close the connection once `n` payload bytes have been sent.
    DropAfterBytes(u64),
    /// Swallow sends silently; the peer never sees them (a black hole —
    /// the sender believes everything is fine).
    BlackHole,
    /// Let `n` more sends through, then fail each send with
    /// `ConnectionReset`.
    ErrorOnSend(u64),
    /// Let `n` more receives through, then reset the connection on the
    /// next receive.
    ResetOnRecv(u64),
}

struct ControlInner {
    mode: Mutex<FaultMode>,
    sent_bytes: AtomicU64,
    sends: AtomicU64,
    recvs: AtomicU64,
}

/// Shared handle that retunes a [`FaultyTransport`] while it is in use.
#[derive(Clone)]
pub struct FaultControl {
    inner: Arc<ControlInner>,
}

impl FaultControl {
    fn new() -> Self {
        FaultControl {
            inner: Arc::new(ControlInner {
                mode: Mutex::new(FaultMode::None),
                sent_bytes: AtomicU64::new(0),
                sends: AtomicU64::new(0),
                recvs: AtomicU64::new(0),
            }),
        }
    }

    /// Switches the fault mode; counters keep running across switches.
    pub fn set(&self, mode: FaultMode) {
        *self.inner.mode.lock() = mode;
    }

    /// Payload bytes sent through (or swallowed by) the wrapper so far.
    pub fn sent_bytes(&self) -> u64 {
        self.inner.sent_bytes.load(Ordering::Relaxed)
    }

    /// Frames sent through the wrapper so far.
    pub fn sends(&self) -> u64 {
        self.inner.sends.load(Ordering::Relaxed)
    }

    /// Frames received through the wrapper so far.
    pub fn recvs(&self) -> u64 {
        self.inner.recvs.load(Ordering::Relaxed)
    }
}

fn reset_err(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("injected fault: {what}"),
    )
}

/// A [`Transport`] wrapper that injects faults per the shared
/// [`FaultControl`].
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    control: FaultControl,
}

impl FaultyTransport {
    /// Wraps `inner`; the returned control steers the faults.
    pub fn new(inner: Arc<dyn Transport>) -> (Self, FaultControl) {
        let control = FaultControl::new();
        (
            FaultyTransport {
                inner,
                control: control.clone(),
            },
            control,
        )
    }
}

impl Transport for FaultyTransport {
    fn send_frame(&self, body: &[u8]) -> io::Result<()> {
        let mode = *self.control.inner.mode.lock();
        let sent = self
            .control
            .inner
            .sent_bytes
            .fetch_add(body.len() as u64, Ordering::Relaxed)
            + body.len() as u64;
        let sends = self.control.inner.sends.fetch_add(1, Ordering::Relaxed);
        match mode {
            FaultMode::None | FaultMode::ResetOnRecv(_) => self.inner.send_frame(body),
            FaultMode::DropAfterBytes(n) => {
                if sent > n {
                    let _ = self.inner.shutdown();
                    Err(reset_err("connection dropped after byte budget"))
                } else {
                    self.inner.send_frame(body)
                }
            }
            FaultMode::BlackHole => Ok(()),
            FaultMode::ErrorOnSend(n) => {
                if sends >= n {
                    Err(reset_err("send failed"))
                } else {
                    self.inner.send_frame(body)
                }
            }
        }
    }

    fn recv_frame(&self) -> io::Result<Vec<u8>> {
        let mode = *self.control.inner.mode.lock();
        let recvs = self.control.inner.recvs.fetch_add(1, Ordering::Relaxed);
        if let FaultMode::ResetOnRecv(n) = mode {
            if recvs >= n {
                let _ = self.inner.shutdown();
                return Err(reset_err("connection reset on receive"));
            }
        }
        self.inner.recv_frame()
    }

    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn peer(&self) -> String {
        format!("faulty:{}", self.inner.peer())
    }

    fn shutdown(&self) -> io::Result<()> {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::memory_pair;

    #[test]
    fn passes_traffic_through_by_default() {
        let (a, b) = memory_pair();
        let (faulty, control) = FaultyTransport::new(Arc::new(a));
        faulty.send_frame(b"hello").unwrap();
        assert_eq!(b.recv_frame().unwrap(), b"hello");
        b.send_frame(b"world").unwrap();
        assert_eq!(faulty.recv_frame().unwrap(), b"world");
        assert_eq!(control.sent_bytes(), 5);
        assert_eq!(control.sends(), 1);
        assert_eq!(control.recvs(), 1);
    }

    #[test]
    fn drop_after_bytes_kills_the_connection() {
        let (a, b) = memory_pair();
        let (faulty, control) = FaultyTransport::new(Arc::new(a));
        control.set(FaultMode::DropAfterBytes(6));
        faulty.send_frame(b"four").unwrap();
        let err = faulty.send_frame(b"more!").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The peer observes the shutdown too.
        assert_eq!(b.recv_frame().unwrap(), b"four");
        assert!(b.recv_frame().is_err());
    }

    #[test]
    fn black_hole_swallows_sends_silently() {
        let (a, b) = memory_pair();
        let (faulty, control) = FaultyTransport::new(Arc::new(a));
        control.set(FaultMode::BlackHole);
        faulty.send_frame(b"into the void").unwrap();
        control.set(FaultMode::None);
        faulty.send_frame(b"real").unwrap();
        // Only the post-black-hole frame arrives.
        assert_eq!(b.recv_frame().unwrap(), b"real");
    }

    #[test]
    fn error_on_send_counts_down_deterministically() {
        let (a, _b) = memory_pair();
        let (faulty, control) = FaultyTransport::new(Arc::new(a));
        control.set(FaultMode::ErrorOnSend(2));
        faulty.send_frame(b"1").unwrap();
        faulty.send_frame(b"2").unwrap();
        assert!(faulty.send_frame(b"3").is_err());
        assert!(faulty.send_frame(b"4").is_err());
    }

    #[test]
    fn reset_on_recv_counts_down_deterministically() {
        let (a, b) = memory_pair();
        let (faulty, control) = FaultyTransport::new(Arc::new(a));
        control.set(FaultMode::ResetOnRecv(1));
        b.send_frame(b"ok").unwrap();
        assert_eq!(faulty.recv_frame().unwrap(), b"ok");
        let err = faulty.recv_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}

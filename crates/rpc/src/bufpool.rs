//! Reusable frame buffers for the RPC hot path.
//!
//! Every call used to allocate two fresh `Vec<u8>`s (packet body, then
//! framed copy) on send and one on receive. Under heavy traffic that is
//! pure allocator churn: frames are small, short-lived, and all the same
//! shape. A [`BufferPool`] keeps a bounded freelist of retired buffers;
//! the send path encodes the length prefix, header and payload into one
//! pooled buffer and hands it to the transport as a single pre-framed
//! write, and the receive path refills a pooled buffer in place. In
//! steady state the framed send/recv path performs **zero** heap
//! allocations — asserted by the `framing_hotpath` counting-allocator
//! test.
//!
//! Observability: `rpc.buf_pool.hits` / `rpc.buf_pool.misses` count
//! checkouts served from (or missing) the freelist, and
//! `rpc.buf_pool.resident_bytes` gauges the capacity currently parked in
//! it.

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use virt_metrics::{Counter, Gauge, Registry};

/// Retired buffers kept for reuse. The freelist is bounded both in entry
/// count and per-buffer capacity so a single giant frame (e.g. a bulk
/// stats reply) cannot pin megabytes forever.
struct FreeList {
    bufs: Vec<Vec<u8>>,
    resident: u64,
}

/// A bounded pool of reusable byte buffers.
pub struct BufferPool {
    free: Mutex<FreeList>,
    /// Maximum number of buffers parked in the freelist.
    max_pooled: usize,
    /// Buffers whose capacity grew beyond this are dropped on return.
    max_buf_capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    resident_bytes: Arc<Gauge>,
}

/// Freelist entry cap: enough for every reader/writer thread of a busy
/// daemon plus headroom, small enough to be invisible in RSS.
const DEFAULT_MAX_POOLED: usize = 256;
/// Per-buffer capacity cap (64 KiB): covers every control-plane frame;
/// oversized one-offs are returned to the allocator.
const DEFAULT_MAX_BUF_CAPACITY: usize = 64 * 1024;

impl BufferPool {
    /// A pool with the default bounds and detached (unregistered)
    /// metrics.
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_POOLED, DEFAULT_MAX_BUF_CAPACITY)
    }

    /// A pool with explicit bounds and detached metrics.
    pub fn with_limits(max_pooled: usize, max_buf_capacity: usize) -> Self {
        BufferPool {
            free: Mutex::new(FreeList {
                bufs: Vec::with_capacity(max_pooled.min(64)),
                resident: 0,
            }),
            max_pooled,
            max_buf_capacity,
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            resident_bytes: Arc::new(Gauge::new()),
        }
    }

    /// A pool whose metrics live in `registry` under the canonical
    /// `rpc.buf_pool.*` names.
    pub fn with_registry(registry: &Registry) -> Self {
        let mut pool = Self::new();
        pool.hits = registry.counter(
            "rpc.buf_pool.hits",
            "Buffer checkouts served from the freelist",
        );
        pool.misses = registry.counter(
            "rpc.buf_pool.misses",
            "Buffer checkouts that had to allocate",
        );
        pool.resident_bytes = registry.gauge(
            "rpc.buf_pool.resident_bytes",
            "Capacity currently parked in the freelist",
        );
        pool
    }

    /// The process-wide pool shared by every client and server in this
    /// process, registered in [`crate::process_metrics`].
    pub fn global() -> &'static Arc<BufferPool> {
        static GLOBAL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(BufferPool::with_registry(crate::process_metrics())))
    }

    /// Checks out an empty buffer, reusing a retired one when available.
    pub fn get(self: &Arc<Self>) -> PooledBuf {
        let reused = {
            let mut free = self.free.lock();
            let buf = free.bufs.pop();
            if let Some(b) = &buf {
                free.resident -= b.capacity() as u64;
                self.resident_bytes.set(free.resident);
            }
            buf
        };
        let buf = match reused {
            Some(mut b) => {
                self.hits.inc();
                b.clear();
                b
            }
            None => {
                self.misses.inc();
                Vec::new()
            }
        };
        PooledBuf {
            buf,
            pool: Arc::clone(self),
        }
    }

    fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_buf_capacity {
            return;
        }
        let mut free = self.free.lock();
        if free.bufs.len() >= self.max_pooled {
            return;
        }
        free.resident += buf.capacity() as u64;
        free.bufs.push(buf);
        self.resident_bytes.set(free.resident);
    }

    /// (hits, misses, resident bytes) — for tests and diagnostics.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.resident_bytes.get(),
        )
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses, resident) = self.stats();
        f.debug_struct("BufferPool")
            .field("hits", &hits)
            .field("misses", &misses)
            .field("resident_bytes", &resident)
            .finish()
    }
}

/// A checked-out buffer; returns to its pool on drop. Dereferences to
/// `Vec<u8>` so encoding appends straight into it.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl PooledBuf {
    /// Detaches the buffer from the pool, keeping its contents.
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buf.len())
            .field("capacity", &self.buf.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_counted() {
        let pool = Arc::new(BufferPool::new());
        {
            let mut a = pool.get();
            a.extend_from_slice(&[1, 2, 3, 4]);
        } // returned
        let (hits, misses, resident) = pool.stats();
        assert_eq!((hits, misses), (0, 1));
        assert!(resident >= 4);

        let b = pool.get();
        assert!(b.is_empty(), "reused buffer must come back cleared");
        assert!(b.capacity() >= 4, "capacity survives the round trip");
        let (hits, misses, resident) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(resident, 0, "checked-out capacity is not resident");
    }

    #[test]
    fn freelist_is_bounded_in_count_and_capacity() {
        let pool = Arc::new(BufferPool::with_limits(2, 64));
        // Three buffers returned; only two may be parked.
        let (mut a, mut b, mut c) = (pool.get(), pool.get(), pool.get());
        a.push(1);
        b.push(1);
        c.push(1);
        drop((a, b, c));
        assert_eq!(pool.free.lock().bufs.len(), 2);

        // An oversized buffer is dropped, not pooled.
        let mut big = pool.get();
        big.extend_from_slice(&[0u8; 4096]);
        let resident_before = pool.stats().2;
        drop(big);
        assert_eq!(pool.stats().2, resident_before);
    }

    #[test]
    fn into_vec_detaches_without_refilling_the_pool() {
        let pool = Arc::new(BufferPool::new());
        let mut buf = pool.get();
        buf.extend_from_slice(b"keep");
        let v = buf.into_vec();
        assert_eq!(v, b"keep");
        assert_eq!(pool.stats().2, 0);
    }

    #[test]
    fn concurrent_checkouts_do_not_lose_buffers() {
        let pool = Arc::new(BufferPool::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let mut b = p.get();
                        b.extend_from_slice(&i.to_be_bytes());
                        assert_eq!(b.len(), 4);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (hits, misses, _) = pool.stats();
        assert_eq!(hits + misses, 4000);
        assert!(misses <= 8, "steady state must reuse: {misses} misses");
    }
}

//! Retry and circuit-breaker policy: pure state machines.
//!
//! A [`RetryPolicy`] bounds how often an idempotent call may be re-issued
//! after a connection-level failure — capped exponential backoff with
//! deterministic jitter (sourced from the attempt counter, so schedules
//! are reproducible), plus a connection-wide retry budget. A
//! [`CircuitBreaker`] protects the re-dial path: after a run of
//! consecutive connect failures it opens and callers fail fast for a
//! cool-down instead of queueing behind doomed dials.
//!
//! Both types are deliberately free of threads and clocks: callers pass
//! `Instant`s in, which keeps every transition unit-testable.

use std::time::{Duration, Instant};

use crate::transport::xorshift64;

/// Capped exponential growth with deterministic, seed-mixed jitter — the
/// backoff shape shared by the retry policy, the guard engine's
/// crash-loop containment, and the fleet's deferred-reconciliation
/// queue.
///
/// The seed matters: jitter derived from the attempt counter *alone*
/// synchronizes every actor retrying in lockstep (fifty guarded domains
/// crashed by the same storm would all restart at the same instant —
/// a thundering herd). Mixing a per-actor seed (hash of the domain
/// name, say) into the jitter spreads simultaneous retries across up to
/// half the base interval while staying fully reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Upper bound on the un-jittered delay.
    pub max: Duration,
    /// Growth factor applied per retry.
    pub multiplier: u32,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        BackoffSchedule {
            initial: Duration::from_millis(200),
            max: Duration::from_secs(5),
            multiplier: 2,
        }
    }
}

impl BackoffSchedule {
    /// The un-jittered delay before retry `attempt` (1-based): capped
    /// exponential growth.
    pub fn base(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let grown = self
            .initial
            .as_nanos()
            .saturating_mul((self.multiplier.max(1) as u128).saturating_pow(exp));
        Duration::from_nanos(grown.min(self.max.as_nanos()) as u64)
    }

    /// The delay before retry `attempt` for the actor identified by
    /// `seed`: [`BackoffSchedule::base`] plus up to 50% deterministic
    /// jitter mixed from both the seed and the attempt. Same inputs,
    /// same delay — schedules are reproducible — while distinct seeds
    /// de-synchronize actors retrying in lockstep.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.base(attempt).as_nanos() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let jitter = xorshift64(seed ^ (u64::from(attempt) + 1)) % (base / 2 + 1);
        Duration::from_nanos(base + jitter)
    }

    /// A stable per-actor jitter seed: FNV-1a over the name.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // xorshift64 maps 0 to 0; keep the seed non-degenerate.
        hash | 1
    }
}

/// How failed idempotent calls are retried.
///
/// `backoff(1)` is slept before the first retry, `backoff(2)` before the
/// second, and so on: capped exponential growth plus up to 25%
/// deterministic jitter derived from the attempt number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on any single backoff (before jitter).
    pub max_backoff: Duration,
    /// Growth factor applied per retry.
    pub multiplier: u32,
    /// Total retries the whole connection may spend, across all calls.
    /// Guards against retry storms when a daemon flaps for a long time.
    pub retry_budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            multiplier: 2,
            retry_budget: 1000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            multiplier: 1,
            retry_budget: 0,
        }
    }

    /// The growth shape of this policy as a [`BackoffSchedule`].
    pub fn schedule(&self) -> BackoffSchedule {
        BackoffSchedule {
            initial: self.initial_backoff,
            max: self.max_backoff,
            multiplier: self.multiplier,
        }
    }

    /// The pause before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.schedule().base(attempt).as_nanos() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        // Deterministic jitter: the attempt counter seeds a xorshift, so
        // two runs of the same schedule produce identical pauses. A
        // single connection retries one call at a time, so unlike the
        // guard engine it needs no per-actor seed — 25% of base keeps
        // the worst-case pause tight.
        let jitter = xorshift64(u64::from(attempt) + 1) % (base / 4 + 1);
        Duration::from_nanos(base + jitter)
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects attempts before letting one
    /// probe through (half-open).
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// The observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Attempts flow normally.
    Closed,
    /// Attempts are rejected until the cool-down expires.
    Open,
    /// One probe attempt is allowed; its outcome decides the next state.
    HalfOpen,
}

/// The breaker state machine. Callers ask [`CircuitBreaker::check`]
/// before each attempt and report the outcome with
/// [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`].
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: None,
            transitions: 0,
        }
    }

    /// Whether an attempt may proceed at `now`. An expired cool-down
    /// moves the breaker to half-open and admits one probe.
    pub fn check(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.open_until.is_some_and(|until| now >= until) {
                    self.state = BreakerState::HalfOpen;
                    self.transitions += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful attempt. Returns `true` when the state
    /// changed (half-open/open back to closed).
    pub fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.open_until = None;
        if self.state != BreakerState::Closed {
            self.state = BreakerState::Closed;
            self.transitions += 1;
            return true;
        }
        false
    }

    /// Records a failed attempt at `now`. Returns `true` when the
    /// breaker opened.
    pub fn on_failure(&mut self, now: Instant) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= self.config.failure_threshold;
        if trip && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.open_until = Some(now + self.config.cooldown);
            self.transitions += 1;
            return true;
        }
        if trip {
            // Already open; push the cool-down out.
            self.open_until = Some(now + self.config.cooldown);
        }
        false
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state transitions so far (for metrics).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            multiplier: 2,
            retry_budget: 100,
        };
        let b1 = policy.backoff(1);
        let b2 = policy.backoff(2);
        let b4 = policy.backoff(4);
        let b9 = policy.backoff(9);
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(13));
        assert!(b2 >= Duration::from_millis(20) && b2 < Duration::from_millis(26));
        assert!(b4 >= Duration::from_millis(80), "{b4:?}");
        // Capped: base 80 ms, jitter < 20 ms.
        assert!(b9 < Duration::from_millis(101), "{b9:?}");
    }

    #[test]
    fn backoff_jitter_is_deterministic() {
        let policy = RetryPolicy::default();
        for attempt in 1..8 {
            assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
        }
        // ...but differs across attempts at the same base.
        let flat = RetryPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        assert_ne!(flat.backoff(5), flat.backoff(6));
    }

    #[test]
    fn schedule_grows_caps_and_spreads_by_seed() {
        let schedule = BackoffSchedule {
            initial: Duration::from_millis(10),
            max: Duration::from_millis(80),
            multiplier: 2,
        };
        assert_eq!(schedule.base(1), Duration::from_millis(10));
        assert_eq!(schedule.base(2), Duration::from_millis(20));
        assert_eq!(schedule.base(4), Duration::from_millis(80));
        assert_eq!(schedule.base(9), Duration::from_millis(80), "capped");

        // Deterministic: same (attempt, seed) -> same delay; bounded by
        // base + 50%.
        let seed = BackoffSchedule::seed_for("vm-7");
        for attempt in 1..6 {
            let d = schedule.delay(attempt, seed);
            assert_eq!(d, schedule.delay(attempt, seed));
            let base = schedule.base(attempt);
            assert!(d >= base && d <= base + base / 2 + Duration::from_nanos(1));
        }

        // The herd-breaking property: fifty actors retrying the same
        // attempt simultaneously land on many distinct delays.
        let delays: std::collections::HashSet<Duration> = (0..50)
            .map(|i| schedule.delay(1, BackoffSchedule::seed_for(&format!("storm-{i}"))))
            .collect();
        assert!(delays.len() >= 40, "only {} distinct delays", delays.len());
    }

    #[test]
    fn policy_schedule_matches_policy_growth() {
        let policy = RetryPolicy::default();
        for attempt in 1..8 {
            // The jitter shapes differ, but the base growth is shared.
            assert!(policy.backoff(attempt) >= policy.schedule().base(attempt));
        }
    }

    #[test]
    fn none_policy_never_pauses() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.backoff(1), Duration::ZERO);
        assert_eq!(policy.backoff(7), Duration::ZERO);
    }

    #[test]
    fn breaker_opens_after_threshold_and_fails_fast() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        });
        for _ in 0..2 {
            assert!(breaker.check(t0));
            assert!(!breaker.on_failure(t0));
        }
        assert!(breaker.check(t0));
        assert!(breaker.on_failure(t0), "third failure trips the breaker");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.check(t0 + Duration::from_secs(5)));
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_success() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(1),
        });
        breaker.on_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Open);
        let later = t0 + Duration::from_secs(2);
        assert!(breaker.check(later), "cool-down expired: probe allowed");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.on_success());
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(1),
        });
        breaker.on_failure(t0);
        breaker.on_failure(t0);
        let later = t0 + Duration::from_secs(2);
        assert!(breaker.check(later));
        assert!(breaker.on_failure(later), "single probe failure reopens");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.check(later + Duration::from_millis(500)));
    }

    #[test]
    fn transitions_are_counted() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(100),
        });
        breaker.on_failure(t0); // closed -> open
        breaker.check(t0 + Duration::from_millis(200)); // open -> half-open
        breaker.on_success(); // half-open -> closed
        assert_eq!(breaker.transitions(), 3);
    }
}

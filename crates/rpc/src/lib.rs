//! The remote protocol substrate of the virt toolkit.
//!
//! libvirt's client and daemon exchange XDR-encoded, length-prefixed
//! messages over a pluggable transport, and the daemon executes requests
//! on a dynamically sized worker pool with dedicated priority workers.
//! This crate reproduces that stack from scratch:
//!
//! - [`xdr`] — an RFC 4506 (XDR) subset encoder/decoder,
//! - [`message`] — the packet format: 4-byte length prefix + header
//!   (program, version, procedure, type, serial, status) + payload,
//! - [`transport`] — in-memory, Unix-socket, TCP and simulated-TLS
//!   transports behind one object-safe trait,
//! - [`pool`] — the worker pool with min/max limits and priority workers,
//! - [`client`] — a concurrent call client with serial matching and
//!   asynchronous event delivery,
//! - [`keepalive`] — the ping/pong liveness protocol,
//! - [`retry`] — retry policies with capped, jittered backoff and a
//!   circuit breaker,
//! - [`reconnect`] — a self-healing client that re-dials, replays the
//!   session handshake, and retries idempotent calls,
//! - [`fault`] — deterministic transport-level fault injection for
//!   chaos tests.
//!
//! The daemon side (connection acceptance, dispatch tables, client
//! tracking) lives in the `virtd` crate; stateless drivers and the remote
//! driver in `virt-core` use [`client::CallClient`] directly.
//!
//! # Examples
//!
//! Encoding and decoding with XDR:
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use virt_rpc::xdr::{XdrDecode, XdrEncode};
//!
//! let mut buf = Vec::new();
//! 42u32.encode(&mut buf);
//! "domain".to_string().encode(&mut buf);
//!
//! let mut cursor = virt_rpc::xdr::Cursor::new(&buf);
//! assert_eq!(u32::decode(&mut cursor)?, 42);
//! assert_eq!(String::decode(&mut cursor)?, "domain");
//! # Ok(())
//! # }
//! ```

pub mod bufpool;
pub mod client;
pub mod fanout;
pub mod fault;
pub mod keepalive;
pub mod message;
pub mod poll;
pub mod pool;
pub mod reconnect;
pub mod retry;
pub mod transport;
pub mod xdr;

pub use bufpool::{BufferPool, PooledBuf};
pub use client::CallClient;
pub use fanout::run_bounded;
pub use fault::{FaultControl, FaultMode, FaultyTransport};
pub use message::{Header, MessageStatus, MessageType, Packet, RpcError};
pub use poll::{PollEvent, Poller};
pub use pool::{PoolLimits, PoolStats, WorkerPool};
pub use reconnect::{ReconnectConfig, ReconnectMetrics, ReconnectingClient};
pub use retry::{BackoffSchedule, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use transport::{memory_pair, MeteredTransport, Readiness, Transport, TransportKind};

/// The process-wide registry for client-side RPC metrics
/// (`rpc.reconnect.*`, `rpc.retry.*`, `rpc.late_replies`,
/// `rpc.buf_pool.*`). Counters aggregate across every connection and
/// pool in the process; the daemon's admin metrics procedures merge it
/// into their listings.
pub fn process_metrics() -> &'static std::sync::Arc<virt_metrics::Registry> {
    static PROCESS_METRICS: std::sync::OnceLock<std::sync::Arc<virt_metrics::Registry>> =
        std::sync::OnceLock::new();
    PROCESS_METRICS.get_or_init(|| std::sync::Arc::new(virt_metrics::Registry::new()))
}
